//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset the workspace's property tests use: the
//! [`proptest!`] macro, range and `any::<T>()` strategies, tuple
//! strategies, `prop::collection::vec`, and the `prop_assert*` macros.
//!
//! Differences from real proptest, by design:
//! - **Deterministic**: cases derive from a SplitMix64 stream seeded by
//!   the test's name, so failures reproduce exactly across runs.
//! - **No shrinking**: a failing case panics with the plain assertion
//!   message (inputs are visible via the assert's formatting args).
//! - Fixed case count ([`NUM_CASES`]) instead of a config system.

use std::ops::{Range, RangeInclusive};

/// Cases run per property. Chosen to keep the whole suite fast on a
/// single-core CI box while still sweeping each strategy broadly.
pub const NUM_CASES: u64 = 64;

/// Deterministic per-test random stream (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a test name via FNV-1a so each property gets an
    /// independent, stable stream.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// The next value in the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, n)` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        // Widening multiply; the slight modulo bias is irrelevant for
        // test-case generation.
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Test-loop driver used by the [`proptest!`] expansion.
pub mod test_runner {
    use super::TestRng;

    /// Holds the per-test RNG across cases.
    pub struct TestRunner {
        rng: TestRng,
    }

    impl TestRunner {
        /// Creates a runner whose stream is derived from `name`.
        pub fn new(name: &str) -> Self {
            TestRunner {
                rng: TestRng::from_name(name),
            }
        }

        /// The runner's RNG.
        pub fn rng(&mut self) -> &mut TestRng {
            &mut self.rng
        }
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The generated value type.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64) - (self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as u64) - (lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty => $u:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as $u).wrapping_sub(self.start as $u);
                self.start.wrapping_add(rng.below(span as u64) as $t)
            }
        }
    )*};
}

signed_range_strategy!(i32 => u32, i64 => u64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + rng.unit_f64() * (hi - lo)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng), self.2.generate(rng))
    }
}

/// Types with a whole-domain default strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Draws from the type's full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

/// Combinator namespace, mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use std::ops::{Range, RangeInclusive};

        /// A length range for collection strategies.
        pub struct SizeRange {
            lo: usize,
            hi_inclusive: usize,
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    lo: r.start,
                    hi_inclusive: r.end - 1,
                }
            }
        }

        impl From<RangeInclusive<usize>> for SizeRange {
            fn from(r: RangeInclusive<usize>) -> Self {
                SizeRange {
                    lo: *r.start(),
                    hi_inclusive: *r.end(),
                }
            }
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange {
                    lo: n,
                    hi_inclusive: n,
                }
            }
        }

        /// Strategy producing `Vec`s of `element` draws.
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// `Vec` strategy with a length drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let span = (self.size.hi_inclusive - self.size.lo) as u64;
                let len = self.size.lo + rng.below(span + 1) as usize;
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Per-block configuration, set via
/// `#![proptest_config(ProptestConfig::with_cases(n))]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Cases to run per property.
    pub cases: u64,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases: u64::from(cases),
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: NUM_CASES }
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::{any, prop, Arbitrary, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Runs each contained property over [`NUM_CASES`] deterministic cases
/// (or the count from an optional leading `#![proptest_config(..)]`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)]
     $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut runner = $crate::test_runner::TestRunner::new(stringify!($name));
                for _case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), runner.rng());)+
                    $body
                }
            }
        )*
    };
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let mut runner = $crate::test_runner::TestRunner::new(stringify!($name));
                for _case in 0..$crate::NUM_CASES {
                    $(let $arg = $crate::Strategy::generate(&($strat), runner.rng());)+
                    $body
                }
            }
        )*
    };
}

/// Asserts a property-test condition (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Skips the current case when its precondition does not hold. Expands
/// to `continue` in the case loop, so it must appear at statement level
/// in the property body (which is how the workspace uses it).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            continue;
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_streams() {
        let mut a = crate::TestRng::from_name("x");
        let mut b = crate::TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        fn ranges_respect_bounds(v in 3u64..10, w in 0.5f64..2.0, n in 1usize..=4) {
            prop_assert!((3..10).contains(&v));
            prop_assert!((0.5..2.0).contains(&w));
            prop_assert!((1..=4).contains(&n));
        }

        fn vec_lengths_in_range(xs in prop::collection::vec(any::<u8>(), 2..6)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 6);
        }

        fn tuples_compose(pair in (0u8..3, 1u64..12)) {
            prop_assert!(pair.0 < 3 && (1..12).contains(&pair.1));
        }
    }
}
