//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build container has no crates registry, so this vendors exactly
//! what `btpan-sim` consumes: [`rngs::SmallRng`], the
//! [`RngCore`]/[`SeedableRng`]/[`Rng`] traits, and integer `gen_range`.
//!
//! **Bit-exactness**: `SmallRng` reproduces rand 0.8 on 64-bit targets —
//! xoshiro256++ with the SplitMix64 `seed_from_u64` expansion and the
//! widening-multiply rejection sampler for `gen_range` — so campaign
//! streams keep the same values the original dependency produced.

use std::fmt;

/// Error type for fallible RNG operations (infallible here).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fills `dest` with random bytes, fallibly.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// A generator seedable from fixed state.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` (SplitMix64 expansion, matching
    /// rand 0.8's xoshiro implementation).
    fn seed_from_u64(mut state: u64) -> Self {
        const PHI: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(PHI);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

mod range {
    use super::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// A range suitable for [`super::Rng::gen_range`]. Sealed; only the
    /// integer ranges btpan uses are implemented.
    pub trait SampleRange {
        /// The sampled value type.
        type Output;
        /// Draws a uniform sample from the range.
        fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
    }

    /// rand 0.8's `sample_single_inclusive` for `u64`: widening multiply
    /// with zone rejection (unbiased).
    fn sample_u64_inclusive<R: RngCore + ?Sized>(low: u64, high: u64, rng: &mut R) -> u64 {
        assert!(low <= high, "gen_range: empty range");
        let range = high.wrapping_sub(low).wrapping_add(1);
        if range == 0 {
            // The full u64 domain.
            return rng.next_u64();
        }
        let zone = (range << range.leading_zeros()).wrapping_sub(1);
        loop {
            let v = rng.next_u64();
            let wide = u128::from(v) * u128::from(range);
            let hi = (wide >> 64) as u64;
            let lo = wide as u64;
            if lo <= zone {
                return low.wrapping_add(hi);
            }
        }
    }

    impl SampleRange for RangeInclusive<u64> {
        type Output = u64;
        fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> u64 {
            sample_u64_inclusive(*self.start(), *self.end(), rng)
        }
    }

    impl SampleRange for Range<u64> {
        type Output = u64;
        fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> u64 {
            assert!(self.start < self.end, "gen_range: empty range");
            sample_u64_inclusive(self.start, self.end - 1, rng)
        }
    }
}

pub use range::SampleRange;

/// Convenience extension over [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// A small, fast generator: xoshiro256++, bit-exact with rand 0.8's
    /// `SmallRng` on 64-bit targets.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            if s == [0; 4] {
                // All-zero state is a fixed point; nudge it (matches
                // xoshiro's documented requirement, unreachable via
                // seed_from_u64).
                s[0] = 1;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            let mut chunks = dest.chunks_exact_mut(8);
            for chunk in &mut chunks {
                chunk.copy_from_slice(&self.next_u64().to_le_bytes());
            }
            let rem = chunks.into_remainder();
            if !rem.is_empty() {
                let bytes = self.next_u64().to_le_bytes();
                let n = rem.len();
                rem.copy_from_slice(&bytes[..n]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    /// Pins the seed-42 stream of this xoshiro256++ implementation
    /// (SplitMix64-expanded seed, as rand 0.8 documents for `SmallRng`
    /// on 64-bit targets). Guards campaign reproducibility across
    /// refactors: any change to these values silently re-rolls every
    /// recorded experiment.
    #[test]
    fn seed_stream_is_stable() {
        let mut rng = SmallRng::seed_from_u64(42);
        let got: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert_eq!(
            got,
            vec![
                15021278609987233951,
                5881210131331364753,
                18149643915985481100,
                12933668939759105464
            ]
        );
    }

    #[test]
    fn gen_range_inclusive_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3u64..=9);
            assert!((3..=9).contains(&v));
        }
        assert_eq!(rng.gen_range(5u64..=5), 5);
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
