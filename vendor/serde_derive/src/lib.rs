//! Offline stand-in for `serde_derive`.
//!
//! Generates impls of the vendored serde facade's `Serialize` /
//! `Deserialize` traits (see `vendor/serde`). Parsing is done directly
//! over `proc_macro::TokenTree`s — the container has no `syn`/`quote` —
//! and covers the shapes this workspace actually derives: named
//! structs, tuple/newtype/unit structs, and enums with unit, newtype,
//! tuple, and struct variants. Generics are not supported.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A parsed `#[derive]` input.
struct Input {
    name: String,
    data: Data,
}

enum Data {
    /// `struct S { a: T, .. }` — field names in declaration order.
    NamedStruct(Vec<String>),
    /// `struct S(T, ..);` — arity.
    TupleStruct(usize),
    /// `struct S;`
    UnitStruct,
    /// `enum E { .. }`
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    /// Paren payload with this arity (1 = newtype).
    Tuple(usize),
    /// Brace payload with these field names.
    Struct(Vec<String>),
}

/// Derives the facade's `Serialize` (JSON value tree, serde-compatible
/// external representation).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed).parse().expect("generated Serialize impl parses")
}

/// Derives the facade's `Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed).parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);

    let keyword = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        t => panic!("derive: expected `struct` or `enum`, got `{t}`"),
    };
    i += 1;

    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        t => panic!("derive: expected type name, got `{t}`"),
    };
    i += 1;

    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("derive on `{name}`: generic types are not supported by the vendored serde_derive");
    }

    let data = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let body: Vec<TokenTree> = g.stream().into_iter().collect();
            if keyword == "enum" {
                Data::Enum(parse_variants(&body))
            } else {
                Data::NamedStruct(parse_named_fields(&body))
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let body: Vec<TokenTree> = g.stream().into_iter().collect();
            Data::TupleStruct(count_tuple_fields(&body))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Data::UnitStruct,
        t => panic!("derive on `{name}`: unexpected token {t:?}"),
    };

    Input { name, data }
}

/// Skips `#[...]` attributes and `pub` / `pub(...)` visibility starting
/// at `i`, returning the next significant index.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2, // `#` + `[...]` group
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
            _ => return i,
        }
    }
}

/// Advances past the current item to just after the next top-level
/// comma, treating `<`/`>` pairs as nesting (so commas inside
/// `BTreeMap<String, f64>` don't split fields).
fn skip_past_comma(tokens: &[TokenTree], mut i: usize) -> usize {
    let mut angle_depth: i32 = 0;
    while let Some(t) = tokens.get(i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return i + 1,
                _ => {}
            }
        }
        i += 1;
    }
    i
}

fn parse_named_fields(tokens: &[TokenTree]) -> Vec<String> {
    let mut names = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(tokens, i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        names.push(id.to_string());
        i = skip_past_comma(tokens, i + 1);
    }
    names
}

fn count_tuple_fields(tokens: &[TokenTree]) -> usize {
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        count += 1;
        i = skip_past_comma(tokens, i);
    }
    count
}

fn parse_variants(tokens: &[TokenTree]) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(tokens, i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        let name = id.to_string();
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                i += 1;
                VariantKind::Tuple(count_tuple_fields(&body))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                i += 1;
                VariantKind::Struct(parse_named_fields(&body))
            }
            _ => VariantKind::Unit,
        };
        // Skip any explicit discriminant (`= expr`) up to the comma.
        i = skip_past_comma(tokens, i);
        variants.push(Variant { name, kind });
    }
    variants
}

// ---------------------------------------------------------------------
// Codegen (string-built, then parsed into a TokenStream)
// ---------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.data {
        Data::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("(\"{f}\".to_string(), serde::Serialize::to_value(&self.{f}))")
                })
                .collect();
            format!("serde::Value::Object(vec![{}])", entries.join(", "))
        }
        Data::TupleStruct(1) => "serde::Serialize::to_value(&self.0)".to_string(),
        Data::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("serde::Value::Array(vec![{}])", items.join(", "))
        }
        Data::UnitStruct => "serde::Value::Null".to_string(),
        Data::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vname} => serde::Value::String(\"{vname}\".to_string())"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vname}(f0) => serde::Value::Object(vec![(\"{vname}\".to_string(), serde::Serialize::to_value(f0))])"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("serde::Serialize::to_value(f{i})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => serde::Value::Object(vec![(\"{vname}\".to_string(), serde::Value::Array(vec![{}]))])",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!("(\"{f}\".to_string(), serde::Serialize::to_value({f}))")
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => serde::Value::Object(vec![(\"{vname}\".to_string(), serde::Value::Object(vec![{}]))])",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "impl serde::Serialize for {name} {{\n\
             fn to_value(&self) -> serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.data {
        Data::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: serde::field(value, \"{f}\", \"{name}\")?"))
                .collect();
            format!("Ok({name} {{ {} }})", inits.join(", "))
        }
        Data::TupleStruct(1) => {
            format!("Ok({name}(serde::Deserialize::from_value(value)?))")
        }
        Data::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::element(value, {i}, \"{name}\")?"))
                .collect();
            format!("Ok({name}({}))", items.join(", "))
        }
        Data::UnitStruct => format!("Ok({name})"),
        Data::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{0}\" => return Ok({name}::{0}),", v.name))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "\"{vname}\" => Ok({name}::{vname}(serde::Deserialize::from_value(inner)?))"
                        )),
                        VariantKind::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!("serde::element(inner, {i}, \"{name}::{vname}\")?")
                                })
                                .collect();
                            Some(format!(
                                "\"{vname}\" => Ok({name}::{vname}({}))",
                                items.join(", ")
                            ))
                        }
                        VariantKind::Struct(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: serde::field(inner, \"{f}\", \"{name}::{vname}\")?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vname}\" => Ok({name}::{vname} {{ {} }})",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "if let Some(s) = value.as_str() {{\n\
                     match s {{\n\
                         {unit}\n\
                         other => return Err(serde::Error::custom(format!(\"unknown unit variant `{{other}}` of `{name}`\"))),\n\
                     }}\n\
                 }}\n\
                 let (tag, inner) = serde::variant(value, \"{name}\")?;\n\
                 match tag {{\n\
                     {tagged},\n\
                     other => Err(serde::Error::custom(format!(\"unknown variant `{{other}}` of `{name}`\"))),\n\
                 }}",
                unit = unit_arms.join("\n"),
                tagged = if tagged_arms.is_empty() {
                    // Keep the match arm list non-degenerate for
                    // all-unit enums.
                    "_ if false => unreachable!()".to_string()
                } else {
                    tagged_arms.join(",\n")
                },
            )
        }
    };
    format!(
        "impl<'de> serde::Deserialize<'de> for {name} {{\n\
             fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {{ {body} }}\n\
         }}"
    )
}
