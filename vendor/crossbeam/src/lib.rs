//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the multi-producer multi-consumer unbounded channel subset
//! used by the campaign runner/supervisor, built on
//! `Mutex<VecDeque<T>>` + `Condvar`. Disconnection semantics match
//! crossbeam: `recv` fails once all senders are gone *and* the queue is
//! drained; `send` fails once all receivers are gone.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::Duration;

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the unsent message back.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] on a drained, disconnected
    /// channel.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// Channel drained and all senders dropped.
        Disconnected,
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, failing if every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                return Err(SendError(value));
            }
            let mut queue = self.shared.queue.lock().expect("channel lock");
            queue.push_back(value);
            drop(queue);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender: wake all blocked receivers so they can
                // observe the disconnection.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues the next message, blocking until one is available or
        /// the channel disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.shared.queue.lock().expect("channel lock");
            loop {
                if let Some(v) = queue.pop_front() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                queue = self.shared.ready.wait(queue).expect("channel lock");
            }
        }

        /// Dequeues the next message, waiting at most `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut queue = self.shared.queue.lock().expect("channel lock");
            loop {
                if let Some(v) = queue.pop_front() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .shared
                    .ready
                    .wait_timeout(queue, deadline - now)
                    .expect("channel lock");
                queue = guard;
            }
        }

        /// A blocking iterator over received messages; ends when the
        /// channel is drained and disconnected.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Blocking iterator returned by [`Receiver::iter`].
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn fan_out_fan_in() {
        let (tx, rx) = channel::unbounded::<u32>();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let mut got: Vec<u32> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn multi_consumer_across_threads() {
        let (tx, rx) = channel::unbounded::<u32>();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    s.spawn(move || rx.iter().count())
                })
                .collect();
            drop(rx);
            for i in 0..1000 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
            assert_eq!(total, 1000);
        });
    }

    #[test]
    fn recv_timeout_times_out() {
        let (tx, rx) = channel::unbounded::<u32>();
        let err = rx
            .recv_timeout(std::time::Duration::from_millis(10))
            .unwrap_err();
        assert_eq!(err, channel::RecvTimeoutError::Timeout);
        drop(tx);
        let err = rx
            .recv_timeout(std::time::Duration::from_millis(10))
            .unwrap_err();
        assert_eq!(err, channel::RecvTimeoutError::Disconnected);
    }
}
