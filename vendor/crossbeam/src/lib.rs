//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the multi-producer multi-consumer channel subset used by
//! the campaign runner/supervisor and the streaming ingestion engine,
//! built on `Mutex<VecDeque<T>>` + `Condvar`. Both `unbounded` and
//! `bounded` flavours are available; a bounded `send` blocks while the
//! queue is at capacity (backpressure). Disconnection semantics match
//! crossbeam: `recv` fails once all senders are gone *and* the queue is
//! drained; `send` fails once all receivers are gone.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::Duration;

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        /// Signalled when a bounded queue frees a slot.
        space: Condvar,
        /// `None` = unbounded.
        capacity: Option<usize>,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the unsent message back.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] on a drained, disconnected
    /// channel.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// Channel drained and all senders dropped.
        Disconnected,
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    fn channel_with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            space: Condvar::new(),
            capacity,
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        channel_with_capacity(None)
    }

    /// Creates a bounded MPMC channel holding at most `cap` messages;
    /// `send` blocks while the queue is full. Unlike real crossbeam,
    /// `cap` must be at least 1 (no zero-capacity rendezvous).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        assert!(cap > 0, "bounded channel capacity must be at least 1");
        channel_with_capacity(Some(cap))
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, failing if every receiver has been dropped.
        /// On a bounded channel, blocks while the queue is at capacity.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                return Err(SendError(value));
            }
            let mut queue = self.shared.queue.lock().expect("channel lock");
            if let Some(cap) = self.shared.capacity {
                while queue.len() >= cap {
                    if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                        return Err(SendError(value));
                    }
                    queue = self.shared.space.wait(queue).expect("channel lock");
                }
            }
            queue.push_back(value);
            drop(queue);
            self.shared.ready.notify_one();
            Ok(())
        }

        /// Number of messages currently queued in the channel.
        pub fn len(&self) -> usize {
            self.shared.queue.lock().expect("channel lock").len()
        }

        /// Whether the channel currently holds no messages.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender: wake all blocked receivers so they can
                // observe the disconnection.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues the next message, blocking until one is available or
        /// the channel disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.shared.queue.lock().expect("channel lock");
            loop {
                if let Some(v) = queue.pop_front() {
                    self.shared.space.notify_one();
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                queue = self.shared.ready.wait(queue).expect("channel lock");
            }
        }

        /// Dequeues the next message, waiting at most `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut queue = self.shared.queue.lock().expect("channel lock");
            loop {
                if let Some(v) = queue.pop_front() {
                    self.shared.space.notify_one();
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .shared
                    .ready
                    .wait_timeout(queue, deadline - now)
                    .expect("channel lock");
                queue = guard;
            }
        }

        /// A blocking iterator over received messages; ends when the
        /// channel is drained and disconnected.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.shared.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last receiver: wake all blocked senders so they can
                // observe the disconnection.
                self.shared.space.notify_all();
            }
        }
    }

    /// Blocking iterator returned by [`Receiver::iter`].
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn fan_out_fan_in() {
        let (tx, rx) = channel::unbounded::<u32>();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let mut got: Vec<u32> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn multi_consumer_across_threads() {
        let (tx, rx) = channel::unbounded::<u32>();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    s.spawn(move || rx.iter().count())
                })
                .collect();
            drop(rx);
            for i in 0..1000 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
            assert_eq!(total, 1000);
        });
    }

    #[test]
    fn bounded_send_blocks_until_recv() {
        let (tx, rx) = channel::bounded::<u32>(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        std::thread::scope(|s| {
            let t = s.spawn(move || {
                // Queue is full; this blocks until the main thread drains.
                tx.send(3).unwrap();
                tx.send(4).unwrap();
            });
            std::thread::sleep(std::time::Duration::from_millis(20));
            let mut got = Vec::new();
            for _ in 0..4 {
                got.push(rx.recv().unwrap());
            }
            t.join().unwrap();
            assert_eq!(got, vec![1, 2, 3, 4]);
        });
    }

    #[test]
    fn bounded_send_fails_when_receiver_gone() {
        let (tx, rx) = channel::bounded::<u32>(1);
        tx.send(1).unwrap();
        std::thread::scope(|s| {
            let t = s.spawn(move || tx.send(2));
            std::thread::sleep(std::time::Duration::from_millis(20));
            drop(rx);
            assert!(t.join().unwrap().is_err());
        });
    }

    #[test]
    fn recv_timeout_times_out() {
        let (tx, rx) = channel::unbounded::<u32>();
        let err = rx
            .recv_timeout(std::time::Duration::from_millis(10))
            .unwrap_err();
        assert_eq!(err, channel::RecvTimeoutError::Timeout);
        drop(tx);
        let err = rx
            .recv_timeout(std::time::Duration::from_millis(10))
            .unwrap_err();
        assert_eq!(err, channel::RecvTimeoutError::Disconnected);
    }
}
