//! Offline stand-in for `serde_json`.
//!
//! Text layer over the vendored serde facade's `Value` tree: a strict
//! recursive-descent parser with line/column error positions and
//! `Error::is_eof()` (so truncated JSONL lines are distinguishable from
//! malformed ones), plus compact and pretty writers matching
//! serde_json's output byte-for-byte for the shapes btpan emits.

pub use serde::{Error, Number, Value};

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Serializes `value` to compact JSON.
///
/// Infallible for the facade's data model; the `Result` mirrors
/// serde_json's signature.
#[allow(clippy::unnecessary_wraps)]
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_string())
}

/// Serializes `value` to pretty-printed JSON (2-space indent).
#[allow(clippy::unnecessary_wraps)]
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&value.to_value(), 0, &mut out);
    Ok(out)
}

/// Parses `input` as JSON and deserializes into `T`.
///
/// # Errors
///
/// Returns a positioned [`Error`]; [`Error::is_eof`] is true when the
/// input ended mid-value (truncation) rather than containing bad
/// syntax.
pub fn from_str<T: for<'a> Deserialize<'a>>(input: &str) -> Result<T, Error> {
    let value = parse_value_complete(input)?;
    T::from_value(&value)
}

/// Parses `input` into a raw [`Value`] tree.
pub fn value_from_str(input: &str) -> Result<Value, Error> {
    parse_value_complete(input)
}

fn write_pretty(value: &Value, depth: usize, out: &mut String) {
    match value {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(depth + 1, out);
                write_pretty(item, depth + 1, out);
            }
            out.push('\n');
            push_indent(depth, out);
            out.push(']');
        }
        Value::Object(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(depth + 1, out);
                let _ = write!(out, "{}: ", Value::String(k.clone()));
                write_pretty(v, depth + 1, out);
            }
            out.push('\n');
            push_indent(depth, out);
            out.push('}');
        }
        leaf => {
            let _ = write!(out, "{leaf}");
        }
    }
}

fn push_indent(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value_complete(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos < p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn line_col(&self) -> (usize, usize) {
        let mut line = 1;
        let mut col = 1;
        for &b in &self.bytes[..self.pos] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        (line, col)
    }

    fn err(&self, msg: &str) -> Error {
        let (line, col) = self.line_col();
        Error::syntax(msg, line, col)
    }

    fn err_eof(&self) -> Error {
        let (line, col) = self.line_col();
        Error::eof(line, col)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        match self.peek() {
            Some(got) if got == b => {
                self.pos += 1;
                Ok(())
            }
            Some(_) => Err(self.err(&format!("expected `{}`", b as char))),
            None => Err(self.err_eof()),
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(self.err_eof()),
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(_) => Err(self.err("expected value")),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value, Error> {
        let end = self.pos + kw.len();
        if end > self.bytes.len() {
            // The input ends in the middle of the keyword: truncation,
            // not malformation.
            if kw.as_bytes().starts_with(&self.bytes[self.pos..]) {
                self.pos = self.bytes.len();
                return Err(self.err_eof());
            }
            return Err(self.err("expected value"));
        }
        if &self.bytes[self.pos..end] == kw.as_bytes() {
            self.pos = end;
            Ok(value)
        } else {
            Err(self.err("expected value"))
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            if self.peek().is_none() {
                return Err(self.err_eof());
            }
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                Some(_) => return Err(self.err("expected `,` or `}`")),
                None => return Err(self.err_eof()),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                Some(_) => return Err(self.err("expected `,` or `]`")),
                None => return Err(self.err_eof()),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err_eof()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        None => return Err(self.err_eof()),
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.parse_hex4()?;
                            // Handle surrogate pairs.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.parse_hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid unicode escape"))?);
                            continue;
                        }
                        Some(_) => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 character (input is valid UTF-8
                    // by construction of `&str`).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err_eof())?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            self.pos = self.bytes.len();
            return Err(self.err_eof());
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid unicode escape"))?;
        let cp = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return if self.peek().is_none() {
                Err(self.err_eof())
            } else {
                Err(self.err("expected digits"))
            };
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return if self.peek().is_none() {
                    Err(self.err_eof())
                } else {
                    Err(self.err("expected fraction digits"))
                };
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return if self.peek().is_none() {
                    Err(self.err_eof())
                } else {
                    Err(self.err("expected exponent digits"))
                };
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ascii");
        if is_float {
            let v: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
            Ok(Value::Number(Number::F64(v)))
        } else if negative {
            match text.parse::<i64>() {
                Ok(v) => Ok(Value::Number(Number::I64(v))),
                Err(_) => {
                    let v: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
                    Ok(Value::Number(Number::F64(v)))
                }
            }
        } else {
            match text.parse::<u64>() {
                Ok(v) => Ok(Value::Number(Number::U64(v))),
                Err(_) => {
                    let v: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
                    Ok(Value::Number(Number::F64(v)))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{from_str, to_string, to_string_pretty, value_from_str, Value};
    use std::collections::BTreeMap;

    #[test]
    fn round_trips_map() {
        let mut m = BTreeMap::new();
        m.insert("mttf_s".to_string(), 1234.5);
        m.insert("availability".to_string(), 0.999);
        let json = to_string(&m).unwrap();
        assert_eq!(json, r#"{"availability":0.999,"mttf_s":1234.5}"#);
        let back: BTreeMap<String, f64> = from_str(&json).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn pretty_matches_serde_json_layout() {
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), vec![1u64, 2]);
        let json = to_string_pretty(&m).unwrap();
        assert_eq!(json, "{\n  \"a\": [\n    1,\n    2\n  ]\n}");
    }

    #[test]
    fn truncated_input_is_eof_not_syntax() {
        let full = r#"{"at":12,"node":"n1"}"#;
        let truncated = &full[..10];
        let err = value_from_str(truncated).unwrap_err();
        assert!(err.is_eof(), "truncation must read as EOF: {err}");

        let garbled = r#"{"at":12,!!}"#;
        let err = value_from_str(garbled).unwrap_err();
        assert!(!err.is_eof(), "garbling must not read as EOF: {err}");
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = value_from_str(r#""a\n\té😀""#).unwrap();
        assert_eq!(v, Value::String("a\n\té😀".to_string()));
    }

    #[test]
    fn error_positions_are_one_based() {
        let err = value_from_str("{\"a\": nope}").unwrap_err();
        assert_eq!(err.line(), 1);
        assert!(err.column() > 1);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(value_from_str("1 2").is_err());
    }
}
