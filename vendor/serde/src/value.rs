//! The JSON value tree this facade serializes through.

use std::fmt;

/// A JSON number. Integers keep their signedness so `u64::MAX`-range
/// sequence numbers survive a round trip losslessly.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// A non-negative integer.
    U64(u64),
    /// A negative integer (non-negative i64s normalize to `U64`).
    I64(i64),
    /// A float. Non-finite values serialize as `null`, matching serde.
    F64(f64),
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        use Number::*;
        match (self.normalized(), other.normalized()) {
            (U64(a), U64(b)) => a == b,
            (I64(a), I64(b)) => a == b,
            (F64(a), F64(b)) => a == b || (a.is_nan() && b.is_nan()),
            _ => false,
        }
    }
}

impl Number {
    /// Folds non-negative `I64` into `U64` so equality is by value.
    fn normalized(self) -> Number {
        match self {
            Number::I64(v) if v >= 0 => Number::U64(v as u64),
            other => other,
        }
    }

    /// The value as `u64`, when representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self.normalized() {
            Number::U64(v) => Some(v),
            _ => None,
        }
    }

    /// The value as `i64`, when representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self.normalized() {
            Number::U64(v) => i64::try_from(v).ok(),
            Number::I64(v) => Some(v),
            Number::F64(_) => None,
        }
    }

    /// The value as `f64` (integers convert losslessly up to 2^53).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Number::U64(v) => Some(v as f64),
            Number::I64(v) => Some(v as f64),
            Number::F64(v) => Some(v),
        }
    }
}

/// A JSON value. Object entries preserve insertion order so struct
/// serialization is deterministic (field declaration order), matching
/// serde_json's default behaviour.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, as ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64`, when it is a representable number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as `i64`, when it is a representable number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The value as `f64`; JSON `null` reads as NaN so that serde's
    /// "non-finite floats serialize to null" convention round-trips.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            Value::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// The value as `&str`, when it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// True when the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl fmt::Display for Value {
    /// Compact JSON, identical to what `serde_json::to_string` emits.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(Number::U64(v)) => write!(f, "{v}"),
            Value::Number(Number::I64(v)) => write!(f, "{v}"),
            Value::Number(Number::F64(v)) => {
                if v.is_finite() {
                    write!(f, "{}", format_f64(*v))
                } else {
                    f.write_str("null")
                }
            }
            Value::String(s) => write_json_string(f, s),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Object(entries) => {
                f.write_str("{")?;
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_json_string(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Shortest round-trip-stable decimal rendering, with serde_json's
/// convention that integral floats keep a trailing `.0`.
pub(crate) fn format_f64(v: f64) -> String {
    let s = format!("{v}");
    if s.contains('.') || s.contains('e') || s.contains('E') || s.contains("inf") {
        s
    } else {
        format!("{s}.0")
    }
}

/// Writes `s` as a JSON string literal with standard escapes.
pub(crate) fn write_json_string(f: &mut impl fmt::Write, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_char(c)?,
        }
    }
    f.write_str("\"")
}

#[cfg(test)]
mod tests {
    use super::{Number, Value};

    #[test]
    fn display_is_compact_json() {
        let v = Value::Object(vec![
            ("a".into(), Value::Number(Number::U64(1))),
            (
                "b".into(),
                Value::Array(vec![Value::Null, Value::Bool(true)]),
            ),
            ("c".into(), Value::String("x\"y".into())),
        ]);
        assert_eq!(v.to_string(), r#"{"a":1,"b":[null,true],"c":"x\"y"}"#);
    }

    #[test]
    fn floats_keep_trailing_zero() {
        assert_eq!(Value::Number(Number::F64(2.0)).to_string(), "2.0");
        assert_eq!(Value::Number(Number::F64(2.5)).to_string(), "2.5");
        assert_eq!(Value::Number(Number::F64(f64::NAN)).to_string(), "null");
    }

    #[test]
    fn number_equality_crosses_signedness() {
        assert_eq!(Number::U64(5), Number::I64(5));
        assert_ne!(Number::U64(5), Number::F64(5.0));
    }
}
