//! Offline stand-in for the `serde` crate.
//!
//! The real serde models a generic data format; this vendored stand-in
//! collapses the data model to a JSON [`Value`] tree, which is the only
//! format the workspace serializes to (`serde_json` JSONL traces and
//! experiment reports). The derive macros generate impls of these
//! simplified traits with the same external JSON representation real
//! serde produces (externally tagged enums, newtype transparency,
//! `Option` ↔ `null`/absent), so existing traces stay readable.

mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::{Number, Value};

use std::collections::BTreeMap;
use std::fmt;

/// Serialization/deserialization error.
#[derive(Debug)]
pub struct Error {
    msg: String,
    /// 1-based line/column of a parse error, when known.
    pos: Option<(usize, usize)>,
    eof: bool,
}

impl Error {
    /// Creates an error with a free-form message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
            pos: None,
            eof: false,
        }
    }

    /// Creates a parse error at `line`/`column` (1-based).
    pub fn syntax(msg: impl fmt::Display, line: usize, column: usize) -> Self {
        Error {
            msg: msg.to_string(),
            pos: Some((line, column)),
            eof: false,
        }
    }

    /// Creates an unexpected-end-of-input error at `line`/`column`.
    pub fn eof(line: usize, column: usize) -> Self {
        Error {
            msg: "unexpected end of JSON input".to_string(),
            pos: Some((line, column)),
            eof: true,
        }
    }

    /// True when the input ended mid-value (truncation) rather than
    /// containing malformed syntax. Mirrors `serde_json::Error::is_eof`.
    pub fn is_eof(&self) -> bool {
        self.eof
    }

    /// Line of a parse error (1-based; 0 when not a parse error),
    /// mirroring `serde_json::Error::line`.
    pub fn line(&self) -> usize {
        self.pos.map_or(0, |(l, _)| l)
    }

    /// Column of a parse error (1-based; 0 when not a parse error).
    pub fn column(&self) -> usize {
        self.pos.map_or(0, |(_, c)| c)
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.pos {
            Some((line, column)) => write!(f, "{} at line {line} column {column}", self.msg),
            None => write!(f, "{}", self.msg),
        }
    }
}

impl std::error::Error for Error {}

/// A value serializable to the JSON data model.
pub trait Serialize {
    /// Converts `self` into a JSON value tree.
    fn to_value(&self) -> Value;
}

/// A value reconstructible from the JSON data model.
///
/// The lifetime parameter exists for signature compatibility with real
/// serde (`for<'de> Deserialize<'de>` bounds in downstream code); this
/// facade always deserializes from an owned tree.
pub trait Deserialize<'de>: Sized {
    /// Rebuilds `Self` from a JSON value tree.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the tree does not match `Self`'s shape.
    fn from_value(value: &Value) -> Result<Self, Error>;

    /// The value used when a struct field is absent entirely
    /// (`None` = absence is an error; `Option` overrides this).
    #[doc(hidden)]
    fn absent() -> Option<Self> {
        None
    }
}

// ---------------------------------------------------------------------
// Derive-support helpers (referenced by generated code).
// ---------------------------------------------------------------------

/// Looks up struct field `name` in `value`, deserializing it, honouring
/// absence semantics (`Option` fields tolerate a missing key).
#[doc(hidden)]
pub fn field<T: for<'a> Deserialize<'a>>(value: &Value, name: &str, ty: &str) -> Result<T, Error> {
    match value.get(name) {
        Some(v) => T::from_value(v)
            .map_err(|e| Error::custom(format!("field `{name}` of `{ty}`: {e}"))),
        None => T::absent().ok_or_else(|| Error::custom(format!("missing field `{name}` in `{ty}`"))),
    }
}

/// Splits an externally tagged enum value `{"Variant": inner}` into its
/// tag and payload.
#[doc(hidden)]
pub fn variant<'v>(value: &'v Value, ty: &str) -> Result<(&'v str, &'v Value), Error> {
    match value {
        Value::Object(entries) if entries.len() == 1 => {
            Ok((entries[0].0.as_str(), &entries[0].1))
        }
        _ => Err(Error::custom(format!(
            "expected externally tagged `{ty}` variant object"
        ))),
    }
}

/// Element `i` of a tuple-shaped array value.
#[doc(hidden)]
pub fn element<T: for<'a> Deserialize<'a>>(value: &Value, i: usize, ty: &str) -> Result<T, Error> {
    match value {
        Value::Array(items) => items
            .get(i)
            .ok_or_else(|| Error::custom(format!("`{ty}` tuple too short: no element {i}")))
            .and_then(T::from_value),
        _ => Err(Error::custom(format!("expected array for `{ty}`"))),
    }
}

// ---------------------------------------------------------------------
// Impls for primitives and std containers.
// ---------------------------------------------------------------------

macro_rules! ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::U64(u64::from(*self)))
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = value
                    .as_u64()
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}

ser_de_uint!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::Number(Number::U64(*self as u64))
    }
}

impl<'de> Deserialize<'de> for usize {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let n = value.as_u64().ok_or_else(|| Error::custom("expected usize"))?;
        usize::try_from(n).map_err(|_| Error::custom("out of range for usize"))
    }
}

macro_rules! ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::I64(i64::from(*self)))
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = value
                    .as_i64()
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}

ser_de_int!(i8, i16, i32, i64);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(*self))
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_f64().ok_or_else(|| Error::custom("expected f64"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(f64::from(*self)))
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .map(|v| v as f32)
            .ok_or_else(|| Error::custom("expected f32"))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<'de, T: for<'a> Deserialize<'a>> Deserialize<'de> for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn absent() -> Option<Self> {
        Some(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: for<'a> Deserialize<'a>> Deserialize<'de> for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::custom("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: for<'a> Deserialize<'a> + fmt::Debug, const N: usize> Deserialize<'de> for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(value)?;
        <[T; N]>::try_from(items).map_err(|v| {
            Error::custom(format!("expected array of length {N}, got {}", v.len()))
        })
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<'de, A: for<'a> Deserialize<'a>, B: for<'a> Deserialize<'a>> Deserialize<'de> for (A, B) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok((element(value, 0, "tuple")?, element(value, 1, "tuple")?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<'de, A, B, C> Deserialize<'de> for (A, B, C)
where
    A: for<'a> Deserialize<'a>,
    B: for<'a> Deserialize<'a>,
    C: for<'a> Deserialize<'a>,
{
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok((
            element(value, 0, "tuple")?,
            element(value, 1, "tuple")?,
            element(value, 2, "tuple")?,
        ))
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        // JSON object keys are strings; like serde_json, string-like
        // and integer keys (incl. unit enum variants) are accepted.
        Value::Object(
            self.iter()
                .map(|(k, v)| {
                    let key = match k.to_value() {
                        Value::String(s) => s,
                        Value::Number(n) => Value::Number(n).to_string(),
                        other => panic!("map key must serialize to a string or integer, got {other:?}"),
                    };
                    (key, v.to_value())
                })
                .collect(),
        )
    }
}

impl<'de, K, V> Deserialize<'de> for BTreeMap<K, V>
where
    K: for<'a> Deserialize<'a> + Ord,
    V: for<'a> Deserialize<'a>,
{
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| {
                    // Keys arrive as JSON strings; retry integer-typed
                    // keys through their numeric form.
                    let key = K::from_value(&Value::String(k.clone())).or_else(|e| {
                        match k.parse::<u64>() {
                            Ok(n) => K::from_value(&Value::Number(Number::U64(n))),
                            Err(_) => match k.parse::<i64>() {
                                Ok(n) => K::from_value(&Value::Number(Number::I64(n))),
                                Err(_) => Err(e),
                            },
                        }
                    })?;
                    Ok((key, V::from_value(v)?))
                })
                .collect(),
            _ => Err(Error::custom("expected object")),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<'de> Deserialize<'de> for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}
