//! Offline stand-in for the `parking_lot` crate.
//!
//! The build container has no access to a crates registry, so the
//! workspace vendors the tiny API subset it actually uses: a `Mutex`
//! whose `lock()` returns the guard directly (no poisoning `Result`).
//! Backed by `std::sync::Mutex`; a poisoned lock is recovered by taking
//! the inner value, matching parking_lot's no-poisoning semantics.

use std::sync::{Mutex as StdMutex, MutexGuard as StdGuard};

/// A mutual-exclusion primitive (parking_lot-compatible subset).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: StdGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self
                .inner
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(5u32);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 6);
    }
}
