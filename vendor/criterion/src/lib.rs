//! Offline stand-in for the `criterion` crate.
//!
//! Keeps the benches compiling and runnable without the statistics
//! engine: each benchmark runs its closure for a handful of samples and
//! prints the mean wall-clock time per iteration. `--test` mode (what
//! `cargo test` passes to `harness = false` bench targets) runs each
//! benchmark once, so the test suite stays fast.

pub use std::hint::black_box;

use std::time::{Duration, Instant};

/// Per-iteration timing loop handed to bench closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this sample's iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` passes `--bench` to harness=false targets;
        // anything else (notably `cargo test`) gets the quick
        // run-once-and-check mode, like real criterion.
        let bench_mode = std::env::args().any(|a| a == "--bench");
        Criterion {
            sample_size: 10,
            test_mode: !bench_mode,
        }
    }
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let sample_size = self.sample_size;
        self.run_one(&name.into(), sample_size, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&self, name: &str, sample_size: usize, mut f: F) {
        let (samples, iters) = if self.test_mode { (1, 1) } else { (sample_size, 1) };
        let mut total = Duration::ZERO;
        let mut total_iters = 0u64;
        for _ in 0..samples {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            total += b.elapsed;
            total_iters += iters;
        }
        if self.test_mode {
            println!("test {name} ... ok");
        } else {
            let per_iter = total.as_nanos() / u128::from(total_iters.max(1));
            println!("{name}: {} ns/iter (n={total_iters})", per_iter);
        }
    }
}

/// A named group of benchmarks with shared settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, name.into());
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion.run_one(&full, sample_size, f);
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Declares a benchmark group function list, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_closures() {
        let mut c = Criterion {
            sample_size: 2,
            test_mode: true,
        };
        let mut group = c.benchmark_group("g");
        let mut ran = false;
        group.sample_size(2).bench_function("f", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        group.finish();
        assert!(ran);
    }
}
