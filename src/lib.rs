//! # btpan
//!
//! A faithful, fully-simulated reproduction of *Collecting and Analyzing
//! Failure Data of Bluetooth Personal Area Networks* (Cinque, Cotroneo,
//! Russo — DSN 2006): two heterogeneous Bluetooth PAN testbeds under a
//! 24/7 synthetic workload, the merge-and-coalesce failure-data analysis
//! pipeline, software-implemented recovery actions, error-masking
//! strategies, and the dependability improvements they buy.
//!
//! This facade crate re-exports [`btpan_core`]; see the workspace crates
//! for the individual subsystems:
//!
//! * `btpan-sim` — deterministic simulation substrate;
//! * `btpan-baseband` — slot-level ACL link (CRC-16, FEC, bursty
//!   channel, ARQ, piconet TDD);
//! * `btpan-stack` — HCI/LMP/L2CAP/SDP/BNEP/PAN, USB & BCSP transports,
//!   the hotplug bind race;
//! * `btpan-faults` — the failure model of paper Table 1 with the
//!   calibrated injection profiles of Tables 2–3;
//! * `btpan-workload` — the Random and Realistic `BlueTest` workloads;
//! * `btpan-collect` — Test/System logs, LogAnalyzer, repository,
//!   tupling coalescence and the window-sensitivity analysis;
//! * `btpan-stream` — sharded streaming ingestion and incremental
//!   online analysis (watermark merge, online coalescence, Welford
//!   estimators, checkpoint/resume);
//! * `btpan-recovery` — the seven SIRAs, masking strategies, and the
//!   four Table 4 recovery policies;
//! * `btpan-analysis` — TTF/TTR, MTTF/MTTR/availability/coverage, the
//!   failure-distribution figures, paper reference values;
//! * `btpan-core` — testbed assembly, campaign simulation, experiments.
//!
//! ## Quickstart
//!
//! ```
//! use btpan::prelude::*;
//!
//! // One simulated hour of the Random-WL testbed under the SIRA policy.
//! let config = CampaignConfig::paper(42, WorkloadKind::Random, RecoveryPolicy::Siras)
//!     .duration(SimDuration::from_secs(3_600));
//! let result = Campaign::new(config).run();
//! println!(
//!     "{} cycles, {} failures, {} log items collected",
//!     result.cycles_run,
//!     result.failure_count,
//!     result.repository.total_count()
//! );
//! ```

pub use btpan_core::*;

/// The streaming ingestion + online analysis subsystem.
pub use btpan_stream as stream;

/// Everything needed for typical use.
pub mod prelude {
    pub use btpan_core::prelude::*;
    pub use btpan_sim::time::{SimDuration, SimTime};
}
