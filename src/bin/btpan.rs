//! The `btpan` command-line tool. See `btpan help`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match btpan_core::cli::run_cli(&args) {
        Ok(outcome) => {
            print!("{}", outcome.output);
            std::process::exit(outcome.status);
        }
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(e.exit_code());
        }
    }
}
