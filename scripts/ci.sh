#!/usr/bin/env bash
# Full CI gate: formatting, release build, every test in the workspace,
# and clippy with warnings denied. Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all --check
cargo build --release --workspace
cargo test -q --release --workspace
cargo clippy --release --workspace --all-targets -- -D warnings
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace
# Observability overhead contract: disabled-registry instrumentation
# must stay at relaxed-atomic cost on the bench_stream hot path.
cargo run --release -p btpan-bench --bin repro_obs_overhead
# Perf smoke gate: the hot-path fast paths must hold their floors
# (idle-slot skip >= 3x over the slot-by-slot reference and an absolute
# slots/s floor) and every fast-vs-reference equivalence check must
# pass. Emits BENCH_PR4.json at the repo root.
cargo run --release -p btpan-bench --bin repro_bench -- --quick
# Topology gate: the two-testbed `paper-both` preset must reproduce the
# legacy single-testbed Table 4 substrate (failure counters + TTF/TTR
# series) bit for bit per testbed at a fixed seed, and the 3-piconet
# scatternet smoke campaign must run deterministically with
# inter-piconet propagation visible in the relationship matrix.
cargo run --release -p btpan-bench --bin repro_topology -- --quick

echo "ci: all gates passed"
