#!/usr/bin/env bash
# Full CI gate: formatting, release build, every test in the workspace,
# and clippy with warnings denied. Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all --check
cargo build --release --workspace
cargo test -q --release --workspace
cargo clippy --release --workspace --all-targets -- -D warnings
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace
# Observability overhead contract: disabled-registry instrumentation
# must stay at relaxed-atomic cost on the bench_stream hot path.
cargo run --release -p btpan-bench --bin repro_obs_overhead

echo "ci: all gates passed"
