//! Property-based tests over the pipeline's invariants, driven by
//! proptest on top of real campaign output.

use btpan::prelude::*;
use btpan_collect::coalesce::coalesce;
use btpan_collect::merge::merge_records;
use proptest::prelude::*;

fn short_campaign(seed: u64) -> CampaignResult {
    Campaign::new(
        CampaignConfig::paper(seed, WorkloadKind::Random, RecoveryPolicy::Siras)
            .duration(SimDuration::from_secs(2 * 3600)),
    )
    .run()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn coalescence_monotone_in_window(seed in 1u64..500, w1 in 1u64..2_000, w2 in 1u64..2_000) {
        let (lo, hi) = (w1.min(w2), w1.max(w2));
        let r = short_campaign(seed);
        for node in r.repository.reporting_nodes().into_iter().take(1) {
            let mut records = r.repository.records_of(node);
            records.sort();
            let t_lo = coalesce(&records, SimDuration::from_secs(lo)).len();
            let t_hi = coalesce(&records, SimDuration::from_secs(hi)).len();
            prop_assert!(t_hi <= t_lo, "window {lo}->{hi}: tuples {t_lo}->{t_hi}");
        }
    }

    #[test]
    fn coalescence_preserves_every_record(seed in 1u64..500, w in 1u64..5_000) {
        let r = short_campaign(seed);
        for node in r.repository.reporting_nodes().into_iter().take(1) {
            let mut records = r.repository.records_of(node);
            records.sort();
            let tuples = coalesce(&records, SimDuration::from_secs(w));
            let total: usize = tuples.iter().map(|t| t.len()).sum();
            prop_assert_eq!(total, records.len());
        }
    }

    #[test]
    fn merge_is_sorted_and_complete(seed in 1u64..500) {
        let r = short_campaign(seed);
        let nodes = r.repository.reporting_nodes();
        let streams: Vec<_> = nodes.iter().map(|&n| r.repository.records_of(n)).collect();
        let expected: usize = streams.iter().map(Vec::len).sum();
        let merged = merge_records(streams);
        prop_assert_eq!(merged.len(), expected);
        for w in merged.windows(2) {
            prop_assert!(w[0].at <= w[1].at);
        }
    }

    #[test]
    fn timeline_partition_invariant(seed in 1u64..500) {
        let r = short_campaign(seed);
        for tl in &r.timelines {
            prop_assert_eq!(tl.uptime() + tl.downtime(), tl.span());
            let series = tl.series();
            // downtime equals the sum of TTRs
            let ttr_sum: SimDuration = series.ttr.iter().copied().sum();
            prop_assert_eq!(ttr_sum, tl.downtime());
        }
    }

    #[test]
    fn availability_in_unit_interval(seed in 1u64..200) {
        let r = short_campaign(seed);
        let s = r.piconet_series();
        if !s.is_empty() {
            let mttf = s.ttf_stats().mean().unwrap_or(0.0);
            let mttr = s.ttr_stats().mean().unwrap_or(0.0);
            let a = mttf / (mttf + mttr).max(f64::MIN_POSITIVE);
            prop_assert!((0.0..=1.0).contains(&a));
        }
    }
}
