//! Acceptance tests for the topology layer: the two-testbed paper
//! preset reproduces the legacy single-testbed campaigns bit for bit,
//! and a 3-piconet scatternet with a bridge runs deterministically end
//! to end with inter-piconet propagation visible.

use btpan::campaign::{Campaign, CampaignConfig};
use btpan::experiment::{relationship_matrix, scatternet_demo};
use btpan::machine::MachineRole;
use btpan::prelude::*;
use btpan::stream::{StreamConfig, StreamEngine, DEFAULT_WINDOW};
use btpan::topology::Topology;
use btpan_collect::entry::LogRecord;
use btpan_collect::trace::{export_trace, import_trace};
use btpan_faults::CauseSite;

fn run(config: CampaignConfig) -> btpan::campaign::CampaignResult {
    Campaign::new(config).run()
}

/// The acceptance bar of the refactor: `paper-both` runs the two paper
/// testbeds in one campaign and each reproduces today's single-testbed
/// results — failure counters and the full TTF/TTR series — at equal
/// seed, per policy.
#[test]
fn paper_both_reproduces_single_testbed_campaigns() {
    let seed = 42;
    let dur = SimDuration::from_secs(12 * 3600);
    for policy in [RecoveryPolicy::RebootOnly, RecoveryPolicy::Siras] {
        let both = run(CampaignConfig::paper_both(seed, policy).duration(dur));
        let a = run(CampaignConfig::paper(seed, WorkloadKind::Random, policy).duration(dur));
        let b = run(CampaignConfig::paper(seed, WorkloadKind::Realistic, policy).duration(dur));

        assert_eq!(both.piconets.len(), 2);
        assert_eq!(both.piconets[0].failure_count, a.failure_count);
        assert_eq!(both.piconets[0].masked_count, a.masked_count);
        assert_eq!(both.piconets[0].cycles_run, a.cycles_run);
        assert_eq!(both.piconets[1].failure_count, b.failure_count);
        assert_eq!(both.piconets[1].masked_count, b.masked_count);
        assert_eq!(both.piconets[1].cycles_run, b.cycles_run);
        assert_eq!(
            both.failure_count,
            a.failure_count + b.failure_count,
            "campaign totals pool both testbeds"
        );

        // The dependability series — the substrate of Table 4 — must be
        // bit-exact per testbed, not just equal in count.
        assert_eq!(both.piconet_series_of(0), a.piconet_series());
        assert_eq!(both.piconet_series_of(1), b.piconet_series());
    }
}

/// The Table 2 relationship matrix of the combined campaign equals the
/// two single-testbed matrices absorbed together.
#[test]
fn paper_both_reproduces_single_testbed_matrices() {
    let seed = 7;
    let dur = SimDuration::from_secs(12 * 3600);
    let window = SimDuration::from_secs(330);
    let policy = RecoveryPolicy::RebootOnly;

    let topo_both = Topology::paper_both();
    let both = run(CampaignConfig::paper_both(seed, policy).duration(dur));
    let combined = relationship_matrix(&both, &topo_both, window);

    let topo_a = Topology::paper_a();
    let a = run(CampaignConfig::paper(seed, WorkloadKind::Random, policy).duration(dur));
    let mut split = relationship_matrix(&a, &topo_a, window);
    let topo_b = Topology::paper_b();
    let b = run(CampaignConfig::with_topology(seed, topo_b.clone(), policy).duration(dur));
    split.absorb(&relationship_matrix(&b, &topo_b, window));

    assert!(combined.grand_total() > 0, "no observations collected");
    assert_eq!(combined, split);
}

/// The 3-piconet scatternet runs deterministically end to end: same
/// seed twice gives identical counters, series and matrix.
#[test]
fn scatternet_campaign_is_deterministic() {
    let dur = SimDuration::from_secs(12 * 3600);
    let topo = Topology::scatternet();
    let (r1, m1) = scatternet_demo(9, dur);
    let (r2, m2) = scatternet_demo(9, dur);
    assert_eq!(r1.piconets, r2.piconets);
    assert_eq!(r1.failure_count, r2.failure_count);
    assert_eq!(r1.piconet_series(), r2.piconet_series());
    assert_eq!(m1, m2);
    assert_eq!(r1.piconets.len(), topo.piconets.len());
    // The bridge PANU lives in piconet alpha.
    assert!(r1.piconets[0].panus.contains(&201));
}

/// Bridged faults reach remote masters: with the bridge removed (same
/// machines, no scatternet joins) the remote piconets' master logs
/// shrink, and the combined matrix still correlates NAP-site evidence.
#[test]
fn scatternet_bridge_propagates_across_piconets() {
    let seed = 11;
    let dur = SimDuration::from_secs(48 * 3600);
    let topo = Topology::scatternet();
    let bridged =
        run(CampaignConfig::with_topology(seed, topo.clone(), RecoveryPolicy::Siras).duration(dur));
    let mut cut = topo.clone();
    cut.bridges.clear();
    let isolated =
        run(CampaignConfig::with_topology(seed, cut, RecoveryPolicy::Siras).duration(dur));

    // Remote masters (beta and gamma, ids 210/220) collect strictly
    // more system evidence when the bridge can propagate into them.
    let remote_records = |r: &btpan::campaign::CampaignResult| {
        r.repository.system_records_of(210).len() + r.repository.system_records_of(220).len()
    };
    assert!(
        remote_records(&bridged) > remote_records(&isolated),
        "bridged {} vs isolated {}",
        remote_records(&bridged),
        remote_records(&isolated)
    );

    // And the relationship matrix built over all reachable masters
    // shows the propagated (NAP-site) evidence.
    let matrix = relationship_matrix(&bridged, &topo, SimDuration::from_secs(330));
    let nap_cells: u64 = matrix
        .cells()
        .iter()
        .filter_map(|(_, cause, n)| match cause {
            Some((_, CauseSite::Nap)) => Some(*n),
            _ => None,
        })
        .sum();
    assert!(nap_cells > 0, "no NAP-site observations in the matrix");
}

/// The scatternet trace completes the pipeline: campaign → collect
/// (trace export/import) → stream (shards keyed by home piconet) →
/// analysis, deterministically.
#[test]
fn scatternet_trace_streams_deterministically() {
    let topo = Topology::scatternet();
    let (result, _) = scatternet_demo(9, SimDuration::from_secs(12 * 3600));
    let trace = export_trace(&result.repository);
    let records: Vec<LogRecord> = import_trace(&trace).expect("trace round-trips");

    let config = StreamConfig {
        shards: 3,
        channel_capacity: 256,
        window: DEFAULT_WINDOW,
        watermark_lag: DEFAULT_WINDOW * 2,
        idle_timeout_ms: None,
        nap_node: topo.piconets[0].master_id(),
        keep_tuples: false,
        group_of: Some(topo.group_table()),
    };
    // All members of one piconet land on the same shard.
    let router = config.router();
    for p in &topo.piconets {
        let shards: Vec<_> = p.member_ids().iter().map(|&n| router.route(n)).collect();
        assert!(
            shards.windows(2).all(|w| w[0] == w[1]),
            "piconet {} split across shards: {shards:?}",
            p.id
        );
    }

    let stream_once = || {
        let mut engine = StreamEngine::start(config.clone());
        for rec in records.clone() {
            engine.ingest(rec).expect("engine alive");
        }
        engine.finish().snapshot
    };
    let s1 = stream_once();
    let s2 = stream_once();
    assert_eq!(s1.records_emitted, records.len() as u64);
    assert!(s1.analysis_eq(&s2), "streaming is not deterministic");
}

/// Satellite: validation rejects malformed topologies — duplicate node
/// ids, a piconet with zero PANUs, a bridge referencing a missing
/// piconet, and more than 7 active members per piconet.
#[test]
fn topology_validation_rejects_bad_specs() {
    // Duplicate global node ids across piconets.
    let mut t = Topology::paper_both();
    t.piconets[1].machines[0].node_id = 0;
    assert!(t.validate().is_err(), "duplicate node ids accepted");

    // A piconet with zero PANUs.
    let mut t = Topology::paper_a();
    t.piconets[0]
        .machines
        .retain(|m| m.role == MachineRole::Nap);
    assert!(t.validate().is_err(), "zero-PANU piconet accepted");

    // A bridge referencing a piconet id that does not exist.
    let mut t = Topology::scatternet();
    t.bridges[0].joins.push(99);
    assert!(t.validate().is_err(), "dangling bridge join accepted");

    // An eighth active member (7 PANUs + 1 incoming bridge).
    let mut t = Topology::scatternet();
    let mut extra = t.piconets[1].machines[1].clone();
    for (i, m) in t.piconets[1]
        .machines
        .iter_mut()
        .filter(|m| m.role == MachineRole::Panu)
        .enumerate()
    {
        m.node_id = 300 + i as u64;
    }
    // Fill beta up to 7 PANUs; the alpha bridge joining it is the 8th.
    for i in 0..5 {
        extra.node_id = 400 + i;
        extra.name = format!("Extra-{i}");
        t.piconets[1].machines.push(extra.clone());
    }
    assert!(t.validate().is_err(), "8 active members accepted");
}

/// The topology survives a JSON round trip unchanged, and malformed
/// JSON is rejected with a ConfigError rather than a panic.
#[test]
fn topology_json_round_trip() {
    let t = Topology::scatternet();
    let back = Topology::from_json(&t.to_json()).expect("round trip parses");
    assert_eq!(back, t);
    assert!(Topology::from_json("{\"piconets\": []}").is_err());
    assert!(Topology::from_json("not json").is_err());
}
