//! End-to-end pipeline test: simulated campaign -> LogAnalyzer ->
//! repository -> merge -> coalesce -> relationship inference, checking
//! the analysis recovers the injected ground truth.

use btpan::machine::NAP_NODE_ID;
use btpan::prelude::*;
use btpan_collect::relate::RelationshipMatrix;
use btpan_collect::sensitivity::SensitivityCurve;
use btpan_faults::{CauseSite, SystemComponent, UserFailure};

fn campaign(workload: WorkloadKind) -> CampaignResult {
    Campaign::new(
        CampaignConfig::paper(31, workload, RecoveryPolicy::Siras)
            .duration(SimDuration::from_secs(30 * 3600)),
    )
    .run()
}

#[test]
fn analysis_recovers_injected_relationships() {
    let result = campaign(WorkloadKind::Random);
    let nap = result.repository.system_records_of(NAP_NODE_ID);
    let streams: Vec<_> = result
        .repository
        .reporting_nodes()
        .into_iter()
        .map(|n| (n, result.repository.records_of(n)))
        .collect();
    let m = RelationshipMatrix::from_node_logs(
        &streams,
        &nap,
        NAP_NODE_ID,
        SimDuration::from_secs(330),
    );
    assert!(m.grand_total() > 30, "too few related failures");

    // Bind failures: mechanistic causes are HCI (before T_C) and
    // hotplug/BNEP (after) — never SDP or BCSP.
    if m.total(UserFailure::BindFailed) >= 10 {
        let sdp = m.percent(
            UserFailure::BindFailed,
            SystemComponent::Sdp,
            CauseSite::Local,
        );
        assert!(sdp < 10.0, "bind related to SDP: {sdp}%");
        let hci = m.percent(
            UserFailure::BindFailed,
            SystemComponent::Hci,
            CauseSite::Local,
        );
        assert!(hci > 25.0, "bind HCI share {hci}%");
    }
    // NAP-not-found is SDP-dominated, with visible NAP propagation.
    if m.total(UserFailure::NapNotFound) >= 10 {
        let sdp = m.percent(
            UserFailure::NapNotFound,
            SystemComponent::Sdp,
            CauseSite::Local,
        ) + m.percent(
            UserFailure::NapNotFound,
            SystemComponent::Sdp,
            CauseSite::Nap,
        );
        assert!(sdp > 60.0, "NNF SDP share {sdp}%");
    }
}

#[test]
fn nap_propagation_is_observed() {
    let result = campaign(WorkloadKind::Random);
    // Some system evidence must land on the NAP's log (site = NAP causes).
    let nap_entries = result.repository.system_records_of(NAP_NODE_ID).len();
    assert!(nap_entries > 0, "no NAP-side system entries at all");
}

#[test]
fn sensitivity_curve_monotone_on_real_logs() {
    let result = campaign(WorkloadKind::Random);
    for node in result.repository.reporting_nodes().into_iter().take(2) {
        let mut records = result.repository.records_of(node);
        records.sort();
        if records.len() < 10 {
            continue;
        }
        let curve = SensitivityCurve::sweep(&records, 1.0, 10_000.0, 25);
        for w in curve.tuples.windows(2) {
            assert!(w[1] <= w[0], "tuple count must not grow with the window");
        }
        assert!(*curve.tuples.last().unwrap() >= 1);
    }
}

#[test]
fn analyzer_shipping_is_idempotent_under_duplicates() {
    // Shipping the same logs twice must not duplicate repository content.
    use btpan_collect::analyzer::LogAnalyzer;
    use btpan_collect::logs::{SystemLog, TestLog};
    use btpan_collect::repository::Repository;
    let result = campaign(WorkloadKind::Random);
    let tests = result.repository.tests();
    let node = tests.first().expect("some failures").node;
    let mut tl = TestLog::new(node);
    for t in tests.iter().filter(|t| t.node == node) {
        tl.append(t.clone());
    }
    let sl = SystemLog::new(node);
    let repo = Repository::new();
    let mut an = LogAnalyzer::new(node);
    let first = an.run_once(&tl, &sl, &repo);
    let second = an.run_once(&tl, &sl, &repo);
    assert!(first.0 > 0);
    assert_eq!(second, (0, 0));
}
