//! End-to-end determinism: the same seed must reproduce the entire
//! pipeline — campaign, logs, coalescence, relationships — bit for bit.

use btpan::prelude::*;

fn run(seed: u64) -> CampaignResult {
    Campaign::new(
        CampaignConfig::paper(seed, WorkloadKind::Random, RecoveryPolicy::Siras)
            .duration(SimDuration::from_secs(3 * 3600)),
    )
    .run()
}

#[test]
fn identical_seeds_reproduce_everything() {
    let a = run(99);
    let b = run(99);
    assert_eq!(a.failure_count, b.failure_count);
    assert_eq!(a.cycles_run, b.cycles_run);
    assert_eq!(a.masked_count, b.masked_count);
    assert_eq!(a.covered_count, b.covered_count);
    assert_eq!(a.repository.total_count(), b.repository.total_count());
    // Full log equality, entry by entry.
    let ta = a.repository.tests();
    let tb = b.repository.tests();
    assert_eq!(ta, tb);
    let sa = a.repository.systems();
    let sb = b.repository.systems();
    assert_eq!(sa, sb);
    // Timelines too.
    for (x, y) in a.timelines.iter().zip(&b.timelines) {
        assert_eq!(x, y);
    }
}

#[test]
fn seeds_differ_materially() {
    let a = run(1);
    let b = run(2);
    assert_ne!(a.repository.tests(), b.repository.tests());
}

#[test]
fn policies_share_workload_randomness_shape() {
    // Different policies on the same seed still run comparable cycle
    // volumes (policy only changes recovery, not the workload).
    let siras = run(5);
    let reboot = Campaign::new(
        CampaignConfig::paper(5, WorkloadKind::Random, RecoveryPolicy::RebootOnly)
            .duration(SimDuration::from_secs(3 * 3600)),
    )
    .run();
    let ratio = siras.cycles_run as f64 / reboot.cycles_run.max(1) as f64;
    assert!(
        (0.8..1.6).contains(&ratio),
        "cycle volumes diverged: {ratio}"
    );
}
