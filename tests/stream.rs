//! Acceptance: on the same exported trace, the streaming engine's
//! end-of-stream snapshot is numerically identical to the batch
//! pipeline's Table 2 / Table 4 outputs.

use btpan::cli::{run_cli, EXIT_QUARANTINE};
use btpan::experiment::{table4_streaming, Scale};
use btpan::machine::NAP_NODE_ID;
use btpan::prelude::*;
use btpan::stream::{batch_reference, StreamConfig, StreamEngine, DEFAULT_WINDOW};
use btpan_collect::entry::LogRecord;
use btpan_collect::relate::RelationshipMatrix;
use btpan_collect::trace::{export_trace, import_trace};

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| s.to_string()).collect()
}

fn stream_config() -> StreamConfig {
    StreamConfig {
        shards: 4,
        channel_capacity: 256,
        window: DEFAULT_WINDOW,
        watermark_lag: DEFAULT_WINDOW * 2,
        idle_timeout_ms: None,
        nap_node: NAP_NODE_ID,
        keep_tuples: false,
        group_of: None,
    }
}

/// The cross-check experiment: streaming == batch on pooled campaigns.
#[test]
fn table4_streaming_cross_check_matches() {
    let check = table4_streaming(&Scale::quick());
    assert!(
        check.matches(),
        "streaming {:?} != batch {:?}",
        check.streaming,
        check.batch
    );
    assert!(check.streaming.records_emitted > 0);
    assert!(check.streaming.episodes > 0, "no failure episodes observed");
}

/// Export a real campaign trace, re-import it, and drive both paths on
/// the identical records: every Table 4 statistic (bit-for-bit f64) and
/// every Table 2 matrix cell must agree.
#[test]
fn exported_trace_streams_to_batch_numbers() {
    let result = Campaign::new(
        CampaignConfig::paper(17, WorkloadKind::Random, RecoveryPolicy::Siras)
            .duration(SimDuration::from_secs(12 * 3600)),
    )
    .run();
    let trace = export_trace(&result.repository);
    let records: Vec<LogRecord> = import_trace(&trace).expect("trace round-trips");

    let config = stream_config();
    let mut engine = StreamEngine::start(config.clone());
    for rec in records.clone() {
        engine.ingest(rec).expect("engine alive");
    }
    let streaming = engine.finish().snapshot;
    let batch = batch_reference(&records, &config);

    // Table 4: identical dependability statistics, bit for bit.
    assert_eq!(streaming.episodes, batch.episodes);
    assert_eq!(streaming.mttf_s.to_bits(), batch.mttf_s.to_bits());
    assert_eq!(streaming.mttr_s.to_bits(), batch.mttr_s.to_bits());
    assert_eq!(
        streaming.availability.to_bits(),
        batch.availability.to_bits()
    );
    // Table 2: identical relationship-matrix cells.
    assert_eq!(streaming.matrix_cells, batch.matrix_cells);
    assert_eq!(streaming.failures, batch.failures);
    assert_eq!(streaming.loss_by_packet_type, batch.loss_by_packet_type);
    assert!(streaming.analysis_eq(&batch));

    // The streamed matrix also equals the matrix the batch pipeline
    // builds directly from the repository (the Table 2 entry point).
    let nap = result.repository.system_records_of(NAP_NODE_ID);
    let streams: Vec<_> = result
        .repository
        .reporting_nodes()
        .into_iter()
        .filter(|&n| n != NAP_NODE_ID)
        .map(|n| (n, result.repository.records_of(n)))
        .collect();
    let direct = RelationshipMatrix::from_node_logs(&streams, &nap, NAP_NODE_ID, config.window);
    assert_eq!(streaming.matrix().grand_total(), direct.grand_total());
}

/// The `btpan stream` CLI on an exported trace: healthy exit, and the
/// JSON snapshot carries the batch numbers.
#[test]
fn stream_cli_reports_batch_identical_snapshot() {
    let path = std::env::temp_dir().join("btpan_root_stream_cli.jsonl");
    let path_s = path.to_str().expect("utf8 temp path");
    run_cli(&args(&[
        "campaign", "--hours", "8", "--seed", "23", "--export", path_s,
    ]))
    .expect("campaign runs");
    let outcome = run_cli(&args(&["stream", path_s, "--json"])).expect("stream runs");
    assert_eq!(outcome.status, 0, "{}", outcome.output);
    // The snapshot rides inside the uniform JSON envelope.
    let envelope = serde_json::value_from_str(outcome.output.trim()).expect("envelope JSON parses");
    assert_eq!(
        envelope
            .get("schema_version")
            .and_then(serde::Value::as_u64),
        Some(btpan::cli::JSON_SCHEMA_VERSION)
    );
    assert_eq!(
        envelope.get("command").and_then(serde::Value::as_str),
        Some("stream")
    );
    assert_eq!(
        envelope
            .get("health")
            .and_then(|h| h.get("status"))
            .and_then(serde::Value::as_str),
        Some("ok")
    );
    let snap: btpan::stream::StreamSnapshot =
        serde::Deserialize::from_value(envelope.get("data").expect("envelope data"))
            .expect("snapshot decodes");

    let text = std::fs::read_to_string(&path).expect("trace readable");
    let records = import_trace(&text).expect("trace parses");
    let batch = batch_reference(&records, &stream_config());
    assert!(
        snap.analysis_eq(&batch),
        "CLI snapshot {snap:?} != batch {batch:?}"
    );

    // An unhealthy trace gates with the quarantine exit code.
    let mut text = std::fs::read_to_string(&path).expect("trace readable");
    text.push_str("not json\n");
    std::fs::write(&path, &text).expect("trace writable");
    let outcome = run_cli(&args(&["stream", path_s])).expect("stream runs");
    assert_eq!(outcome.status, EXIT_QUARANTINE, "{}", outcome.output);
    std::fs::remove_file(&path).ok();
}
