//! The paper's masking claims, end to end.

use btpan::prelude::*;
use btpan_faults::UserFailure;

fn run(policy: RecoveryPolicy, seed: u64) -> CampaignResult {
    Campaign::new(
        CampaignConfig::paper(seed, WorkloadKind::Random, policy)
            .duration(SimDuration::from_secs(30 * 3600)),
    )
    .run()
}

#[test]
fn masking_eliminates_bind_failures_entirely() {
    let masked = run(RecoveryPolicy::SirasAndMasking, 41);
    let binds = masked
        .repository
        .tests()
        .iter()
        .filter(|t| t.failure == UserFailure::BindFailed)
        .count();
    assert_eq!(binds, 0, "bind failures survived the T_C/T_H wait");
}

#[test]
fn masking_nearly_eliminates_nap_not_found() {
    let base = run(RecoveryPolicy::Siras, 43);
    let masked = run(RecoveryPolicy::SirasAndMasking, 43);
    let count = |r: &CampaignResult| {
        r.repository
            .tests()
            .iter()
            .filter(|t| t.failure == UserFailure::NapNotFound)
            .count()
    };
    let b = count(&base);
    let m = count(&masked);
    assert!(b >= 8, "baseline NNF too rare to compare: {b}");
    assert!(m * 5 < b, "masking left too many NNF: {m} of {b}");
}

#[test]
fn masking_improves_mttf_and_availability() {
    // Availability compares two noisy ratios, so this test runs a 90 h
    // campaign (vs 30 h elsewhere): at 30 h the masked-vs-base margin is
    // within seed noise, while at 90 h every nearby seed clears it.
    let long = |policy| {
        Campaign::new(
            CampaignConfig::paper(47, WorkloadKind::Random, policy)
                .duration(SimDuration::from_secs(90 * 3600)),
        )
        .run()
    };
    let base = long(RecoveryPolicy::Siras);
    let masked = long(RecoveryPolicy::SirasAndMasking);
    let stats = |r: &CampaignResult| {
        let s = r.piconet_series();
        let mttf = s.ttf_stats().mean().unwrap_or(f64::INFINITY);
        let mttr = s.ttr_stats().mean().unwrap_or(0.0);
        (mttf, mttf / (mttf + mttr))
    };
    let (mttf_b, avail_b) = stats(&base);
    let (mttf_m, avail_m) = stats(&masked);
    assert!(mttf_m > mttf_b * 1.5, "MTTF {mttf_b} -> {mttf_m}");
    assert!(avail_m > avail_b, "availability {avail_b} -> {avail_m}");
}

#[test]
fn masked_fraction_near_paper_58_percent() {
    let masked = run(RecoveryPolicy::SirasAndMasking, 53);
    let would_be = masked.masked_count + masked.failure_count;
    let pct = 100.0 * masked.masked_count as f64 / would_be.max(1) as f64;
    assert!(
        (40.0..75.0).contains(&pct),
        "masking percentage {pct} far from the paper's 58 %"
    );
}
