//! Table 4 orderings across the four recovery policies, end to end.

use btpan::prelude::*;

fn run(policy: RecoveryPolicy) -> CampaignResult {
    Campaign::new(
        CampaignConfig::paper(61, WorkloadKind::Random, policy)
            .duration(SimDuration::from_secs(36 * 3600)),
    )
    .run()
}

#[test]
fn mttr_ordering_matches_table4() {
    let reboot = run(RecoveryPolicy::RebootOnly);
    let app = run(RecoveryPolicy::AppRestartThenReboot);
    let siras = run(RecoveryPolicy::Siras);
    let mttr = |r: &CampaignResult| r.piconet_series().ttr_stats().mean().unwrap_or(0.0);
    let (r, a, s) = (mttr(&reboot), mttr(&app), mttr(&siras));
    assert!(r > a * 2.0, "reboot {r} vs app restart {a}");
    assert!(a > s, "app restart {a} vs SIRAs {s}");
    // Paper bands: 285.92 / 85.12 / 70.94 s.
    assert!((150.0..420.0).contains(&r), "reboot-only MTTR {r}");
    assert!((40.0..140.0).contains(&s), "SIRA MTTR {s}");
}

#[test]
fn reboot_only_hurts_mttf() {
    let reboot = run(RecoveryPolicy::RebootOnly);
    let siras = run(RecoveryPolicy::Siras);
    let mttf = |r: &CampaignResult| r.piconet_series().ttf_stats().mean().unwrap_or(0.0);
    assert!(
        mttf(&reboot) < mttf(&siras),
        "reboot-only should shorten MTTF: {} vs {}",
        mttf(&reboot),
        mttf(&siras)
    );
}

#[test]
fn coverage_only_counted_under_siras() {
    let reboot = run(RecoveryPolicy::RebootOnly);
    assert_eq!(
        reboot.covered_count, 0,
        "user reboots cannot count as coverage"
    );
    let siras = run(RecoveryPolicy::Siras);
    assert!(siras.covered_count > 0);
    let frac = siras.covered_count as f64 / siras.failure_count.max(1) as f64;
    assert!(
        (0.35..0.80).contains(&frac),
        "SIRA 1-3 coverage fraction {frac} far from the paper's 58.4 %"
    );
}

#[test]
fn availability_ordering() {
    let reboot = run(RecoveryPolicy::RebootOnly);
    let masked = run(RecoveryPolicy::SirasAndMasking);
    let avail = |r: &CampaignResult| {
        let s = r.piconet_series();
        let f = s.ttf_stats().mean().unwrap_or(f64::INFINITY);
        let t = s.ttr_stats().mean().unwrap_or(0.0);
        f / (f + t)
    };
    assert!(avail(&masked) > avail(&reboot) + 0.03);
}
