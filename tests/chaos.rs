//! End-to-end dependability of the harness itself: a supervised
//! multi-seed campaign where workers panic, overrun their deadline and
//! ship over a corrupting pipeline — and the run still produces
//! aggregated, correctly-attributed results.

use btpan_collect::chaos::{inject, ChaosConfig};
use btpan_collect::trace::{export_trace, import_trace, import_trace_lenient};
use btpan_core::prelude::*;
use btpan_core::supervisor::{run_supervised, SeedVerdict, SupervisorConfig};
use btpan_recovery::RecoveryPolicy;
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Duration;

const OK: u64 = 101;
const PANICKER: u64 = 102;
const SLEEPER: u64 = 103;
const FLAKY: u64 = 104;

fn campaign(seed: u64) -> CampaignResult {
    Campaign::new(
        CampaignConfig::paper(seed, WorkloadKind::Random, RecoveryPolicy::Siras)
            .duration(SimDuration::from_secs(8 * 3600)),
    )
    .run()
}

#[test]
fn supervised_campaign_survives_worker_and_pipeline_faults() {
    let flaky_attempts = AtomicU32::new(0);
    let config = SupervisorConfig {
        max_retries: 2,
        seed_timeout: Some(Duration::from_secs(5)),
        backoff_base: Duration::from_millis(5),
        campaign_seed: 7,
        workers: None,
    };
    let seeds = [OK, PANICKER, SLEEPER, FLAKY];
    let outcome = run_supervised(&seeds, &config, |seed| match seed {
        PANICKER => panic!("injected worker crash"),
        SLEEPER => {
            std::thread::sleep(Duration::from_secs(6));
            campaign(seed)
        }
        FLAKY => {
            if flaky_attempts.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("transient worker crash");
            }
            campaign(seed)
        }
        _ => campaign(seed),
    });

    // Per-seed attribution: every fate is reported, none aborts the run.
    assert_eq!(outcome.seeds, seeds);
    assert_eq!(outcome.verdict_of(OK), Some(&SeedVerdict::Ok));
    match outcome.verdict_of(PANICKER) {
        Some(SeedVerdict::Panicked(msg)) => {
            assert!(msg.contains("injected worker crash"), "{msg}")
        }
        other => panic!("expected Panicked, got {other:?}"),
    }
    assert_eq!(outcome.verdict_of(SLEEPER), Some(&SeedVerdict::TimedOut));
    assert_eq!(outcome.verdict_of(FLAKY), Some(&SeedVerdict::Retried(1)));

    // Aggregation: the two surviving seeds are present, coverage is
    // honest, and the panicking seed burned its retry budget.
    assert_eq!(outcome.completed().count(), 2);
    assert!((outcome.coverage() - 0.5).abs() < 1e-12);
    assert_eq!(outcome.attempts, 1 + 3 + 1 + 2);
    assert!(outcome.results[0].is_some());
    assert!(outcome.results[1].is_none());
    assert!(outcome.results[2].is_none());
    assert!(outcome.results[3].is_some());

    // Unaffected seeds ship byte-identical traces vs an unsupervised
    // run: supervision and retry never alter the data.
    for (i, seed) in [(0usize, OK), (3usize, FLAKY)] {
        let supervised = export_trace(&outcome.results[i].as_ref().unwrap().repository);
        let solo = export_trace(&campaign(seed).repository);
        assert_eq!(supervised, solo, "seed {seed} trace differs");
    }

    // Pipeline chaos on the surviving trace: 5 % of lines garbled. The
    // strict importer aborts; the lenient importer quarantines exactly
    // the damaged lines and keeps the rest analyzable.
    let trace = export_trace(&outcome.results[0].as_ref().unwrap().repository);
    assert!(
        trace.lines().count() >= 200,
        "campaign too quiet to corrupt meaningfully: {} lines",
        trace.lines().count()
    );
    let chaos = ChaosConfig {
        corrupt_line_rate: 0.05,
        seed: 13,
        ..ChaosConfig::default()
    };
    let (noisy, stats) = inject(&trace, &chaos);
    assert!(
        stats.corrupted > 0,
        "5 % of {} lines hit nothing",
        stats.lines_in
    );
    assert!(import_trace(&noisy).is_err());
    let (records, report) = import_trace_lenient(&noisy);
    assert!(!report.is_clean());
    assert_eq!(report.quarantined.len(), stats.corrupted);
    assert_eq!(records.len(), stats.lines_in - stats.corrupted);
    assert!(report.yield_fraction() > 0.8);
}
