//! Quick-scale smoke runs of every experiment entry point.

use btpan::experiment::{self, Scale};
use btpan::prelude::*;
use btpan_faults::UserFailure;

fn scale() -> Scale {
    Scale {
        seeds: vec![77],
        duration: SimDuration::from_secs(12 * 3600),
    }
}

#[test]
fn fig3b_young_connections_fail_more() {
    let hist = experiment::fig3b(&Scale {
        seeds: vec![9, 10],
        duration: SimDuration::from_secs(24 * 3600),
    });
    assert!(hist.total > 10, "too few losses: {}", hist.total);
    assert!(
        hist.young_dominated(),
        "histogram not front-loaded: {:?}",
        hist.bins
    );
}

#[test]
fn fig3c_p2p_and_streaming_dominate() {
    let table = experiment::fig3c(&Scale {
        seeds: vec![5, 6, 7],
        duration: SimDuration::from_secs(48 * 3600),
    });
    let heavy = table.percent("P2P") + table.percent("Streaming");
    let light = table.percent("Mail") + table.percent("Web");
    assert!(
        heavy > light,
        "P2P+Streaming {heavy}% vs Mail+Web {light}% (total {})",
        table.total()
    );
}

#[test]
fn fig4_quirk_hosts_carry_their_signature_failures() {
    let map = experiment::fig4(&scale());
    if let Some(bind) = map.get(&UserFailure::BindFailed) {
        assert_eq!(
            bind.count("Verde") + bind.count("Miseno") + bind.count("Ipaq") + bind.count("Zaurus"),
            0,
            "bind failures outside Azzurro/Win"
        );
    }
}

#[test]
fn findings_shape() {
    let f = experiment::findings(&Scale {
        seeds: vec![3, 4],
        duration: SimDuration::from_secs(24 * 3600),
    });
    assert!(
        f.random_share_percent > 60.0,
        "random WL share {} (paper 84 %)",
        f.random_share_percent
    );
    // Idle times: both near the 27 s Pareto mean, close to each other.
    assert!((f.idle_before_clean_s - 26.9).abs() < 8.0);
    let total: f64 = f.distance_shares.iter().map(|(_, p)| p).sum();
    assert!((total - 100.0).abs() < 1.0, "distance shares total {total}");
    // No distance dominates (the paper's insensitivity finding).
    for &(d, p) in &f.distance_shares {
        assert!((15.0..55.0).contains(&p), "distance {d} share {p}%");
    }
}

#[test]
fn table4_report_has_all_four_scenarios() {
    let report = experiment::table4(&Scale {
        seeds: vec![2],
        duration: SimDuration::from_secs(8 * 3600),
    });
    assert_eq!(report.scenarios.len(), 4);
    for (label, m) in &report.scenarios {
        assert!(
            m.availability > 0.5 && m.availability <= 1.0,
            "{label}: {}",
            m.availability
        );
    }
}
