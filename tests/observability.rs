//! Acceptance for the `btpan-obs` registry: during a campaign the
//! `btpan_recovery_*` counter families carry a live, exact copy of the
//! paper's Table 3 bookkeeping, and counters stay exact when hammered
//! from the supervisor's worker threads.
//!
//! These tests assert *exact* global-registry values, so they live in
//! their own integration-test binary (own OS process) and serialize on
//! [`btpan_obs::testing::exclusive`].

use btpan::prelude::*;
use btpan::{run_supervised, SupervisorConfig};
use btpan_faults::Sira;
use btpan_obs::{testing, Registry};
use std::collections::BTreeMap;

/// One campaign's `result.recoveries` (the batch Table 3 input) must
/// match the live `btpan_recovery_recovered_total{failure=…,sira=…}`
/// counter family cell for cell.
#[test]
fn campaign_recovery_counters_are_a_live_table3() {
    let guard = testing::exclusive();
    let result = Campaign::new(
        CampaignConfig::paper(29, WorkloadKind::Random, RecoveryPolicy::Siras)
            .duration(SimDuration::from_secs(12 * 3600)),
    )
    .run();
    let snap = guard.registry().snapshot();

    // Batch ground truth, aggregated exactly as `experiment::table3`
    // does: severity s means SIRA s succeeded, `None` is unrecoverable.
    let mut recovered: BTreeMap<(&str, &str), u64> = BTreeMap::new();
    let mut unrecoverable: BTreeMap<&str, u64> = BTreeMap::new();
    for (failure, severity) in &result.recoveries {
        match severity {
            Some(s) => {
                let sira = Sira::ALL[*s as usize - 1].label();
                *recovered.entry((failure.label(), sira)).or_insert(0) += 1;
            }
            None => *unrecoverable.entry(failure.label()).or_insert(0) += 1,
        }
    }
    assert!(!recovered.is_empty(), "campaign recovered nothing");

    for (&(failure, sira), &count) in &recovered {
        let key =
            format!("btpan_recovery_recovered_total{{failure=\"{failure}\",sira=\"{sira}\"}}");
        assert_eq!(snap.counter(&key), Some(count), "{key}");
    }
    for (&failure, &count) in &unrecoverable {
        let key = format!("btpan_recovery_unrecoverable_total{{failure=\"{failure}\"}}");
        assert_eq!(snap.counter(&key), Some(count), "{key}");
    }
    // No counts from nowhere: the family totals equal the batch totals,
    // and one outcome was recorded per recovery.
    assert_eq!(
        snap.counter_family_sum("btpan_recovery_recovered_total"),
        recovered.values().sum::<u64>()
    );
    assert_eq!(
        snap.counter("btpan_recovery_outcomes_total"),
        Some(result.recoveries.len() as u64)
    );
}

/// Loom-free concurrency stress: supervisor worker threads increment
/// shared and per-label counters concurrently; every increment must
/// land (relaxed atomics are still atomic).
#[test]
fn supervisor_worker_counters_sum_exactly() {
    const SEEDS: u64 = 32;
    const PER_SEED: u64 = 10_000;
    let guard = testing::exclusive();
    let seeds: Vec<u64> = (0..SEEDS).collect();
    let outcome = run_supervised(&seeds, &SupervisorConfig::default(), |seed| {
        let total = Registry::global().counter("btpan_test_stress_total");
        let lane = (seed % 4).to_string();
        let shard =
            Registry::global().counter_with("btpan_test_stress_lane_total", &[("lane", &lane)]);
        for _ in 0..PER_SEED {
            total.inc();
            shard.inc();
        }
        seed
    });
    assert_eq!(outcome.results.iter().flatten().count(), SEEDS as usize);

    let snap = guard.registry().snapshot();
    assert_eq!(
        snap.counter("btpan_test_stress_total"),
        Some(SEEDS * PER_SEED)
    );
    assert_eq!(
        snap.counter_family_sum("btpan_test_stress_lane_total"),
        SEEDS * PER_SEED
    );
    // The supervisor's own instrumentation is exact too: one attempt
    // per seed, every worker timed, and nobody left marked busy.
    assert_eq!(snap.counter("btpan_supervisor_attempts_total"), Some(SEEDS));
    assert_eq!(snap.counter("btpan_supervisor_retries_total"), Some(0));
    assert_eq!(snap.gauge("btpan_supervisor_workers_busy"), Some(0));
    let timings = snap
        .histogram("btpan_supervisor_seed_duration_us")
        .expect("worker durations observed");
    assert_eq!(timings.count, SEEDS);
}
