//! Property-based tests over the baseband codecs and piconet.

use btpan_baseband::crc::{append_crc, check_crc, crc16_bitwise_with, crc16_with};
use btpan_baseband::fec::{
    decode, decode_bytes, decode_bytes_into, encode, encode_bytes, encode_bytes_into, Decoded,
};
use btpan_baseband::piconet::{Piconet, MAX_ACTIVE_SLAVES};
use proptest::prelude::*;

proptest! {
    #[test]
    fn crc_round_trips(payload in prop::collection::vec(any::<u8>(), 0..256)) {
        let body = append_crc(&payload);
        prop_assert_eq!(check_crc(&body), Some(payload.as_slice()));
    }

    #[test]
    fn crc_table_equals_bitwise_reference(payload in prop::collection::vec(any::<u8>(), 0..512),
                                          init in any::<u16>()) {
        // The 256-entry table implementation must agree with the
        // original shift-register loop on arbitrary payloads from
        // arbitrary register states.
        prop_assert_eq!(crc16_with(init, &payload), crc16_bitwise_with(init, &payload));
    }

    #[test]
    fn fec_into_variants_equal_allocating_ones(payload in prop::collection::vec(any::<u8>(), 0..64),
                                               flips in prop::collection::vec((any::<u16>(), 0u32..15), 0..8)) {
        let words = encode_bytes(&payload);
        let mut words_into = Vec::new();
        encode_bytes_into(&payload, &mut words_into);
        prop_assert_eq!(&words, &words_into);

        // Corrupt a few codewords and compare decode paths too.
        let mut corrupted = words;
        for &(idx, bit) in &flips {
            if !corrupted.is_empty() {
                let idx = idx as usize % corrupted.len();
                corrupted[idx] ^= 1 << bit;
            }
        }
        let via_alloc = decode_bytes(&corrupted, payload.len());
        let mut buf = vec![0xAAu8; 3];
        let ok = decode_bytes_into(&corrupted, payload.len(), &mut buf);
        prop_assert_eq!(via_alloc.is_some(), ok);
        if let Some(decoded) = via_alloc {
            prop_assert_eq!(decoded, buf);
        }
    }

    #[test]
    fn crc_detects_any_single_flip(payload in prop::collection::vec(any::<u8>(), 1..128), bit in any::<u16>()) {
        let mut body = append_crc(&payload);
        let total_bits = body.len() * 8;
        let bit = (bit as usize) % total_bits;
        body[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(check_crc(&body).is_none());
    }

    #[test]
    fn crc_detects_any_short_burst(payload in prop::collection::vec(any::<u8>(), 2..64),
                                   start in any::<u16>(), pattern in 1u16..0xFFFF) {
        // A burst of <= 16 bits (pattern != 0) anywhere must be caught.
        let mut body = append_crc(&payload);
        let total_bits = body.len() * 8;
        let start = (start as usize) % (total_bits - 16);
        for i in 0..16 {
            if pattern & (1 << i) != 0 {
                let bit = start + i;
                body[bit / 8] ^= 1 << (bit % 8);
            }
        }
        prop_assert!(check_crc(&body).is_none());
    }

    #[test]
    fn fec_corrects_any_single_error(data in 0u16..1024, bit in 0u32..15) {
        let cw = encode(data);
        match decode(cw ^ (1 << bit)) {
            Decoded::Corrected(d) => prop_assert_eq!(d, data),
            other => prop_assert!(false, "unexpected {other:?}"),
        }
    }

    #[test]
    fn fec_clean_decode_is_identity(data in 0u16..1024) {
        prop_assert_eq!(decode(encode(data)), Decoded::Clean(data));
    }

    #[test]
    fn piconet_membership_invariants(ops in prop::collection::vec((0u8..3, 1u64..12), 0..64)) {
        let mut p = Piconet::new(100);
        for (op, dev) in ops {
            match op {
                0 => { let _ = p.join(dev); }
                1 => { let _ = p.leave(dev); }
                _ => { let _ = p.switch_role(dev); }
            }
            prop_assert!(p.slave_count() <= MAX_ACTIVE_SLAVES);
            // The master is never simultaneously a slave.
            prop_assert!(!p.is_slave(p.master()));
        }
    }
}
