//! Fast-path fidelity: the geometric sampling from a calibrated
//! [`DropProfile`] must agree with direct slot-level simulation of the
//! same channel — the bridge that lets campaigns skip 10^10 slots.

use btpan_baseband::channel::GilbertElliott;
use btpan_baseband::hop::HopSequence;
use btpan_baseband::link::{AclLink, DropProfile, LinkConfig};
use btpan_baseband::packet::PacketType;
use btpan_sim::prelude::*;

fn channel() -> GilbertElliott {
    GilbertElliott::new(1e-2, 0.08, 5e-6, 0.12)
}

#[test]
fn fast_path_drop_rate_matches_direct_simulation() {
    let cfg = LinkConfig::new(PacketType::Dh1).retry_limit(4);
    let mut rng = SimRng::seed_from(0xF1DE);

    // Calibrate the profile on one stream...
    let profile = DropProfile::calibrate(cfg, channel(), HopSequence::new(1), 150_000, &mut rng);

    // ...then measure the drop rate directly on an independent stream.
    let mut link = AclLink::new(cfg, channel(), HopSequence::new(2));
    let mut direct_rng = SimRng::seed_from(0xD1CE);
    let mut sent = 0u64;
    let mut dropped = 0u64;
    let target = 150_000u64;
    while sent < target {
        let out = link.send_payloads(64.min(target - sent), &mut direct_rng);
        sent += out.payloads_delivered;
        if out.dropped_at.is_some() {
            dropped += 1;
            sent += 1;
        }
    }
    let direct = dropped as f64 / sent as f64;
    assert!(
        direct > 0.0 && profile.p_drop > 0.0,
        "degenerate rates: direct {direct}, profile {}",
        profile.p_drop
    );
    let ratio = profile.p_drop / direct;
    assert!(
        (0.6..1.7).contains(&ratio),
        "fast path diverged: profile {} vs direct {direct} (ratio {ratio})",
        profile.p_drop
    );

    // Transfer-level agreement: P(clean transfer of 500 payloads).
    let clean_fast = profile.p_transfer_clean(500);
    let mut clean_direct = 0u32;
    let trials: u64 = 400;
    for t in 0..trials {
        let mut link = AclLink::new(cfg, channel(), HopSequence::new(100 + t));
        let mut r = SimRng::seed_from(9_000 + t);
        if link.send_payloads(500, &mut r).dropped_at.is_none() {
            clean_direct += 1;
        }
    }
    let direct_frac = f64::from(clean_direct) / trials as f64;
    assert!(
        (clean_fast - direct_frac).abs() < 0.15,
        "clean-transfer probability: fast {clean_fast} vs direct {direct_frac}"
    );
}

#[test]
fn per_type_ordering_stable_across_streams() {
    // The Fig. 3a per-byte ordering must not depend on the RNG stream.
    let order = |seed: u64| -> Vec<PacketType> {
        let mut rng = SimRng::seed_from(seed);
        let mut rates: Vec<(PacketType, f64)> = PacketType::ALL
            .iter()
            .map(|&pt| {
                let prof = DropProfile::calibrate(
                    LinkConfig::new(pt).retry_limit(4),
                    channel(),
                    HopSequence::new(seed),
                    60_000,
                    &mut rng,
                );
                (pt, prof.p_drop / f64::from(pt.max_payload_bytes()))
            })
            .collect();
        rates.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
        rates.into_iter().map(|(pt, _)| pt).collect()
    };
    let a = order(1);
    let b = order(2);
    // The extreme ends must be stable: DM1 worst per byte, DH5 best.
    assert_eq!(a[0], PacketType::Dm1, "{a:?}");
    assert_eq!(b[0], PacketType::Dm1, "{b:?}");
    assert_eq!(*a.last().unwrap(), PacketType::Dh5, "{a:?}");
    assert_eq!(*b.last().unwrap(), PacketType::Dh5, "{b:?}");
}
