//! ACL baseband packet types.
//!
//! Bluetooth 1.1 defines six asymmetric connectionless (ACL) data packet
//! types. `DMx` payloads are protected by 2/3-rate FEC (shortened
//! Hamming(15,10)); `DHx` payloads are uncoded. A packet occupies 1, 3 or
//! 5 consecutive 625 µs slots. All carry a 72-bit access code, an 18-bit
//! header (sent with 1/3-rate repetition FEC, so 54 bits on air) and a
//! 16-bit payload CRC.

use btpan_sim::time::SimDuration;
use std::fmt;
use std::str::FromStr;

/// Bits in the access code preamble + sync word + trailer.
pub const ACCESS_CODE_BITS: u32 = 72;
/// Bits in the packet header before FEC.
pub const HEADER_BITS: u32 = 18;
/// Bits of the header on air (1/3-rate repetition).
pub const HEADER_BITS_ON_AIR: u32 = 54;
/// Bits of payload CRC.
pub const CRC_BITS: u32 = 16;

/// The six ACL data packet types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PacketType {
    /// 1 slot, FEC-coded payload, up to 17 bytes.
    Dm1,
    /// 1 slot, uncoded payload, up to 27 bytes.
    Dh1,
    /// 3 slots, FEC-coded payload, up to 121 bytes.
    Dm3,
    /// 3 slots, uncoded payload, up to 183 bytes.
    Dh3,
    /// 5 slots, FEC-coded payload, up to 224 bytes.
    Dm5,
    /// 5 slots, uncoded payload, up to 339 bytes.
    Dh5,
}

impl PacketType {
    /// All six types, in the conventional order.
    pub const ALL: [PacketType; 6] = [
        PacketType::Dm1,
        PacketType::Dh1,
        PacketType::Dm3,
        PacketType::Dh3,
        PacketType::Dm5,
        PacketType::Dh5,
    ];

    /// Number of 625 µs slots the packet occupies.
    pub const fn slots(self) -> u64 {
        match self {
            PacketType::Dm1 | PacketType::Dh1 => 1,
            PacketType::Dm3 | PacketType::Dh3 => 3,
            PacketType::Dm5 | PacketType::Dh5 => 5,
        }
    }

    /// Maximum user payload in bytes (Bluetooth 1.1, Table 4.1).
    pub const fn max_payload_bytes(self) -> u32 {
        match self {
            PacketType::Dm1 => 17,
            PacketType::Dh1 => 27,
            PacketType::Dm3 => 121,
            PacketType::Dh3 => 183,
            PacketType::Dm5 => 224,
            PacketType::Dh5 => 339,
        }
    }

    /// True for the FEC-protected (`DMx`) types.
    pub const fn fec_coded(self) -> bool {
        matches!(self, PacketType::Dm1 | PacketType::Dm3 | PacketType::Dm5)
    }

    /// Air time of one transmission attempt: the packet's slots plus one
    /// return slot for the peer's ACK/NAK (a baseband ACK piggybacks on
    /// the next return packet, which takes at least one slot).
    pub fn attempt_air_time(self) -> SimDuration {
        SimDuration::from_slots(self.slots() + 1)
    }

    /// Payload bits **on air** for a full packet, including CRC and FEC
    /// expansion.
    pub const fn payload_bits_on_air(self) -> u32 {
        let data_bits = self.max_payload_bytes() * 8 + CRC_BITS;
        if self.fec_coded() {
            // 10 data bits become a 15-bit codeword.
            data_bits.div_ceil(10) * 15
        } else {
            data_bits
        }
    }

    /// Number of baseband packets (payloads) needed to carry `bytes`
    /// user bytes when each packet is filled to capacity.
    pub const fn packets_for(self, bytes: u64) -> u64 {
        let cap = self.max_payload_bytes() as u64;
        if bytes == 0 {
            0
        } else {
            bytes.div_ceil(cap)
        }
    }

    /// Peak user throughput in bytes per second of channel time
    /// (one attempt = `slots + 1` slot times, 625 µs per slot).
    pub fn peak_throughput_bps(self) -> f64 {
        let bytes = self.max_payload_bytes() as f64;
        let secs = (self.slots() + 1) as f64 * 625e-6;
        bytes / secs
    }

    /// Canonical spec name, e.g. `"DM1"`.
    pub const fn label(self) -> &'static str {
        match self {
            PacketType::Dm1 => "DM1",
            PacketType::Dh1 => "DH1",
            PacketType::Dm3 => "DM3",
            PacketType::Dh3 => "DH3",
            PacketType::Dm5 => "DM5",
            PacketType::Dh5 => "DH5",
        }
    }

    /// Position of this type within [`PacketType::ALL`].
    pub const fn index(self) -> usize {
        match self {
            PacketType::Dm1 => 0,
            PacketType::Dh1 => 1,
            PacketType::Dm3 => 2,
            PacketType::Dh3 => 3,
            PacketType::Dm5 => 4,
            PacketType::Dh5 => 5,
        }
    }
}

impl fmt::Display for PacketType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Error returned by [`PacketType::from_str`] for an unknown name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePacketTypeError(String);

impl fmt::Display for ParsePacketTypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown packet type `{}`", self.0)
    }
}

impl std::error::Error for ParsePacketTypeError {}

impl FromStr for PacketType {
    type Err = ParsePacketTypeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "DM1" => Ok(PacketType::Dm1),
            "DH1" => Ok(PacketType::Dh1),
            "DM3" => Ok(PacketType::Dm3),
            "DH3" => Ok(PacketType::Dh3),
            "DM5" => Ok(PacketType::Dm5),
            "DH5" => Ok(PacketType::Dh5),
            other => Err(ParsePacketTypeError(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_slot_counts() {
        assert_eq!(PacketType::Dm1.slots(), 1);
        assert_eq!(PacketType::Dh1.slots(), 1);
        assert_eq!(PacketType::Dm3.slots(), 3);
        assert_eq!(PacketType::Dh3.slots(), 3);
        assert_eq!(PacketType::Dm5.slots(), 5);
        assert_eq!(PacketType::Dh5.slots(), 5);
    }

    #[test]
    fn spec_payload_capacities() {
        let caps: Vec<u32> = PacketType::ALL
            .iter()
            .map(|p| p.max_payload_bytes())
            .collect();
        assert_eq!(caps, vec![17, 27, 121, 183, 224, 339]);
    }

    #[test]
    fn fec_flags() {
        assert!(PacketType::Dm1.fec_coded());
        assert!(PacketType::Dm3.fec_coded());
        assert!(PacketType::Dm5.fec_coded());
        assert!(!PacketType::Dh1.fec_coded());
        assert!(!PacketType::Dh5.fec_coded());
    }

    #[test]
    fn dm_on_air_bits_expand_by_3_over_2() {
        // DM1: 17*8+16 = 152 data bits -> 16 codewords -> 240 bits.
        assert_eq!(PacketType::Dm1.payload_bits_on_air(), 240);
        // DH1: 27*8+16 = 232 bits, uncoded.
        assert_eq!(PacketType::Dh1.payload_bits_on_air(), 232);
    }

    #[test]
    fn packets_for_bnep_mtu() {
        // 1691-byte BNEP MTU (the paper's Fig. 3b experiment size).
        assert_eq!(PacketType::Dm1.packets_for(1691), 100);
        assert_eq!(PacketType::Dh1.packets_for(1691), 63);
        assert_eq!(PacketType::Dm3.packets_for(1691), 14);
        assert_eq!(PacketType::Dh3.packets_for(1691), 10);
        assert_eq!(PacketType::Dm5.packets_for(1691), 8);
        assert_eq!(PacketType::Dh5.packets_for(1691), 5);
        assert_eq!(PacketType::Dh5.packets_for(0), 0);
    }

    #[test]
    fn dh5_has_best_throughput() {
        let t: Vec<f64> = PacketType::ALL
            .iter()
            .map(|p| p.peak_throughput_bps())
            .collect();
        let dh5 = PacketType::Dh5.peak_throughput_bps();
        assert!(t.iter().all(|&x| x <= dh5));
        // DH5: 339 bytes / 3.75 ms = 90.4 kB/s
        assert!((dh5 - 90_400.0).abs() < 100.0);
    }

    #[test]
    fn attempt_air_time_includes_return_slot() {
        assert_eq!(
            PacketType::Dh5.attempt_air_time(),
            SimDuration::from_slots(6)
        );
        assert_eq!(
            PacketType::Dm1.attempt_air_time(),
            SimDuration::from_slots(2)
        );
    }

    #[test]
    fn parse_round_trip() {
        for pt in PacketType::ALL {
            let parsed: PacketType = pt.to_string().parse().unwrap();
            assert_eq!(parsed, pt);
        }
        assert!("dm1".parse::<PacketType>().is_ok());
        let err = "DX9".parse::<PacketType>().unwrap_err();
        assert!(err.to_string().contains("DX9"));
    }
}
