//! 79-channel frequency hop sequence.
//!
//! Bluetooth hops over 79 1-MHz channels (2402–2480 MHz) at 1600
//! hops/s — one hop per 625 µs slot (multi-slot packets stay on the
//! channel they started on). The real selection kernel mixes the master's
//! address and clock through a bespoke permutation network; for failure
//! analysis what matters is that the sequence is (a) deterministic per
//! piconet, (b) close to uniform over the 79 channels, and (c)
//! decorrelated between adjacent slots, so an interferer parked on a
//! fixed sub-band hits a predictable fraction of slots. We implement a
//! SplitMix-based keyed permutation with those properties.

/// Number of RF channels in the 2.4 GHz band plan.
pub const CHANNELS: u8 = 79;

/// A deterministic hop sequence keyed by the master's address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HopSequence {
    key: u64,
}

impl HopSequence {
    /// Creates the hop sequence of a piconet whose master has address
    /// `master_addr` (any stable 48-bit-ish identifier works).
    pub fn new(master_addr: u64) -> Self {
        HopSequence { key: master_addr }
    }

    /// The RF channel used by the slot with index `slot` (slots count
    /// from the start of the simulation; multi-slot packets should call
    /// this once with their first slot).
    pub fn channel(&self, slot: u64) -> u8 {
        let mut x = slot ^ self.key.rotate_left(23);
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        (x % u64::from(CHANNELS)) as u8
    }

    /// Batch variant: fills `out[i]` with the channel of
    /// `start_slot + i`. Lets slot-fidelity loops hoist the per-slot
    /// call (and gives the optimizer a straight-line body to vectorize).
    pub fn fill_channels(&self, start_slot: u64, out: &mut [u8]) {
        let key = self.key.rotate_left(23);
        for (i, o) in out.iter_mut().enumerate() {
            let mut x = (start_slot + i as u64) ^ key;
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            x ^= x >> 31;
            *o = (x % u64::from(CHANNELS)) as u8;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_key() {
        let a = HopSequence::new(0xABCDEF);
        let b = HopSequence::new(0xABCDEF);
        for slot in 0..100 {
            assert_eq!(a.channel(slot), b.channel(slot));
        }
    }

    #[test]
    fn different_keys_differ() {
        let a = HopSequence::new(1);
        let b = HopSequence::new(2);
        let same = (0..200).filter(|&s| a.channel(s) == b.channel(s)).count();
        assert!(same < 30, "sequences too similar: {same}/200");
    }

    #[test]
    fn channels_in_range_and_roughly_uniform() {
        let h = HopSequence::new(42);
        let mut counts = [0u32; CHANNELS as usize];
        let n = 79_000;
        for slot in 0..n {
            let ch = h.channel(slot);
            assert!(ch < CHANNELS);
            counts[ch as usize] += 1;
        }
        let expected = n as f64 / CHANNELS as f64;
        for (ch, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.15, "channel {ch} count {c} vs {expected}");
        }
    }

    #[test]
    fn fill_channels_matches_per_slot_calls() {
        let h = HopSequence::new(0xFEED_BEEF);
        let mut buf = [0u8; 257];
        for start in [0u64, 1, 624, 625, u64::MAX - 300] {
            h.fill_channels(start, &mut buf);
            for (i, &ch) in buf.iter().enumerate() {
                assert_eq!(ch, h.channel(start + i as u64), "start {start} i {i}");
            }
        }
    }

    #[test]
    fn adjacent_slots_decorrelated() {
        let h = HopSequence::new(7);
        let repeats = (0..10_000)
            .filter(|&s| h.channel(s) == h.channel(s + 1))
            .count();
        // Chance level is 1/79 ≈ 127 repeats out of 10k.
        assert!(repeats < 260, "adjacent repeats {repeats}");
    }
}
