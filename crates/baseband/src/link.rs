//! ACL link with ARQ and retransmission limit.
//!
//! Baseband integrity works as follows (BT 1.1 §IV): every payload
//! carries a CRC; a corrupted payload is NAK'd and retransmitted.
//! "Retransmissions at the Baseband level are allowed up to a certain
//! limit at which the current payload is dropped and the next payload is
//! considered" — the mechanism the paper blames for Fig. 3a. This module
//! simulates that loop slot by slot:
//!
//! * the 18-bit header is protected by 1/3-rate repetition FEC; a header
//!   loss means no ACK and a wasted attempt;
//! * `DMx` payloads decode codeword-by-codeword through the (15,10)
//!   Hamming model; `DHx` payloads need every bit intact;
//! * a corrupted payload can *escape* the CRC (probability from
//!   [`crate::crc::undetected_probability`], burst-length dependent) and
//!   be delivered corrupt — the paper's `Data mismatch`;
//! * the ACK travels on the return slot and can itself be lost, forcing
//!   a redundant retransmission (deduplicated by the SEQN bit).
//!
//! Because a full 18-month campaign cannot run at slot fidelity, the
//! module also provides [`DropProfile`]: a per-payload drop/mismatch
//! probability table *calibrated by running this very simulation* for a
//! few hundred thousand payloads per packet type. The campaign layer
//! samples cycle outcomes from the profile; `repro_fig3a` demonstrates
//! the two agree.

use crate::channel::{ChannelModel, ChannelState};
use crate::crc;
use crate::fec;
use crate::hop::HopSequence;
use crate::packet::{PacketType, HEADER_BITS};
use btpan_sim::prelude::*;

mod metrics {
    use crate::packet::PacketType;
    use btpan_obs::{Counter, Registry};
    use std::sync::OnceLock;

    /// Per-packet-type counter families, indexed by [`PacketType::index`].
    /// Updates are flushed once per [`super::AclLink::send_payloads`] call
    /// (not per attempt) so the disabled path stays off the per-slot hot
    /// loop entirely.
    pub(super) struct LinkMetrics {
        pub attempts: [Counter; 6],
        pub retransmits: [Counter; 6],
        pub crc_failures: [Counter; 6],
        pub header_losses: [Counter; 6],
        pub delivered: [Counter; 6],
        pub dropped: [Counter; 6],
        pub undetected: [Counter; 6],
        pub slots: [Counter; 6],
    }

    fn family(registry: &Registry, name: &str) -> [Counter; 6] {
        PacketType::ALL.map(|pt| registry.counter_with(name, &[("type", pt.label())]))
    }

    pub(super) fn handles() -> &'static LinkMetrics {
        static HANDLES: OnceLock<LinkMetrics> = OnceLock::new();
        HANDLES.get_or_init(|| {
            let registry = Registry::global();
            LinkMetrics {
                attempts: family(registry, "btpan_baseband_attempts_total"),
                retransmits: family(registry, "btpan_baseband_retransmits_total"),
                crc_failures: family(registry, "btpan_baseband_crc_failures_total"),
                header_losses: family(registry, "btpan_baseband_header_losses_total"),
                delivered: family(registry, "btpan_baseband_payloads_delivered_total"),
                dropped: family(registry, "btpan_baseband_payloads_dropped_total"),
                undetected: family(registry, "btpan_baseband_undetected_total"),
                slots: family(registry, "btpan_baseband_slots_used_total"),
            }
        })
    }
}

/// Configuration of an ACL link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkConfig {
    /// Baseband packet type in use.
    pub packet_type: PacketType,
    /// Attempts per payload before the payload is flushed (dropped).
    pub retry_limit: u32,
    /// Fraction of piconet slots granted to this link (1.0 = sole
    /// active slave). Lower shares space attempts further apart in time.
    pub slot_share: f64,
}

impl LinkConfig {
    /// A link using `packet_type` with the spec-typical flush limit.
    pub fn new(packet_type: PacketType) -> Self {
        LinkConfig {
            packet_type,
            retry_limit: 8,
            slot_share: 1.0,
        }
    }

    /// Sets the retry (flush) limit.
    ///
    /// # Panics
    ///
    /// Panics if `limit` is zero.
    pub fn retry_limit(mut self, limit: u32) -> Self {
        assert!(limit > 0, "retry limit must be positive");
        self.retry_limit = limit;
        self
    }

    /// Sets the slot share.
    ///
    /// # Panics
    ///
    /// Panics unless `share` is in `(0, 1]`.
    pub fn slot_share(mut self, share: f64) -> Self {
        assert!(share > 0.0 && share <= 1.0, "slot share in (0,1]");
        self.slot_share = share;
        self
    }

    /// Slots consumed per attempt including the return slot and the
    /// waiting slots implied by the slot share.
    pub fn slots_per_attempt(&self) -> u64 {
        let air = self.packet_type.slots() + 1;
        ((air as f64) / self.slot_share).ceil() as u64
    }
}

/// Outcome of one transmission attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttemptResult {
    /// Payload delivered and ACK received.
    Delivered,
    /// Header (or access code) lost; receiver saw nothing.
    HeaderLost,
    /// Payload corrupted and caught by FEC/CRC; NAK sent.
    PayloadCorrupted,
    /// Payload corrupted but the corruption escaped the CRC; the
    /// receiver ACKs a wrong payload.
    UndetectedCorruption,
    /// Payload delivered but the ACK was lost; sender retransmits, the
    /// receiver's SEQN check deduplicates.
    AckLost,
}

/// Outcome of transferring a sequence of payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TransferOutcome {
    /// Payloads the caller asked to move.
    pub payloads_requested: u64,
    /// Payloads delivered intact.
    pub payloads_delivered: u64,
    /// Index of the first payload whose retries were exhausted
    /// (the transfer aborts there), if any.
    pub dropped_at: Option<u64>,
    /// Payloads delivered with corruption that escaped the CRC.
    pub undetected: u64,
    /// Total transmission attempts.
    pub attempts: u64,
    /// Total slots consumed (including waiting slots from slot share).
    pub slots_used: u64,
}

impl TransferOutcome {
    /// True if every payload arrived intact.
    pub fn is_clean(&self) -> bool {
        self.dropped_at.is_none() && self.undetected == 0
    }
}

/// Longest ACL packet in slots (DM5/DH5).
const MAX_PACKET_SLOTS: usize = 5;

/// An ACL link between a master and one slave.
#[derive(Debug)]
pub struct AclLink<C> {
    cfg: LinkConfig,
    channel: C,
    hop: HopSequence,
    slot_cursor: u64,
    /// Scratch buffers reused across [`Self::transmit_bytes_once`] calls
    /// so the real-codec path allocates nothing in steady state.
    scratch_body: Vec<u8>,
    scratch_words: Vec<u16>,
    scratch_decoded: Vec<u8>,
}

impl<C: ChannelModel> AclLink<C> {
    /// Creates a link over `channel` within the piconet hopping on
    /// `hop`.
    pub fn new(cfg: LinkConfig, channel: C, hop: HopSequence) -> Self {
        AclLink {
            cfg,
            channel,
            hop,
            slot_cursor: 0,
            scratch_body: Vec::new(),
            scratch_words: Vec::new(),
            scratch_decoded: Vec::new(),
        }
    }

    /// Current link configuration.
    pub fn config(&self) -> &LinkConfig {
        &self.cfg
    }

    /// Mutable access, e.g. to change packet type between cycles.
    pub fn config_mut(&mut self) -> &mut LinkConfig {
        &mut self.cfg
    }

    /// Absolute slot index the link has advanced to.
    pub fn slot_cursor(&self) -> u64 {
        self.slot_cursor
    }

    /// Advances the channel through `n` idle slots (no transmission) in
    /// O(dwell transitions) per span via
    /// [`ChannelModel::advance_idle`] — the "do no work for quiet time"
    /// fast path. Exactly bit-identical to [`Self::idle_slots_reference`]
    /// for channels whose idle evolution consumes no randomness or
    /// draws only at dwell boundaries; distribution-exact for
    /// burst-state channels (see the trait docs).
    pub fn idle_slots(&mut self, n: u64, rng: &mut SimRng) {
        self.channel.advance_idle(self.slot_cursor, n, rng);
        self.slot_cursor += n;
    }

    /// The original slot-by-slot idle walk, retained as the reference
    /// implementation for equivalence tests and `repro_bench`.
    pub fn idle_slots_reference(&mut self, n: u64, rng: &mut SimRng) {
        for _ in 0..n {
            let ch = self.hop.channel(self.slot_cursor);
            let _ = self.channel.slot_ber(self.slot_cursor, ch, rng);
            self.slot_cursor += 1;
        }
    }

    /// Simulates one transmission attempt of a full-size payload.
    pub fn attempt(&mut self, rng: &mut SimRng) -> AttemptResult {
        let pt = self.cfg.packet_type;
        let ch = self.hop.channel(self.slot_cursor);
        let n_slots = pt.slots();

        // Gather per-slot BERs over the packet's slots (same RF channel —
        // multi-slot packets do not re-hop). Longest packet is 5 slots,
        // so a stack array replaces the per-attempt heap allocation; the
        // RNG draw order is unchanged.
        debug_assert!(n_slots as usize <= MAX_PACKET_SLOTS);
        let mut slot_bers = [0.0f64; MAX_PACKET_SLOTS];
        let slot_bers = &mut slot_bers[..n_slots as usize];
        let mut saw_bad_state = false;
        for (i, ber) in slot_bers.iter_mut().enumerate() {
            if self.channel.state() == ChannelState::Bad {
                saw_bad_state = true;
            }
            *ber = self.channel.slot_ber(self.slot_cursor + i as u64, ch, rng);
        }

        // Header: first slot, repetition-coded, 18 bits.
        let hdr_bit_err = fec::repetition_error_probability(slot_bers[0]);
        let p_header_ok = (1.0 - hdr_bit_err).powi(HEADER_BITS as i32);

        // Payload bits spread evenly over the packet's slots.
        let payload_bits = pt.payload_bits_on_air();
        let bits_per_slot = payload_bits as f64 / n_slots as f64;
        let mut p_payload_ok = 1.0;
        for &ber in slot_bers.iter() {
            if pt.fec_coded() {
                let codewords = bits_per_slot / fec::CODE_BITS as f64;
                p_payload_ok *= fec::hamming_block_success_probability(ber).powf(codewords);
            } else {
                p_payload_ok *= (1.0 - ber).powf(bits_per_slot);
            }
        }

        // Return (ACK) slot.
        let ack_ch = self.hop.channel(self.slot_cursor + n_slots);
        if self.channel.state() == ChannelState::Bad {
            saw_bad_state = true;
        }
        let ack_ber = self
            .channel
            .slot_ber(self.slot_cursor + n_slots, ack_ch, rng);
        let ack_bit_err = fec::repetition_error_probability(ack_ber);
        let p_ack_ok = (1.0 - ack_bit_err).powi(HEADER_BITS as i32);

        // Waiting slots implied by slot share also advance the channel.
        let total = self.cfg.slots_per_attempt();
        self.slot_cursor += n_slots + 1;
        if total > n_slots + 1 {
            self.idle_slots(total - (n_slots + 1), rng);
        }

        if !rng.chance(p_header_ok) {
            return AttemptResult::HeaderLost;
        }
        if !rng.chance(p_payload_ok) {
            // Corrupted payload: does it escape the CRC? Burst state
            // means long error runs (> 17 bits); good-state residual
            // errors are short and always caught.
            let burst_bits = if saw_bad_state { 64 } else { 8 };
            if rng.chance(crc::undetected_probability(burst_bits)) {
                return AttemptResult::UndetectedCorruption;
            }
            return AttemptResult::PayloadCorrupted;
        }
        if !rng.chance(p_ack_ok) {
            return AttemptResult::AckLost;
        }
        AttemptResult::Delivered
    }

    /// Transfers `payloads` full-size payloads, aborting at the first
    /// payload whose retry budget is exhausted.
    pub fn send_payloads(&mut self, payloads: u64, rng: &mut SimRng) -> TransferOutcome {
        let start_slot = self.slot_cursor;
        let mut out = TransferOutcome {
            payloads_requested: payloads,
            ..TransferOutcome::default()
        };
        let mut crc_failures = 0u64;
        let mut header_losses = 0u64;
        'payloads: for index in 0..payloads {
            let mut delivered = false;
            for _try in 0..self.cfg.retry_limit {
                out.attempts += 1;
                match self.attempt(rng) {
                    AttemptResult::Delivered => {
                        delivered = true;
                        break;
                    }
                    AttemptResult::AckLost => {
                        // Receiver has it; sender retransmits once more,
                        // receiver dedups. Treat as delivered after the
                        // redundant attempt (SEQN match).
                        delivered = true;
                        break;
                    }
                    AttemptResult::UndetectedCorruption => {
                        out.undetected += 1;
                        delivered = true;
                        break;
                    }
                    AttemptResult::HeaderLost => header_losses += 1,
                    AttemptResult::PayloadCorrupted => crc_failures += 1,
                }
            }
            if delivered {
                out.payloads_delivered += 1;
            } else {
                out.dropped_at = Some(index);
                break 'payloads;
            }
        }
        out.slots_used = self.slot_cursor - start_slot;
        let obs = metrics::handles();
        let idx = self.cfg.packet_type.index();
        let payloads_started = out.payloads_delivered + u64::from(out.dropped_at.is_some());
        obs.attempts[idx].add(out.attempts);
        obs.retransmits[idx].add(out.attempts - payloads_started);
        obs.crc_failures[idx].add(crc_failures);
        obs.header_losses[idx].add(header_losses);
        obs.delivered[idx].add(out.payloads_delivered);
        obs.dropped[idx].add(u64::from(out.dropped_at.is_some()));
        obs.undetected[idx].add(out.undetected);
        obs.slots[idx].add(out.slots_used);
        out
    }

    /// Transmits real bytes through the real codecs once (no ARQ):
    /// encodes with FEC/CRC as the packet type dictates, flips bits per
    /// the sampled slot BER, and decodes. Used by tests to validate the
    /// probabilistic fast path against the actual bit machinery.
    pub fn transmit_bytes_once(&mut self, payload: &[u8], rng: &mut SimRng) -> Option<Vec<u8>> {
        let pt = self.cfg.packet_type;
        assert!(
            payload.len() <= pt.max_payload_bytes() as usize,
            "payload exceeds packet capacity"
        );
        let ch = self.hop.channel(self.slot_cursor);
        crc::append_crc_into(payload, &mut self.scratch_body);
        let n_slots = pt.slots();
        debug_assert!(n_slots as usize <= MAX_PACKET_SLOTS);
        let mut bers = [0.0f64; MAX_PACKET_SLOTS];
        for (i, ber) in bers[..n_slots as usize].iter_mut().enumerate() {
            *ber = self.channel.slot_ber(self.slot_cursor + i as u64, ch, rng);
        }
        self.slot_cursor += n_slots + 1;
        let ber_avg = bers[..n_slots as usize].iter().sum::<f64>() / n_slots as f64;

        let received: &[u8] = if pt.fec_coded() {
            fec::encode_bytes_into(&self.scratch_body, &mut self.scratch_words);
            for w in self.scratch_words.iter_mut() {
                for bit in 0..fec::CODE_BITS {
                    if rng.chance(ber_avg) {
                        *w ^= 1 << bit;
                    }
                }
            }
            let body_len = self.scratch_body.len();
            if !fec::decode_bytes_into(&self.scratch_words, body_len, &mut self.scratch_decoded) {
                return None;
            }
            &self.scratch_decoded
        } else {
            // Corrupt the scratch body in place — no working copy needed.
            for byte in self.scratch_body.iter_mut() {
                for bit in 0..8 {
                    if rng.chance(ber_avg) {
                        *byte ^= 1 << bit;
                    }
                }
            }
            &self.scratch_body
        };
        crc::check_crc(received).map(<[u8]>::to_vec)
    }
}

/// Calibrated per-payload outcome probabilities for fast cycle sampling.
///
/// Obtained by Monte-Carlo over the slot-fidelity link; the campaign
/// layer then samples a cycle's transfer outcome as a geometric/binomial
/// draw instead of simulating billions of slots.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DropProfile {
    /// Packet type the profile describes.
    pub packet_type: PacketType,
    /// Probability a payload is dropped (retries exhausted).
    pub p_drop: f64,
    /// Probability a payload is delivered corrupt (CRC escape).
    pub p_undetected: f64,
    /// Mean attempts per delivered payload.
    pub mean_attempts: f64,
    /// Mean slots consumed per payload.
    pub mean_slots: f64,
}

impl DropProfile {
    /// Calibrates a profile by pushing `n_payloads` through a
    /// slot-fidelity link.
    pub fn calibrate<C: ChannelModel>(
        cfg: LinkConfig,
        channel: C,
        hop: HopSequence,
        n_payloads: u64,
        rng: &mut SimRng,
    ) -> Self {
        let mut link = AclLink::new(cfg, channel, hop);
        let mut dropped = 0u64;
        let mut undetected = 0u64;
        let mut attempts = 0u64;
        let start = link.slot_cursor();
        let mut sent = 0u64;
        while sent < n_payloads {
            // Send in bursts of 64 to amortize; aborts mid-burst on drop.
            let burst = 64.min(n_payloads - sent);
            let out = link.send_payloads(burst, rng);
            attempts += out.attempts;
            undetected += out.undetected;
            if out.dropped_at.is_some() {
                dropped += 1;
                sent += out.payloads_delivered + 1;
            } else {
                sent += out.payloads_delivered;
            }
        }
        let slots = link.slot_cursor() - start;
        DropProfile {
            packet_type: cfg.packet_type,
            p_drop: dropped as f64 / sent as f64,
            p_undetected: undetected as f64 / sent as f64,
            mean_attempts: attempts as f64 / sent as f64,
            mean_slots: slots as f64 / sent as f64,
        }
    }

    /// Probability that a transfer of `payloads` payloads completes with
    /// no drop.
    pub fn p_transfer_clean(&self, payloads: u64) -> f64 {
        (1.0 - self.p_drop).powf(payloads as f64)
    }

    /// Samples the index of the first dropped payload in a transfer of
    /// `payloads`, or `None` if the transfer survives.
    pub fn sample_first_drop(&self, payloads: u64, rng: &mut SimRng) -> Option<u64> {
        if self.p_drop <= 0.0 {
            return None;
        }
        // Geometric draw of payloads-before-first-drop.
        let g = Geometric::new(self.p_drop).expect("p_drop in (0,1]");
        let first = g.sample(rng);
        (first < payloads).then_some(first)
    }

    /// Samples how many of `payloads` delivered payloads carry
    /// undetected corruption.
    pub fn sample_undetected(&self, payloads: u64, rng: &mut SimRng) -> u64 {
        if self.p_undetected <= 0.0 || payloads == 0 {
            return 0;
        }
        // Thin payloads with small p: Poisson-like, sample as binomial
        // via repeated Bernoulli only when expected count is small.
        let expected = self.p_undetected * payloads as f64;
        if expected < 30.0 {
            let mut hits = 0;
            // Geometric skipping for efficiency.
            let g = Geometric::new(self.p_undetected).expect("p in (0,1]");
            let mut pos = 0u64;
            loop {
                let skip = g.sample(rng);
                pos = pos.saturating_add(skip).saturating_add(1);
                if pos > payloads {
                    break;
                }
                hits += 1;
            }
            hits
        } else {
            // Normal approximation for large counts.
            let var = expected * (1.0 - self.p_undetected);
            let u1 = rng.uniform01().max(f64::MIN_POSITIVE);
            let u2 = rng.uniform01();
            let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            (expected + z * var.sqrt()).round().max(0.0) as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{GilbertElliott, MemorylessChannel};

    fn rng() -> SimRng {
        SimRng::seed_from(0xACE)
    }

    fn quiet_link(pt: PacketType) -> AclLink<MemorylessChannel> {
        AclLink::new(
            LinkConfig::new(pt),
            MemorylessChannel::new(0.0),
            HopSequence::new(1),
        )
    }

    #[test]
    fn clean_channel_delivers_everything() {
        let mut link = quiet_link(PacketType::Dh5);
        let out = link.send_payloads(100, &mut rng());
        assert_eq!(out.payloads_delivered, 100);
        assert!(out.is_clean());
        assert_eq!(out.attempts, 100);
        // 6 slots per attempt for DH5.
        assert_eq!(out.slots_used, 600);
    }

    #[test]
    fn hostile_channel_drops() {
        let mut link = AclLink::new(
            LinkConfig::new(PacketType::Dh5).retry_limit(3),
            MemorylessChannel::new(0.05),
            HopSequence::new(1),
        );
        let out = link.send_payloads(50, &mut rng());
        assert!(out.dropped_at.is_some());
        assert!(out.payloads_delivered < 50);
    }

    #[test]
    fn fec_helps_at_moderate_ber() {
        // At BER where DH fails, DM1's FEC should still deliver a
        // substantially larger per-attempt success rate.
        let mut r = rng();
        let n = 3000;
        let count = |pt: PacketType, r: &mut SimRng| {
            let mut link = AclLink::new(
                LinkConfig::new(pt).retry_limit(1),
                MemorylessChannel::new(2e-3),
                HopSequence::new(1),
            );
            (0..n)
                .filter(|_| matches!(link.attempt(r), AttemptResult::Delivered))
                .count()
        };
        let dm1 = count(PacketType::Dm1, &mut r);
        let dh1 = count(PacketType::Dh1, &mut r);
        assert!(
            dm1 > dh1 + n / 20,
            "FEC not helping: DM1 {dm1} vs DH1 {dh1}"
        );
    }

    #[test]
    fn slot_share_spaces_attempts() {
        let cfg = LinkConfig::new(PacketType::Dh1).slot_share(0.25);
        assert_eq!(cfg.slots_per_attempt(), 8);
        let mut link = AclLink::new(cfg, MemorylessChannel::new(0.0), HopSequence::new(1));
        let out = link.send_payloads(10, &mut rng());
        assert_eq!(out.slots_used, 80);
    }

    #[test]
    fn burst_channel_drops_more_single_slot_payloads_per_byte() {
        // Core Fig. 3a mechanism: for the same byte volume, 1-slot
        // packets give more payloads and retries bunch inside bursts.
        let mut r = rng();
        let bytes: u64 = 1691 * 400;
        let drop_fraction = |pt: PacketType, r: &mut SimRng| {
            let ge = GilbertElliott::new(2e-4, 0.02, 1e-6, 0.08);
            let mut link =
                AclLink::new(LinkConfig::new(pt).retry_limit(4), ge, HopSequence::new(3));
            let payloads = pt.packets_for(bytes);
            let mut dropped = 0u64;
            let mut sent = 0u64;
            while sent < payloads {
                let out = link.send_payloads(payloads - sent, r);
                sent += out.payloads_delivered;
                if out.dropped_at.is_some() {
                    dropped += 1;
                    sent += 1;
                }
            }
            dropped as f64 / payloads as f64
        };
        let dh1 = drop_fraction(PacketType::Dh1, &mut r);
        let dh5 = drop_fraction(PacketType::Dh5, &mut r);
        // Per payload the 1-slot type should drop at least as often; per
        // byte it is strictly worse because it needs ~5x the payloads.
        let per_byte_dh1 = dh1 * PacketType::Dh1.packets_for(bytes) as f64;
        let per_byte_dh5 = dh5 * PacketType::Dh5.packets_for(bytes) as f64;
        assert!(
            per_byte_dh1 > per_byte_dh5,
            "DH1 {per_byte_dh1} vs DH5 {per_byte_dh5}"
        );
    }

    #[test]
    fn real_bytes_round_trip_clean() {
        let mut link = quiet_link(PacketType::Dm1);
        let out = link.transmit_bytes_once(b"hello", &mut rng());
        assert_eq!(out.unwrap(), b"hello");
    }

    #[test]
    fn real_bytes_detect_corruption() {
        let mut link = AclLink::new(
            LinkConfig::new(PacketType::Dh1),
            MemorylessChannel::new(0.08),
            HopSequence::new(1),
        );
        let mut r = rng();
        let lost = (0..200)
            .filter(|_| {
                link.transmit_bytes_once(b"corruptible payload", &mut r)
                    .is_none()
            })
            .count();
        assert!(lost > 100, "only {lost} corrupted at BER 0.08");
    }

    #[test]
    #[should_panic(expected = "exceeds packet capacity")]
    fn oversized_payload_panics() {
        let mut link = quiet_link(PacketType::Dm1);
        let _ = link.transmit_bytes_once(&[0u8; 18], &mut rng());
    }

    #[test]
    fn drop_profile_calibration_sane() {
        let mut r = rng();
        let prof = DropProfile::calibrate(
            LinkConfig::new(PacketType::Dh1).retry_limit(4),
            GilbertElliott::new(5e-4, 0.02, 1e-6, 0.08),
            HopSequence::new(5),
            30_000,
            &mut r,
        );
        assert!(prof.p_drop > 0.0 && prof.p_drop < 0.2, "{prof:?}");
        assert!(prof.mean_attempts >= 1.0);
        assert!(prof.mean_slots >= 2.0);
        // Fast path consistency: clean-transfer probability decreases
        // with transfer length.
        assert!(prof.p_transfer_clean(10) > prof.p_transfer_clean(1000));
    }

    #[test]
    fn drop_profile_sampling_consistent() {
        let prof = DropProfile {
            packet_type: PacketType::Dh1,
            p_drop: 0.01,
            p_undetected: 0.001,
            mean_attempts: 1.1,
            mean_slots: 2.4,
        };
        let mut r = rng();
        let n = 20_000;
        let drops = (0..n)
            .filter(|_| prof.sample_first_drop(100, &mut r).is_some())
            .count();
        let expect = 1.0 - prof.p_transfer_clean(100); // ~0.634
        let freq = drops as f64 / n as f64;
        assert!((freq - expect).abs() < 0.02, "freq {freq} expect {expect}");
        // Undetected counts have roughly the right mean.
        let total: u64 = (0..n).map(|_| prof.sample_undetected(100, &mut r)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 0.1).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn zero_drop_profile_never_drops() {
        let prof = DropProfile {
            packet_type: PacketType::Dh5,
            p_drop: 0.0,
            p_undetected: 0.0,
            mean_attempts: 1.0,
            mean_slots: 6.0,
        };
        let mut r = rng();
        assert_eq!(prof.sample_first_drop(1_000_000, &mut r), None);
        assert_eq!(prof.sample_undetected(1_000_000, &mut r), 0);
        assert_eq!(prof.p_transfer_clean(1_000_000), 1.0);
    }

    #[test]
    fn idle_slots_advance_cursor() {
        let mut link = quiet_link(PacketType::Dh1);
        link.idle_slots(10, &mut rng());
        assert_eq!(link.slot_cursor(), 10);
    }

    #[test]
    fn fast_idle_bit_identical_to_reference_for_rng_free_channel() {
        // Memoryless channels draw nothing while idle, so the skip is
        // exactly the reference walk: same cursor, same RNG state, and
        // therefore identical subsequent transfers.
        let mut fast = AclLink::new(
            LinkConfig::new(PacketType::Dh3),
            MemorylessChannel::new(1e-3),
            HopSequence::new(77),
        );
        let mut slow = AclLink::new(
            LinkConfig::new(PacketType::Dh3),
            MemorylessChannel::new(1e-3),
            HopSequence::new(77),
        );
        let mut rf = rng();
        let mut rs = rng();
        for span in [1u64, 999, 1_000_000] {
            fast.idle_slots(span, &mut rf);
            slow.idle_slots_reference(span, &mut rs);
            assert_eq!(fast.slot_cursor(), slow.slot_cursor());
            let a = fast.send_payloads(20, &mut rf);
            let b = slow.send_payloads(20, &mut rs);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn fast_idle_bit_identical_to_reference_for_interferer() {
        use crate::channel::Interferer;
        let mk = || {
            AclLink::new(
                LinkConfig::new(PacketType::Dh1),
                Interferer::wifi(39),
                HopSequence::new(0xBEEF),
            )
        };
        let mut fast = mk();
        let mut slow = mk();
        let mut rf = rng();
        let mut rs = rng();
        for span in [3u64, 50_000, 1_000_000] {
            fast.idle_slots(span, &mut rf);
            slow.idle_slots_reference(span, &mut rs);
            let a = fast.send_payloads(50, &mut rf);
            let b = slow.send_payloads(50, &mut rs);
            assert_eq!(a, b, "diverged after idle span {span}");
        }
    }

    #[test]
    fn fast_idle_with_burst_channel_keeps_transfer_statistics() {
        // GE idle skipping is distribution-exact, not stream-identical:
        // aggregate drop behavior over many idle/transfer rounds must
        // match the reference walk within sampling noise.
        let run = |fast: bool| {
            let mut link = AclLink::new(
                LinkConfig::new(PacketType::Dh1).retry_limit(2),
                GilbertElliott::new(2e-3, 0.02, 1e-6, 0.2),
                HopSequence::new(9),
            );
            let mut r = rng();
            let mut delivered = 0u64;
            let mut attempts = 0u64;
            for _ in 0..400 {
                if fast {
                    link.idle_slots(5_000, &mut r);
                } else {
                    link.idle_slots_reference(5_000, &mut r);
                }
                let out = link.send_payloads(40, &mut r);
                delivered += out.payloads_delivered;
                attempts += out.attempts;
            }
            (delivered, attempts)
        };
        let (df, af) = run(true);
        let (ds, as_) = run(false);
        let rate_f = df as f64 / af as f64;
        let rate_s = ds as f64 / as_ as f64;
        assert!(
            (rate_f - rate_s).abs() < 0.02,
            "delivery-per-attempt diverged: fast {rate_f} vs reference {rate_s}"
        );
    }
}
