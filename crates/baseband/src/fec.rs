//! Forward error correction codes of the Bluetooth baseband.
//!
//! * **2/3-rate FEC** — a shortened Hamming (15,10) code with generator
//!   polynomial `g(D) = (D+1)(D⁴+D+1) = D⁵+D⁴+D²+1`, protecting the
//!   payload of `DMx` packets. It corrects any single bit error per
//!   15-bit codeword and detects double errors.
//! * **1/3-rate FEC** — plain 3× bit repetition with majority vote,
//!   protecting the 18-bit packet header of every packet type.
//!
//! The paper's key observation is that these codes assume *memoryless*
//! channels: an error burst longer than one bit per codeword defeats the
//! Hamming code, and three consecutive corrupted repetitions defeat the
//! header vote — which is exactly what multi-path fading and ISM
//! interference produce.

/// Generator polynomial `D⁵+D⁴+D²+1` of the (15,10) shortened Hamming
/// code, as a bit mask (LSB = constant term).
pub const GENERATOR: u16 = 0b11_0101;

/// Number of data bits per codeword.
pub const DATA_BITS: u32 = 10;
/// Number of bits per codeword on air.
pub const CODE_BITS: u32 = 15;
/// Number of parity bits per codeword.
pub const PARITY_BITS: u32 = CODE_BITS - DATA_BITS;

/// Result of decoding one codeword.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decoded {
    /// Codeword arrived intact.
    Clean(u16),
    /// A single bit error was corrected; payload recovered.
    Corrected(u16),
    /// More than one error: detected but uncorrectable.
    Uncorrectable,
}

impl Decoded {
    /// The recovered data bits, if any.
    pub fn data(self) -> Option<u16> {
        match self {
            Decoded::Clean(d) | Decoded::Corrected(d) => Some(d),
            Decoded::Uncorrectable => None,
        }
    }
}

/// Polynomial remainder of `value` (bit-polynomial) modulo [`GENERATOR`].
const fn poly_rem(mut value: u32) -> u16 {
    // degree of generator = 5
    let mut bit = 31;
    while bit >= PARITY_BITS {
        if value & (1 << bit) != 0 {
            value ^= (GENERATOR as u32) << (bit - PARITY_BITS);
        }
        bit -= 1;
    }
    (value & 0x1F) as u16
}

/// `SINGLE_ERROR_FLIP[s]` is the one-bit error pattern whose syndrome is
/// `s`, or 0 if no single-bit error produces `s` — turning the decoder's
/// correction step into one table lookup instead of a 15-way syndrome
/// search.
static SINGLE_ERROR_FLIP: [u16; 32] = build_single_error_flips();

const fn build_single_error_flips() -> [u16; 32] {
    let mut flips = [0u16; 32];
    let mut i = 0;
    while i < CODE_BITS {
        let s = poly_rem(1u32 << i);
        flips[s as usize] = 1 << i;
        i += 1;
    }
    flips
}

/// Encodes 10 data bits into a 15-bit systematic codeword
/// (`data << 5 | parity`).
///
/// # Panics
///
/// Panics if `data` has bits above bit 9 set.
pub fn encode(data: u16) -> u16 {
    assert!(data < (1 << DATA_BITS), "data exceeds 10 bits");
    let shifted = u32::from(data) << PARITY_BITS;
    let parity = poly_rem(shifted);
    (data << PARITY_BITS) | parity
}

/// Syndrome of a received 15-bit word; zero means "consistent".
pub fn syndrome(word: u16) -> u16 {
    poly_rem(u32::from(word & 0x7FFF))
}

/// Decodes a 15-bit word, correcting at most one bit error.
pub fn decode(word: u16) -> Decoded {
    let word = word & 0x7FFF;
    let s = syndrome(word);
    if s == 0 {
        return Decoded::Clean(word >> PARITY_BITS);
    }
    let flip = SINGLE_ERROR_FLIP[s as usize];
    if flip != 0 {
        return Decoded::Corrected((word ^ flip) >> PARITY_BITS);
    }
    Decoded::Uncorrectable
}

/// Encodes a byte slice into a sequence of codewords (10 data bits per
/// codeword, zero-padded at the end).
pub fn encode_bytes(data: &[u8]) -> Vec<u16> {
    let mut out = Vec::new();
    encode_bytes_into(data, &mut out);
    out
}

/// Encodes `data` into `out` (cleared first), reusing the caller's
/// allocation on the hot path.
pub fn encode_bytes_into(data: &[u8], out: &mut Vec<u16>) {
    let total_bits = data.len() * 8;
    let words = total_bits.div_ceil(DATA_BITS as usize);
    out.clear();
    out.reserve(words);
    for w in 0..words {
        let mut chunk: u16 = 0;
        for b in 0..DATA_BITS as usize {
            let bit_index = w * DATA_BITS as usize + b;
            if bit_index < total_bits {
                let byte = data[bit_index / 8];
                let bit = (byte >> (bit_index % 8)) & 1;
                chunk |= u16::from(bit) << b;
            }
        }
        out.push(encode(chunk));
    }
}

/// Decodes a sequence of codewords back into `len` bytes.
///
/// Returns `None` if any codeword is uncorrectable or the codewords
/// cannot cover `len` bytes.
pub fn decode_bytes(words: &[u16], len: usize) -> Option<Vec<u8>> {
    let mut out = Vec::new();
    decode_bytes_into(words, len, &mut out).then_some(out)
}

/// Decodes `words` into `out` (cleared and zero-filled to `len` bytes),
/// writing data bits straight into the byte buffer — no intermediate
/// bit vector. Returns `false` if any codeword is uncorrectable or the
/// codewords cannot cover `len` bytes; `out` contents are then
/// unspecified.
pub fn decode_bytes_into(words: &[u16], len: usize, out: &mut Vec<u8>) -> bool {
    let needed = (len * 8).div_ceil(DATA_BITS as usize);
    if words.len() < needed {
        return false;
    }
    out.clear();
    out.resize(len, 0);
    let mut bit_index = 0usize;
    for &w in words {
        let Some(data) = decode(w).data() else {
            return false;
        };
        for b in 0..DATA_BITS {
            if bit_index < len * 8 && (data >> b) & 1 != 0 {
                out[bit_index / 8] |= 1 << (bit_index % 8);
            }
            bit_index += 1;
        }
    }
    true
}

/// Majority-vote decode of one 1/3-rate repetition-coded bit.
///
/// `votes` holds the three received copies.
pub fn repetition_decode(votes: [bool; 3]) -> bool {
    (votes[0] as u8 + votes[1] as u8 + votes[2] as u8) >= 2
}

/// Probability a repetition-coded bit decodes wrongly given per-bit error
/// probability `p` (independent errors): `3p²(1−p) + p³`.
pub fn repetition_error_probability(p: f64) -> f64 {
    let p = p.clamp(0.0, 1.0);
    3.0 * p * p * (1.0 - p) + p * p * p
}

/// Probability a (15,10) codeword decodes correctly given per-bit error
/// probability `p`: `(1−p)¹⁵ + 15·p·(1−p)¹⁴`.
pub fn hamming_block_success_probability(p: f64) -> f64 {
    let p = p.clamp(0.0, 1.0);
    let q = 1.0 - p;
    q.powi(15) + 15.0 * p * q.powi(14)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_single_error_syndromes_distinct() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..CODE_BITS {
            let s = syndrome(1 << i);
            assert_ne!(s, 0, "bit {i} has zero syndrome");
            assert!(seen.insert(s), "duplicate syndrome for bit {i}");
        }
    }

    #[test]
    fn encode_produces_zero_syndrome() {
        for data in 0..(1u16 << DATA_BITS) {
            assert_eq!(syndrome(encode(data)), 0, "data {data:#x}");
        }
    }

    #[test]
    fn corrects_every_single_bit_error() {
        for data in (0..(1u16 << DATA_BITS)).step_by(37) {
            let cw = encode(data);
            for bit in 0..CODE_BITS {
                let corrupted = cw ^ (1 << bit);
                match decode(corrupted) {
                    Decoded::Corrected(d) => assert_eq!(d, data),
                    Decoded::Clean(_) => panic!("flip at {bit} not noticed"),
                    Decoded::Uncorrectable => panic!("flip at {bit} uncorrectable"),
                }
            }
        }
    }

    #[test]
    fn double_errors_never_silently_wrong_data_or_detected() {
        // A Hamming distance-4-ish shortened code: double errors must not
        // decode to the *original* as Clean; they either get detected or
        // miscorrected to some other word — but never accepted unchanged.
        let data = 0b10_1100_1101;
        let cw = encode(data);
        for a in 0..CODE_BITS {
            for b in (a + 1)..CODE_BITS {
                let corrupted = cw ^ (1 << a) ^ (1 << b);
                match decode(corrupted) {
                    Decoded::Clean(d) => assert_ne!(d, data, "double error invisible"),
                    Decoded::Corrected(_) | Decoded::Uncorrectable => {}
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "exceeds 10 bits")]
    fn encode_rejects_wide_data() {
        let _ = encode(1 << 10);
    }

    #[test]
    fn byte_round_trip() {
        let payload = b"DM5 payload goes through FEC";
        let words = encode_bytes(payload);
        assert_eq!(words.len(), (payload.len() * 8).div_ceil(10));
        let back = decode_bytes(&words, payload.len()).unwrap();
        assert_eq!(back, payload);
    }

    #[test]
    fn byte_round_trip_with_correctable_noise() {
        let payload = b"noise resistant";
        let mut words = encode_bytes(payload);
        for w in words.iter_mut() {
            *w ^= 1 << 7; // one flip per codeword: all correctable
        }
        let back = decode_bytes(&words, payload.len()).unwrap();
        assert_eq!(back, payload);
    }

    #[test]
    fn byte_decode_corrupted_by_burst() {
        // A 3-bit burst exceeds the code's correction power: the decoder
        // either detects it (None) or miscorrects to *different* data —
        // it must never return the original payload.
        let payload = b"burst victim";
        let mut words = encode_bytes(payload);
        words[0] ^= 0b111; // 3-bit burst in one codeword
        match decode_bytes(&words, payload.len()) {
            None => {}
            Some(decoded) => assert_ne!(decoded, payload),
        }
    }

    #[test]
    fn byte_decode_rejects_short_input() {
        assert!(decode_bytes(&[], 4).is_none());
    }

    #[test]
    fn repetition_majority() {
        assert!(repetition_decode([true, true, false]));
        assert!(repetition_decode([true, true, true]));
        assert!(!repetition_decode([true, false, false]));
        assert!(!repetition_decode([false, false, false]));
    }

    #[test]
    fn repetition_error_probability_profile() {
        assert_eq!(repetition_error_probability(0.0), 0.0);
        assert!((repetition_error_probability(1.0) - 1.0).abs() < 1e-12);
        // small p: ~3p^2
        let p = 1e-3;
        assert!((repetition_error_probability(p) - 3e-6).abs() < 1e-8);
        // must be an improvement below p=0.5
        assert!(repetition_error_probability(0.1) < 0.1);
    }

    #[test]
    fn hamming_block_probability_profile() {
        assert_eq!(hamming_block_success_probability(0.0), 1.0);
        assert!(hamming_block_success_probability(1.0) < 1e-9);
        // FEC beats uncoded for 15 bits at moderate BER
        let p = 0.01;
        let uncoded = (1.0f64 - p).powi(15);
        assert!(hamming_block_success_probability(p) > uncoded);
    }
}
