//! CRC-16/CCITT payload check.
//!
//! The Bluetooth baseband appends a 16-bit CRC (polynomial `0x1021`,
//! initial value derived from the device's UAP; we use `0x0000` as the
//! paper's analysis is UAP-independent) to every ACL payload regardless
//! of payload length. The paper (citing Paulitsch et al., DSN'05) points
//! out the weakness exploited by correlated channel errors: a CRC-16
//! detects *all* error bursts of length ≤ 16 bits, but longer bursts
//! escape with probability ≈ 2⁻¹⁶ — the origin of the observed
//! `Data mismatch` user failures.

/// The CCITT generator polynomial x¹⁶ + x¹² + x⁵ + 1.
pub const POLY: u16 = 0x1021;

/// 256-entry table: `TABLE[b]` is the CRC register after clocking byte
/// `b` through a zero register — one table lookup then replaces eight
/// conditional shift-xor steps per input byte.
static TABLE: [u16; 256] = build_table();

const fn build_table() -> [u16; 256] {
    let mut table = [0u16; 256];
    let mut b = 0usize;
    while b < 256 {
        let mut crc = (b as u16) << 8;
        let mut i = 0;
        while i < 8 {
            crc = if crc & 0x8000 != 0 {
                (crc << 1) ^ POLY
            } else {
                crc << 1
            };
            i += 1;
        }
        table[b] = crc;
        b += 1;
    }
    table
}

/// Computes the CRC-16/CCITT over `data` (MSB-first, init 0).
///
/// ```
/// use btpan_baseband::crc::crc16;
/// assert_eq!(crc16(b"123456789"), 0x31C3);
/// ```
pub fn crc16(data: &[u8]) -> u16 {
    crc16_with(0x0000, data)
}

/// Computes the CRC-16/CCITT continuing from `init` (for incremental
/// checks over segmented payloads). Table-driven; bit-for-bit equal to
/// [`crc16_bitwise_with`] (property-tested in `tests/properties.rs`).
pub fn crc16_with(init: u16, data: &[u8]) -> u16 {
    let mut crc = init;
    for &byte in data {
        crc = (crc << 8) ^ TABLE[usize::from((crc >> 8) as u8 ^ byte)];
    }
    crc
}

/// The original bitwise shift-register implementation, retained as the
/// reference the table implementation is proved equivalent to.
pub fn crc16_bitwise_with(init: u16, data: &[u8]) -> u16 {
    let mut crc = init;
    for &byte in data {
        crc ^= u16::from(byte) << 8;
        for _ in 0..8 {
            if crc & 0x8000 != 0 {
                crc = (crc << 1) ^ POLY;
            } else {
                crc <<= 1;
            }
        }
    }
    crc
}

/// Appends the CRC to a payload, producing the on-air payload body.
pub fn append_crc(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 2);
    append_crc_into(payload, &mut out);
    out
}

/// Appends `payload ++ crc` into `out` (cleared first), reusing the
/// caller's allocation on the hot path.
pub fn append_crc_into(payload: &[u8], out: &mut Vec<u8>) {
    out.clear();
    out.reserve(payload.len() + 2);
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc16(payload).to_be_bytes());
}

/// Checks a received `payload ++ crc` body; returns the payload slice if
/// the CRC matches.
pub fn check_crc(body: &[u8]) -> Option<&[u8]> {
    if body.len() < 2 {
        return None;
    }
    let (payload, crc_bytes) = body.split_at(body.len() - 2);
    let received = u16::from_be_bytes([crc_bytes[0], crc_bytes[1]]);
    (crc16(payload) == received).then_some(payload)
}

/// Probability that a corrupted payload escapes CRC detection, given the
/// length of the error burst in bits.
///
/// Exact CRC property: bursts of length ≤ 16 are always detected; a
/// burst of exactly 17 bits escapes with probability 2⁻¹⁵; longer
/// bursts escape with probability 2⁻¹⁶. (Standard results for a degree-16
/// generator with a nonzero constant term.)
pub fn undetected_probability(burst_bits: u32) -> f64 {
    match burst_bits {
        0 => 0.0,
        1..=16 => 0.0,
        17 => 1.0 / 32_768.0,
        _ => 1.0 / 65_536.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector() {
        // CRC-16/XMODEM check value for "123456789".
        assert_eq!(crc16(b"123456789"), 0x31C3);
        assert_eq!(crc16(b""), 0x0000);
        assert_eq!(crc16(b"A"), 0x58E5);
    }

    #[test]
    fn table_matches_bitwise_reference() {
        // Every single-byte input from every byte-boundary register state
        // reachable in one step, plus a pseudo-random sweep. The full
        // arbitrary-payload proof lives in tests/properties.rs.
        for b in 0..=255u8 {
            assert_eq!(crc16_with(0, &[b]), crc16_bitwise_with(0, &[b]));
        }
        let mut x = 0x243F_6A88_85A3_08D3u64;
        let mut buf = Vec::new();
        for round in 0..64 {
            buf.clear();
            for _ in 0..round * 3 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                buf.push(x as u8);
            }
            let init = (x >> 16) as u16;
            assert_eq!(crc16_with(init, &buf), crc16_bitwise_with(init, &buf));
        }
    }

    #[test]
    fn append_crc_into_reuses_buffer() {
        let mut buf = vec![0xFFu8; 64];
        append_crc_into(b"hello bluetooth", &mut buf);
        assert_eq!(buf, append_crc(b"hello bluetooth"));
        append_crc_into(b"", &mut buf);
        assert_eq!(buf, append_crc(b""));
    }

    #[test]
    fn append_then_check_round_trips() {
        let body = append_crc(b"hello bluetooth");
        assert_eq!(check_crc(&body), Some(b"hello bluetooth".as_ref()));
    }

    #[test]
    fn detects_single_bit_flips_everywhere() {
        let body = append_crc(b"payload under test");
        for byte in 0..body.len() {
            for bit in 0..8 {
                let mut corrupted = body.clone();
                corrupted[byte] ^= 1 << bit;
                assert!(
                    check_crc(&corrupted).is_none(),
                    "missed flip at byte {byte} bit {bit}"
                );
            }
        }
    }

    #[test]
    fn detects_all_short_bursts() {
        // Any burst of <= 16 bits must be detected.
        let body = append_crc(&[0u8; 32]);
        let total_bits = body.len() * 8;
        for burst_len in 1..=16usize {
            for start in 0..(total_bits - burst_len) {
                let mut corrupted = body.clone();
                // Flip the boundary bits of the burst (a burst of length L
                // has its first and last bit in error by definition).
                let mut offsets = vec![0];
                if burst_len > 1 {
                    offsets.push(burst_len - 1);
                }
                for &offset in &offsets {
                    let bit = start + offset;
                    corrupted[bit / 8] ^= 1 << (bit % 8);
                }
                assert!(
                    check_crc(&corrupted).is_none(),
                    "missed burst len {burst_len} at {start}"
                );
            }
        }
    }

    #[test]
    fn incremental_crc_matches_oneshot() {
        let data = b"segmented payload over l2cap";
        let whole = crc16(data);
        let (a, b) = data.split_at(10);
        let part = crc16_with(crc16(a), b);
        assert_eq!(whole, part);
    }

    #[test]
    fn check_rejects_truncated_body() {
        assert!(check_crc(&[]).is_none());
        assert!(check_crc(&[0x12]).is_none());
    }

    #[test]
    fn undetected_probability_profile() {
        assert_eq!(undetected_probability(0), 0.0);
        assert_eq!(undetected_probability(8), 0.0);
        assert_eq!(undetected_probability(16), 0.0);
        assert!(undetected_probability(17) > undetected_probability(18));
        assert!((undetected_probability(100) - 1.0 / 65536.0).abs() < 1e-12);
    }
}
