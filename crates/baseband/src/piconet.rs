//! Piconet membership and TDD slot allocation.
//!
//! A piconet has one master and up to seven *active* slaves, each holding
//! a 3-bit active member address (`AM_ADDR`). The master polls slaves in
//! a round-robin TDD schedule, so concurrently active ACL transfers share
//! the 1600 slots/s — the contention model the PAN testbed lives under
//! (the NAP `Giallo` is the master; the six PANUs are slaves).
//!
//! The PAN profile's *role switch* matters here: a PANU initiating a
//! connection is initially master and must hand the master role to the
//! NAP so the NAP can keep serving up to seven PANUs; the stack layer
//! drives that procedure, while this module enforces the invariant that
//! membership and addressing stay consistent.

use std::collections::BTreeMap;
use std::fmt;

/// Maximum number of active slaves (3-bit AM_ADDR, 0 reserved for
/// broadcast).
pub const MAX_ACTIVE_SLAVES: usize = 7;

/// A slave's 3-bit active member address (1–7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SlaveSlot(u8);

impl SlaveSlot {
    /// The raw AM_ADDR value (1–7).
    pub fn am_addr(self) -> u8 {
        self.0
    }
}

impl fmt::Display for SlaveSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AM_ADDR {}", self.0)
    }
}

/// Errors from piconet membership operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PiconetError {
    /// All seven active member addresses are taken.
    Full,
    /// The device is already an active member.
    AlreadyJoined,
    /// The referenced device is not a member.
    NotAMember,
}

impl fmt::Display for PiconetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PiconetError::Full => write!(f, "piconet already has 7 active slaves"),
            PiconetError::AlreadyJoined => write!(f, "device is already an active member"),
            PiconetError::NotAMember => write!(f, "device is not a piconet member"),
        }
    }
}

impl std::error::Error for PiconetError {}

/// A piconet: one master plus up to seven addressed active slaves.
///
/// Devices are identified by a caller-chosen `u64` (e.g. the node id of
/// the testbed).
#[derive(Debug, Clone)]
pub struct Piconet {
    master: u64,
    /// AM_ADDR → device id.
    slaves: BTreeMap<u8, u64>,
    /// Devices with a transfer in flight (affects slot shares).
    active_transfers: BTreeMap<u64, ()>,
}

impl Piconet {
    /// Creates a piconet mastered by `master`.
    pub fn new(master: u64) -> Self {
        Piconet {
            master,
            slaves: BTreeMap::new(),
            active_transfers: BTreeMap::new(),
        }
    }

    /// The current master's device id.
    pub fn master(&self) -> u64 {
        self.master
    }

    /// Number of active slaves.
    pub fn slave_count(&self) -> usize {
        self.slaves.len()
    }

    /// True if `device` is an active slave.
    pub fn is_slave(&self, device: u64) -> bool {
        self.slaves.values().any(|&d| d == device)
    }

    /// Admits a slave, assigning the lowest free AM_ADDR.
    ///
    /// # Errors
    ///
    /// Fails when the piconet is full or the device already joined.
    pub fn join(&mut self, device: u64) -> Result<SlaveSlot, PiconetError> {
        if self.is_slave(device) || device == self.master {
            return Err(PiconetError::AlreadyJoined);
        }
        let free = (1..=MAX_ACTIVE_SLAVES as u8).find(|a| !self.slaves.contains_key(a));
        match free {
            Some(addr) => {
                self.slaves.insert(addr, device);
                Ok(SlaveSlot(addr))
            }
            None => Err(PiconetError::Full),
        }
    }

    /// Removes a slave (disconnect or supervision timeout).
    ///
    /// # Errors
    ///
    /// Fails when the device is not a member.
    pub fn leave(&mut self, device: u64) -> Result<(), PiconetError> {
        let addr = self
            .slaves
            .iter()
            .find_map(|(&a, &d)| (d == device).then_some(a))
            .ok_or(PiconetError::NotAMember)?;
        self.slaves.remove(&addr);
        self.active_transfers.remove(&device);
        Ok(())
    }

    /// Performs the PAN-profile master/slave switch: `new_master` (a
    /// current slave) becomes the master and the old master becomes a
    /// slave keeping the vacated AM_ADDR.
    ///
    /// # Errors
    ///
    /// Fails when `new_master` is not an active slave.
    pub fn switch_role(&mut self, new_master: u64) -> Result<(), PiconetError> {
        let addr = self
            .slaves
            .iter()
            .find_map(|(&a, &d)| (d == new_master).then_some(a))
            .ok_or(PiconetError::NotAMember)?;
        let old_master = self.master;
        self.slaves.remove(&addr);
        self.slaves.insert(addr, old_master);
        self.master = new_master;
        Ok(())
    }

    /// Marks a slave's transfer as started (it now competes for slots).
    ///
    /// # Errors
    ///
    /// Fails when the device is not a member.
    pub fn begin_transfer(&mut self, device: u64) -> Result<(), PiconetError> {
        if !self.is_slave(device) {
            return Err(PiconetError::NotAMember);
        }
        self.active_transfers.insert(device, ());
        Ok(())
    }

    /// Marks a slave's transfer as finished.
    pub fn end_transfer(&mut self, device: u64) {
        self.active_transfers.remove(&device);
    }

    /// Number of transfers currently competing for slots.
    pub fn active_transfer_count(&self) -> usize {
        self.active_transfers.len()
    }

    /// The TDD slot share granted to `device` for a new or ongoing
    /// transfer: `1 / max(1, concurrent transfers including this one)`.
    pub fn slot_share_for(&self, device: u64) -> f64 {
        let mut n = self.active_transfer_count();
        if !self.active_transfers.contains_key(&device) {
            n += 1;
        }
        1.0 / n.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_assigns_sequential_addresses() {
        let mut p = Piconet::new(100);
        let s1 = p.join(1).unwrap();
        let s2 = p.join(2).unwrap();
        assert_eq!(s1.am_addr(), 1);
        assert_eq!(s2.am_addr(), 2);
        assert_eq!(p.slave_count(), 2);
    }

    #[test]
    fn eighth_slave_rejected() {
        let mut p = Piconet::new(100);
        for d in 1..=7 {
            p.join(d).unwrap();
        }
        assert_eq!(p.join(8), Err(PiconetError::Full));
        assert_eq!(p.slave_count(), 7);
    }

    #[test]
    fn rejoin_rejected() {
        let mut p = Piconet::new(100);
        p.join(1).unwrap();
        assert_eq!(p.join(1), Err(PiconetError::AlreadyJoined));
        assert_eq!(p.join(100), Err(PiconetError::AlreadyJoined));
    }

    #[test]
    fn leave_frees_address_for_reuse() {
        let mut p = Piconet::new(100);
        p.join(1).unwrap();
        p.join(2).unwrap();
        p.leave(1).unwrap();
        assert!(!p.is_slave(1));
        let s = p.join(3).unwrap();
        assert_eq!(s.am_addr(), 1, "freed AM_ADDR reused");
        assert_eq!(p.leave(42), Err(PiconetError::NotAMember));
    }

    #[test]
    fn role_switch_swaps_master_and_slave() {
        // PAN profile: PANU connects as master, then switches so the NAP
        // masters the piconet.
        let mut p = Piconet::new(7); // PANU currently master
        p.join(100).unwrap(); // NAP joined as slave
        p.switch_role(100).unwrap();
        assert_eq!(p.master(), 100);
        assert!(p.is_slave(7));
        assert_eq!(p.slave_count(), 1);
        assert_eq!(p.switch_role(999), Err(PiconetError::NotAMember));
    }

    #[test]
    fn slot_share_divides_among_active_transfers() {
        let mut p = Piconet::new(100);
        for d in 1..=4 {
            p.join(d).unwrap();
        }
        assert_eq!(p.slot_share_for(1), 1.0);
        p.begin_transfer(1).unwrap();
        assert_eq!(p.slot_share_for(1), 1.0);
        p.begin_transfer(2).unwrap();
        assert_eq!(p.slot_share_for(1), 0.5);
        // A third, not-yet-started transfer sees a 1/3 share.
        assert!((p.slot_share_for(3) - 1.0 / 3.0).abs() < 1e-12);
        p.end_transfer(1);
        assert_eq!(p.slot_share_for(2), 1.0);
    }

    #[test]
    fn transfer_bookkeeping_requires_membership() {
        let mut p = Piconet::new(100);
        assert_eq!(p.begin_transfer(5), Err(PiconetError::NotAMember));
        p.join(5).unwrap();
        p.begin_transfer(5).unwrap();
        p.leave(5).unwrap();
        assert_eq!(p.active_transfer_count(), 0, "leave clears transfers");
    }

    #[test]
    fn error_display() {
        assert!(PiconetError::Full.to_string().contains("7 active"));
        assert!(PiconetError::NotAMember.to_string().contains("not a"));
    }
}
