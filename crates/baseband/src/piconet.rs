//! Piconet membership and TDD slot allocation.
//!
//! A piconet has one master and up to seven *active* slaves, each holding
//! a 3-bit active member address (`AM_ADDR`). The master polls slaves in
//! a round-robin TDD schedule, so concurrently active ACL transfers share
//! the 1600 slots/s — the contention model the PAN testbed lives under
//! (the NAP `Giallo` is the master; the six PANUs are slaves).
//!
//! The PAN profile's *role switch* matters here: a PANU initiating a
//! connection is initially master and must hand the master role to the
//! NAP so the NAP can keep serving up to seven PANUs; the stack layer
//! drives that procedure, while this module enforces the invariant that
//! membership and addressing stay consistent.

use std::collections::BTreeMap;
use std::fmt;

/// Maximum number of active slaves (3-bit AM_ADDR, 0 reserved for
/// broadcast).
pub const MAX_ACTIVE_SLAVES: usize = 7;

/// A slave's 3-bit active member address (1–7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SlaveSlot(u8);

impl SlaveSlot {
    /// The raw AM_ADDR value (1–7).
    pub fn am_addr(self) -> u8 {
        self.0
    }
}

impl fmt::Display for SlaveSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AM_ADDR {}", self.0)
    }
}

/// Errors from piconet membership operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PiconetError {
    /// All seven active member addresses are taken.
    Full,
    /// The device is already an active member.
    AlreadyJoined,
    /// The referenced device is not a member.
    NotAMember,
}

impl fmt::Display for PiconetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PiconetError::Full => write!(f, "piconet already has 7 active slaves"),
            PiconetError::AlreadyJoined => write!(f, "device is already an active member"),
            PiconetError::NotAMember => write!(f, "device is not a piconet member"),
        }
    }
}

impl std::error::Error for PiconetError {}

/// A piconet: one master plus up to seven addressed active slaves.
///
/// Devices are identified by a caller-chosen `u64` (e.g. the node id of
/// the testbed).
#[derive(Debug, Clone)]
pub struct Piconet {
    master: u64,
    /// AM_ADDR → device id.
    slaves: BTreeMap<u8, u64>,
    /// Devices with a transfer in flight (affects slot shares).
    active_transfers: BTreeMap<u64, ()>,
}

impl Piconet {
    /// Creates a piconet mastered by `master`.
    pub fn new(master: u64) -> Self {
        Piconet {
            master,
            slaves: BTreeMap::new(),
            active_transfers: BTreeMap::new(),
        }
    }

    /// The current master's device id.
    pub fn master(&self) -> u64 {
        self.master
    }

    /// Number of active slaves.
    pub fn slave_count(&self) -> usize {
        self.slaves.len()
    }

    /// True if `device` is an active slave.
    pub fn is_slave(&self, device: u64) -> bool {
        self.slaves.values().any(|&d| d == device)
    }

    /// Admits a slave, assigning the lowest free AM_ADDR.
    ///
    /// # Errors
    ///
    /// Fails when the piconet is full or the device already joined.
    pub fn join(&mut self, device: u64) -> Result<SlaveSlot, PiconetError> {
        if self.is_slave(device) || device == self.master {
            return Err(PiconetError::AlreadyJoined);
        }
        let free = (1..=MAX_ACTIVE_SLAVES as u8).find(|a| !self.slaves.contains_key(a));
        match free {
            Some(addr) => {
                self.slaves.insert(addr, device);
                Ok(SlaveSlot(addr))
            }
            None => Err(PiconetError::Full),
        }
    }

    /// Removes a slave (disconnect or supervision timeout).
    ///
    /// # Errors
    ///
    /// Fails when the device is not a member.
    pub fn leave(&mut self, device: u64) -> Result<(), PiconetError> {
        let addr = self
            .slaves
            .iter()
            .find_map(|(&a, &d)| (d == device).then_some(a))
            .ok_or(PiconetError::NotAMember)?;
        self.slaves.remove(&addr);
        self.active_transfers.remove(&device);
        Ok(())
    }

    /// Performs the PAN-profile master/slave switch: `new_master` (a
    /// current slave) becomes the master and the old master becomes a
    /// slave keeping the vacated AM_ADDR.
    ///
    /// # Errors
    ///
    /// Fails when `new_master` is not an active slave.
    pub fn switch_role(&mut self, new_master: u64) -> Result<(), PiconetError> {
        let addr = self
            .slaves
            .iter()
            .find_map(|(&a, &d)| (d == new_master).then_some(a))
            .ok_or(PiconetError::NotAMember)?;
        let old_master = self.master;
        self.slaves.remove(&addr);
        self.slaves.insert(addr, old_master);
        self.master = new_master;
        Ok(())
    }

    /// Marks a slave's transfer as started (it now competes for slots).
    ///
    /// # Errors
    ///
    /// Fails when the device is not a member.
    pub fn begin_transfer(&mut self, device: u64) -> Result<(), PiconetError> {
        if !self.is_slave(device) {
            return Err(PiconetError::NotAMember);
        }
        self.active_transfers.insert(device, ());
        Ok(())
    }

    /// Marks a slave's transfer as finished.
    pub fn end_transfer(&mut self, device: u64) {
        self.active_transfers.remove(&device);
    }

    /// Number of transfers currently competing for slots.
    pub fn active_transfer_count(&self) -> usize {
        self.active_transfers.len()
    }

    /// The TDD slot share granted to `device` for a new or ongoing
    /// transfer: `1 / max(1, concurrent transfers including this one)`.
    pub fn slot_share_for(&self, device: u64) -> f64 {
        let mut n = self.active_transfer_count();
        if !self.active_transfers.contains_key(&device) {
            n += 1;
        }
        1.0 / n.max(1) as f64
    }
}

/// A scatternet: several piconets sharing **bridge** devices.
///
/// A bridge is a slave in more than one piconet (or a master in one and
/// a slave elsewhere). It cannot listen to two hop sequences at once, so
/// it time-shares: it spends `1/k` of its slots in each of its `k`
/// piconets, resynchronizing its clock and hop phase on every switch.
/// That time-share is exactly what a campaign needs to inflate a bridge
/// node's air time, and the per-piconet
/// [`HopSequence`](crate::hop::HopSequence)s expose which channel the
/// bridge is tuned to in any slot.
#[derive(Debug, Clone, Default)]
pub struct Scatternet {
    piconets: Vec<Piconet>,
    hops: Vec<crate::hop::HopSequence>,
    /// Device id → indices of the piconets it belongs to (master or
    /// slave), in join order.
    membership: BTreeMap<u64, Vec<usize>>,
    /// Slots a bridge dwells in one piconet before switching (the
    /// inter-piconet scheduling epoch).
    epoch_slots: u64,
}

impl Scatternet {
    /// Default bridge dwell time: 800 slots (0.5 s) per piconet visit.
    pub const DEFAULT_EPOCH_SLOTS: u64 = 800;

    /// Creates an empty scatternet with the default dwell epoch.
    pub fn new() -> Self {
        Scatternet {
            piconets: Vec::new(),
            hops: Vec::new(),
            membership: BTreeMap::new(),
            epoch_slots: Self::DEFAULT_EPOCH_SLOTS,
        }
    }

    /// Adds a piconet mastered by `master`, hopping on `master`'s clock
    /// (the master address seeds the hop sequence). Returns its index.
    pub fn add_piconet(&mut self, master: u64) -> usize {
        let idx = self.piconets.len();
        self.piconets.push(Piconet::new(master));
        self.hops.push(crate::hop::HopSequence::new(master));
        self.membership.entry(master).or_default().push(idx);
        idx
    }

    /// Joins `device` to piconet `pic` as an active slave. A device
    /// already in another piconet becomes a bridge.
    ///
    /// # Errors
    ///
    /// Fails like [`Piconet::join`]: full piconet or double join.
    ///
    /// # Panics
    ///
    /// Panics if `pic` is out of range.
    pub fn join(&mut self, pic: usize, device: u64) -> Result<SlaveSlot, PiconetError> {
        let slot = self.piconets[pic].join(device)?;
        self.membership.entry(device).or_default().push(pic);
        Ok(slot)
    }

    /// Number of piconets.
    pub fn piconet_count(&self) -> usize {
        self.piconets.len()
    }

    /// The piconet at `index`.
    pub fn piconet(&self, index: usize) -> &Piconet {
        &self.piconets[index]
    }

    /// The hop sequence of piconet `index`.
    pub fn hop(&self, index: usize) -> &crate::hop::HopSequence {
        &self.hops[index]
    }

    /// Indices of the piconets `device` belongs to (empty if unknown).
    pub fn piconets_of(&self, device: u64) -> &[usize] {
        self.membership
            .get(&device)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// True when `device` is a member of more than one piconet.
    pub fn is_bridge(&self, device: u64) -> bool {
        self.piconets_of(device).len() > 1
    }

    /// Number of bridge devices.
    pub fn bridge_count(&self) -> usize {
        self.membership.values().filter(|p| p.len() > 1).count()
    }

    /// The fraction of slots `device` can spend in any one of its
    /// piconets: `1/k` for a member of `k` piconets, `1.0` for plain
    /// members and unknown devices (they have nowhere else to be).
    pub fn time_share(&self, device: u64) -> f64 {
        let k = self.piconets_of(device).len();
        if k <= 1 {
            1.0
        } else {
            1.0 / k as f64
        }
    }

    /// Which of `device`'s piconets it serves during `slot`, by dwell
    /// epoch round-robin (`None` for devices in no piconet).
    pub fn serving_piconet(&self, device: u64, slot: u64) -> Option<usize> {
        let pics = self.piconets_of(device);
        match pics.len() {
            0 => None,
            1 => Some(pics[0]),
            k => Some(pics[(slot / self.epoch_slots) as usize % k]),
        }
    }

    /// The hop channel `device` is tuned to in `slot`: the serving
    /// piconet's hop sequence evaluated at that slot.
    pub fn channel_for(&self, device: u64, slot: u64) -> Option<u8> {
        self.serving_piconet(device, slot)
            .map(|p| self.hops[p].channel(slot))
    }
}

#[cfg(test)]
mod scatternet_tests {
    use super::*;

    fn three_piconet_bridge() -> Scatternet {
        let mut s = Scatternet::new();
        let p0 = s.add_piconet(100);
        let p1 = s.add_piconet(200);
        let p2 = s.add_piconet(300);
        s.join(p0, 1).unwrap();
        s.join(p0, 2).unwrap();
        s.join(p1, 11).unwrap();
        s.join(p2, 21).unwrap();
        // Device 1 bridges into the other two piconets.
        s.join(p1, 1).unwrap();
        s.join(p2, 1).unwrap();
        s
    }

    #[test]
    fn bridge_membership_and_time_share() {
        let s = three_piconet_bridge();
        assert_eq!(s.piconet_count(), 3);
        assert!(s.is_bridge(1));
        assert!(!s.is_bridge(2));
        assert_eq!(s.bridge_count(), 1);
        assert_eq!(s.piconets_of(1), &[0, 1, 2]);
        assert!((s.time_share(1) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.time_share(2), 1.0);
        assert_eq!(s.time_share(9999), 1.0);
    }

    #[test]
    fn bridge_time_shares_hop_sequences() {
        let s = three_piconet_bridge();
        // Over consecutive dwell epochs the bridge cycles its piconets.
        let e = Scatternet::DEFAULT_EPOCH_SLOTS;
        assert_eq!(s.serving_piconet(1, 0), Some(0));
        assert_eq!(s.serving_piconet(1, e), Some(1));
        assert_eq!(s.serving_piconet(1, 2 * e), Some(2));
        assert_eq!(s.serving_piconet(1, 3 * e), Some(0));
        // A plain member never leaves its piconet.
        assert_eq!(s.serving_piconet(2, 5 * e), Some(0));
        assert_eq!(s.serving_piconet(9999, 0), None);
        // The channel comes from the serving piconet's own sequence.
        let slot = e; // bridge serving piconet 1
        assert_eq!(s.channel_for(1, slot), Some(s.hop(1).channel(slot)));
        // Distinct masters seed distinct hop sequences: the bridge must
        // retune somewhere over an epoch of slots.
        let retunes = (0..e).any(|k| s.hop(0).channel(k) != s.hop(1).channel(k));
        assert!(retunes, "hop sequences indistinguishable");
    }

    #[test]
    fn scatternet_enforces_per_piconet_capacity() {
        let mut s = Scatternet::new();
        let p0 = s.add_piconet(100);
        for d in 1..=7 {
            s.join(p0, d).unwrap();
        }
        assert_eq!(s.join(p0, 8), Err(PiconetError::Full));
        // The same device cannot join the same piconet twice, but can
        // join a second piconet.
        let p1 = s.add_piconet(200);
        assert_eq!(s.join(p1, 7), Ok(SlaveSlot(1)));
        assert_eq!(s.join(p1, 7), Err(PiconetError::AlreadyJoined));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_assigns_sequential_addresses() {
        let mut p = Piconet::new(100);
        let s1 = p.join(1).unwrap();
        let s2 = p.join(2).unwrap();
        assert_eq!(s1.am_addr(), 1);
        assert_eq!(s2.am_addr(), 2);
        assert_eq!(p.slave_count(), 2);
    }

    #[test]
    fn eighth_slave_rejected() {
        let mut p = Piconet::new(100);
        for d in 1..=7 {
            p.join(d).unwrap();
        }
        assert_eq!(p.join(8), Err(PiconetError::Full));
        assert_eq!(p.slave_count(), 7);
    }

    #[test]
    fn rejoin_rejected() {
        let mut p = Piconet::new(100);
        p.join(1).unwrap();
        assert_eq!(p.join(1), Err(PiconetError::AlreadyJoined));
        assert_eq!(p.join(100), Err(PiconetError::AlreadyJoined));
    }

    #[test]
    fn leave_frees_address_for_reuse() {
        let mut p = Piconet::new(100);
        p.join(1).unwrap();
        p.join(2).unwrap();
        p.leave(1).unwrap();
        assert!(!p.is_slave(1));
        let s = p.join(3).unwrap();
        assert_eq!(s.am_addr(), 1, "freed AM_ADDR reused");
        assert_eq!(p.leave(42), Err(PiconetError::NotAMember));
    }

    #[test]
    fn role_switch_swaps_master_and_slave() {
        // PAN profile: PANU connects as master, then switches so the NAP
        // masters the piconet.
        let mut p = Piconet::new(7); // PANU currently master
        p.join(100).unwrap(); // NAP joined as slave
        p.switch_role(100).unwrap();
        assert_eq!(p.master(), 100);
        assert!(p.is_slave(7));
        assert_eq!(p.slave_count(), 1);
        assert_eq!(p.switch_role(999), Err(PiconetError::NotAMember));
    }

    #[test]
    fn slot_share_divides_among_active_transfers() {
        let mut p = Piconet::new(100);
        for d in 1..=4 {
            p.join(d).unwrap();
        }
        assert_eq!(p.slot_share_for(1), 1.0);
        p.begin_transfer(1).unwrap();
        assert_eq!(p.slot_share_for(1), 1.0);
        p.begin_transfer(2).unwrap();
        assert_eq!(p.slot_share_for(1), 0.5);
        // A third, not-yet-started transfer sees a 1/3 share.
        assert!((p.slot_share_for(3) - 1.0 / 3.0).abs() < 1e-12);
        p.end_transfer(1);
        assert_eq!(p.slot_share_for(2), 1.0);
    }

    #[test]
    fn transfer_bookkeeping_requires_membership() {
        let mut p = Piconet::new(100);
        assert_eq!(p.begin_transfer(5), Err(PiconetError::NotAMember));
        p.join(5).unwrap();
        p.begin_transfer(5).unwrap();
        p.leave(5).unwrap();
        assert_eq!(p.active_transfer_count(), 0, "leave clears transfers");
    }

    #[test]
    fn error_display() {
        assert!(PiconetError::Full.to_string().contains("7 active"));
        assert!(PiconetError::NotAMember.to_string().contains("not a"));
    }
}
