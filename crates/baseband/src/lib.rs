//! # btpan-baseband
//!
//! Slot-level simulation of the Bluetooth 1.1 baseband layer: the
//! physical substrate the DSN'06 Bluetooth-PAN failure study ran on.
//!
//! The paper's data-transfer failures (packet loss, data mismatch) are a
//! direct consequence of baseband behaviour under correlated channel
//! errors — CRC-16 and FEC assume memoryless channels, while the 2.4 GHz
//! ISM band produces bursts (multi-path fading, interference). This crate
//! reproduces that mechanism with:
//!
//! * [`packet`] — the six ACL packet types (DM1/3/5, DH1/3/5) with the
//!   spec's slot counts and payload capacities;
//! * [`crc`] — the real CRC-16/CCITT used by the baseband payload check;
//! * [`fec`] — the shortened Hamming(15,10) 2/3-rate FEC of DM packets,
//!   plus the 1/3-rate repetition code protecting packet headers;
//! * [`channel`] — composable channel models: Gilbert–Elliott burst
//!   process, distance path loss, ISM interferers tied to the hop
//!   sequence;
//! * [`hop`] — the 79-channel pseudo-random frequency hop sequence;
//! * [`link`] — an ACL link with ARQ and a retransmission/flush limit,
//!   simulated slot by slot;
//! * [`piconet`] — master/slave TDD slot scheduling with up to seven
//!   active slaves sharing the channel.
//!
//! Figure 3a of the paper (packet-loss share by packet type: single-slot
//! and DMx packets lose more) *emerges* from this crate rather than being
//! scripted — see `btpan-bench`'s `repro_fig3a`.

pub mod channel;
pub mod crc;
pub mod fec;
pub mod hop;
pub mod link;
pub mod packet;
pub mod piconet;

pub use channel::{
    ChannelModel, ChannelState, CompositeChannel, GilbertElliott, Interferer, PathLoss,
};
pub use hop::HopSequence;
pub use link::{AclLink, AttemptResult, LinkConfig, TransferOutcome};
pub use packet::PacketType;
pub use piconet::{Piconet, PiconetError, Scatternet, SlaveSlot};
