//! Composable radio-channel models.
//!
//! The paper attributes data-transfer failures to *correlated* channel
//! errors: "the weakness of integrity checks is the assumption of having
//! memoryless channels with uncorrelated errors from bit to bit. In our
//! case, correlated errors (e.g. bursts) can occur due to the nature of
//! the wireless media, affected by multi-path fading and electromagnetic
//! interferences." We model exactly those three ingredients:
//!
//! * [`GilbertElliott`] — a two-state Markov burst process (multi-path
//!   fading): a *good* state with low bit-error rate and a *bad* state
//!   with a high one, with per-slot transition probabilities that give
//!   burst lengths of tens of slots (tens of ms);
//! * [`PathLoss`] — a distance-dependent BER floor. Class 2 devices at
//!   ≤ 10 m show little distance sensitivity (the paper measured
//!   33.3/37.1/29.6 % of failures at 0.5/5/7 m), so the slope is mild;
//! * [`Interferer`] — an on/off renewal source (e.g. 802.11 traffic or a
//!   microwave oven) occupying a contiguous sub-band of the 79 channels;
//!   it raises BER only on slots whose hop lands inside the band;
//! * [`CompositeChannel`] — combines the above into the per-slot BER the
//!   link simulation consumes.

use btpan_sim::prelude::*;

/// Whether the burst process is currently in its good or bad state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelState {
    /// Low-BER state.
    Good,
    /// High-BER (burst) state.
    Bad,
}

/// A per-slot channel model producing bit-error rates.
///
/// Implementations are advanced exactly once per slot in slot order; the
/// returned value is the bit-error probability for bits on air in that
/// slot on hop channel `ch`.
pub trait ChannelModel {
    /// BER for the slot with absolute index `slot` on RF channel `ch`,
    /// advancing internal state.
    fn slot_ber(&mut self, slot: u64, ch: u8, rng: &mut SimRng) -> f64;

    /// The current burst state, if the model has one.
    fn state(&self) -> ChannelState {
        ChannelState::Good
    }

    /// Advances the model through `n` idle slots (no packet on air, so
    /// the per-slot BERs are unobserved) starting at absolute slot
    /// `start_slot`.
    ///
    /// The default walks slot by slot, exactly like `n` calls to
    /// [`ChannelModel::slot_ber`]. Implementations override this with a
    /// per-dwell fast path; the contract is that the post-span state is
    /// drawn from the **same distribution** as the slot-by-slot walk —
    /// and is **bit-identical** to it for models whose idle evolution
    /// consumes no randomness ([`MemorylessChannel`], [`PathLoss`]) or
    /// whose draws happen only at dwell boundaries ([`Interferer`]).
    /// [`GilbertElliott`] (and hence [`CompositeChannel`]) samples dwell
    /// lengths geometrically instead of flipping a coin per slot, so it
    /// consumes fewer draws: distribution-exact, not stream-identical.
    ///
    /// Idle evolution must not depend on the hop channel — for every
    /// model here the hop only selects which slots an interferer *hits*,
    /// never how its state advances.
    fn advance_idle(&mut self, start_slot: u64, n: u64, rng: &mut SimRng) {
        for i in 0..n {
            let _ = self.slot_ber(start_slot + i, 0, rng);
        }
    }
}

/// Two-state Gilbert–Elliott burst-error process.
#[derive(Debug, Clone)]
pub struct GilbertElliott {
    state: ChannelState,
    /// P(good → bad) per slot.
    p_gb: f64,
    /// P(bad → good) per slot.
    p_bg: f64,
    ber_good: f64,
    ber_bad: f64,
}

impl GilbertElliott {
    /// Creates a burst process.
    ///
    /// `p_gb`/`p_bg` are per-slot transition probabilities; `ber_good`
    /// and `ber_bad` the BER in each state.
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `[0, 1]`.
    pub fn new(p_gb: f64, p_bg: f64, ber_good: f64, ber_bad: f64) -> Self {
        for (name, p) in [
            ("p_gb", p_gb),
            ("p_bg", p_bg),
            ("ber_good", ber_good),
            ("ber_bad", ber_bad),
        ] {
            assert!((0.0..=1.0).contains(&p), "{name} outside [0,1]");
        }
        GilbertElliott {
            state: ChannelState::Good,
            p_gb,
            p_bg,
            ber_good,
            ber_bad,
        }
    }

    /// Default calibration: mean burst every ~45 s of slot time, mean
    /// burst length ≈ 40 slots (25 ms), BER 5·10⁻⁶ good / 3·10⁻² bad.
    ///
    /// These figures put the per-payload drop probability in the range
    /// that reproduces the paper's packet-loss share (≈ 34 % of user
    /// failures) under the Random WL.
    pub fn typical() -> Self {
        GilbertElliott::new(1.4e-5, 0.025, 5e-6, 3e-2)
    }

    /// Stationary probability of being in the bad state.
    pub fn stationary_bad(&self) -> f64 {
        if self.p_gb + self.p_bg == 0.0 {
            0.0
        } else {
            self.p_gb / (self.p_gb + self.p_bg)
        }
    }

    /// Mean burst (bad-state dwell) length in slots.
    pub fn mean_burst_slots(&self) -> f64 {
        if self.p_bg == 0.0 {
            f64::INFINITY
        } else {
            1.0 / self.p_bg
        }
    }
}

impl ChannelModel for GilbertElliott {
    fn slot_ber(&mut self, _slot: u64, _ch: u8, rng: &mut SimRng) -> f64 {
        let ber = match self.state {
            ChannelState::Good => self.ber_good,
            ChannelState::Bad => self.ber_bad,
        };
        self.state = match self.state {
            ChannelState::Good if rng.chance(self.p_gb) => ChannelState::Bad,
            ChannelState::Bad if rng.chance(self.p_bg) => ChannelState::Good,
            s => s,
        };
        ber
    }

    fn state(&self) -> ChannelState {
        self.state
    }

    /// O(dwell transitions) instead of O(slots): samples geometric dwell
    /// lengths rather than flipping a coin per slot. Because dwells of a
    /// two-state Markov chain are exactly geometric — and the residual
    /// dwell past the span end is memoryless — the end-of-span state
    /// (and all subsequent evolution) has exactly the slot-by-slot
    /// distribution. Consumes one draw per completed dwell instead of
    /// one per slot, so the raw RNG stream differs: distribution-exact,
    /// not stream-identical.
    fn advance_idle(&mut self, _start_slot: u64, n: u64, rng: &mut SimRng) {
        let mut left = n;
        while left > 0 {
            let p_flip = match self.state {
                ChannelState::Good => self.p_gb,
                ChannelState::Bad => self.p_bg,
            };
            if p_flip <= 0.0 {
                // Absorbing state: the per-slot walk never flips (and
                // draws nothing either).
                return;
            }
            let dwell = if p_flip >= 1.0 {
                let p_back = match self.state {
                    ChannelState::Good => self.p_bg,
                    ChannelState::Bad => self.p_gb,
                };
                if p_back >= 1.0 {
                    // Both states flip deterministically: pure
                    // alternation for the rest of the span, no draws.
                    if left % 2 == 1 {
                        self.state = match self.state {
                            ChannelState::Good => ChannelState::Bad,
                            ChannelState::Bad => ChannelState::Good,
                        };
                    }
                    return;
                }
                1 // deterministic flip each slot, no draw
            } else {
                // Slots until the flip: 1 + geometric failures.
                Geometric::new(p_flip)
                    .expect("p_flip in (0,1)")
                    .sample(rng)
                    .saturating_add(1)
            };
            if dwell > left {
                return;
            }
            left -= dwell;
            self.state = match self.state {
                ChannelState::Good => ChannelState::Bad,
                ChannelState::Bad => ChannelState::Good,
            };
        }
    }
}

/// Distance-dependent BER floor for Class 2 radios.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathLoss {
    distance_m: f64,
}

impl PathLoss {
    /// Maximum operating distance of a Class 2 device.
    pub const CLASS2_RANGE_M: f64 = 10.0;

    /// Creates a path-loss model for a link of the given distance.
    ///
    /// # Panics
    ///
    /// Panics if the distance is negative or not finite.
    pub fn new(distance_m: f64) -> Self {
        assert!(
            distance_m.is_finite() && distance_m >= 0.0,
            "invalid distance"
        );
        PathLoss { distance_m }
    }

    /// The configured distance in metres.
    pub fn distance_m(&self) -> f64 {
        self.distance_m
    }

    /// The BER floor contributed by free-space loss at this distance.
    ///
    /// Within Class 2 range the effect is mild and saturating — chosen so
    /// that 0.5 m vs 7 m changes failure shares by only a few percent,
    /// matching the paper's distance-insensitivity finding.
    pub fn ber_floor(&self) -> f64 {
        let norm = (self.distance_m / Self::CLASS2_RANGE_M).min(2.0);
        2e-6 * norm * norm
    }
}

impl ChannelModel for PathLoss {
    fn slot_ber(&mut self, _slot: u64, _ch: u8, _rng: &mut SimRng) -> f64 {
        self.ber_floor()
    }

    /// Stateless and RNG-free: skipping idle slots is an exact no-op.
    fn advance_idle(&mut self, _start_slot: u64, _n: u64, _rng: &mut SimRng) {}
}

/// An on/off interference source occupying a contiguous sub-band.
///
/// While *on*, slots whose hop channel falls inside
/// `[center − width/2, center + width/2]` suffer `ber_hit`; other slots
/// are unaffected. On/off dwell times are exponential.
#[derive(Debug, Clone)]
pub struct Interferer {
    center: u8,
    half_width: u8,
    ber_hit: f64,
    on: bool,
    /// Slots remaining in the current on/off period.
    remaining: u64,
    on_mean_slots: f64,
    off_mean_slots: f64,
}

impl Interferer {
    /// Creates an interferer.
    ///
    /// * `center`, `width` — occupied sub-band in hop-channel units
    ///   (an 802.11b station occupies ≈ 22 MHz ⇒ width 22);
    /// * `ber_hit` — BER inflicted on hit slots while on;
    /// * `on_mean_s` / `off_mean_s` — mean on and off dwell in seconds.
    ///
    /// # Panics
    ///
    /// Panics if `center >= 79`, `ber_hit` outside `[0,1]`, or dwell means
    /// are not positive.
    pub fn new(center: u8, width: u8, ber_hit: f64, on_mean_s: f64, off_mean_s: f64) -> Self {
        assert!(center < crate::hop::CHANNELS, "center channel out of range");
        assert!((0.0..=1.0).contains(&ber_hit), "ber_hit outside [0,1]");
        assert!(on_mean_s > 0.0 && off_mean_s > 0.0, "dwell means");
        Interferer {
            center,
            half_width: width / 2,
            ber_hit,
            on: false,
            remaining: 0,
            on_mean_slots: on_mean_s / 625e-6,
            off_mean_slots: off_mean_s / 625e-6,
        }
    }

    /// A co-located 802.11b cell: 22-channel band, on 20 % of the time.
    pub fn wifi(center: u8) -> Self {
        Interferer::new(center, 22, 2e-2, 2.0, 8.0)
    }

    fn hits(&self, ch: u8) -> bool {
        let lo = self.center.saturating_sub(self.half_width);
        let hi = (self.center + self.half_width).min(crate::hop::CHANNELS - 1);
        (lo..=hi).contains(&ch)
    }

    /// Whether the interferer is currently transmitting.
    pub fn is_on(&self) -> bool {
        self.on
    }
}

impl ChannelModel for Interferer {
    fn slot_ber(&mut self, _slot: u64, ch: u8, rng: &mut SimRng) -> f64 {
        if self.remaining == 0 {
            self.on = !self.on;
            let mean = if self.on {
                self.on_mean_slots
            } else {
                self.off_mean_slots
            };
            let draw = Exponential::from_mean(mean)
                .expect("positive mean")
                .sample(rng);
            self.remaining = draw.ceil().max(1.0) as u64;
        }
        self.remaining -= 1;
        if self.on && self.hits(ch) {
            self.ber_hit
        } else {
            0.0
        }
    }

    /// O(dwell boundaries) instead of O(slots), and **bit-identical** to
    /// the per-slot walk: the hop channel only decides which slots get
    /// hit (unobserved while idle), while the on/off process draws from
    /// the RNG exactly when a slot lands on `remaining == 0` — the same
    /// draws in the same order as `n` `slot_ber` calls.
    fn advance_idle(&mut self, _start_slot: u64, n: u64, rng: &mut SimRng) {
        let mut left = n;
        while left > 0 {
            if self.remaining == 0 {
                self.on = !self.on;
                let mean = if self.on {
                    self.on_mean_slots
                } else {
                    self.off_mean_slots
                };
                let draw = Exponential::from_mean(mean)
                    .expect("positive mean")
                    .sample(rng);
                self.remaining = draw.ceil().max(1.0) as u64;
            }
            let take = self.remaining.min(left);
            self.remaining -= take;
            left -= take;
        }
    }
}

/// Combines a burst process, path loss and any number of interferers.
///
/// Per-slot BER is the complement-product combination
/// `1 − Π(1 − berᵢ)` — independent error sources.
#[derive(Debug, Clone)]
pub struct CompositeChannel {
    burst: GilbertElliott,
    path: PathLoss,
    interferers: Vec<Interferer>,
}

impl CompositeChannel {
    /// Creates a composite channel.
    pub fn new(burst: GilbertElliott, path: PathLoss) -> Self {
        CompositeChannel {
            burst,
            path,
            interferers: Vec::new(),
        }
    }

    /// The paper-calibrated default for a link at `distance_m`.
    pub fn typical(distance_m: f64) -> Self {
        let mut c = CompositeChannel::new(GilbertElliott::typical(), PathLoss::new(distance_m));
        c.add_interferer(Interferer::wifi(39));
        c
    }

    /// Adds an interference source.
    pub fn add_interferer(&mut self, i: Interferer) -> &mut Self {
        self.interferers.push(i);
        self
    }

    /// The underlying burst process state.
    pub fn burst_state(&self) -> ChannelState {
        self.burst.state()
    }
}

impl ChannelModel for CompositeChannel {
    fn slot_ber(&mut self, slot: u64, ch: u8, rng: &mut SimRng) -> f64 {
        let mut ok = 1.0 - self.burst.slot_ber(slot, ch, rng);
        ok *= 1.0 - self.path.slot_ber(slot, ch, rng);
        for i in self.interferers.iter_mut() {
            ok *= 1.0 - i.slot_ber(slot, ch, rng);
        }
        1.0 - ok
    }

    fn state(&self) -> ChannelState {
        self.burst.state()
    }

    /// Advances each component over the whole span in turn. The
    /// components evolve independently, so handing each a contiguous
    /// block of the (iid) RNG stream instead of interleaving per slot
    /// preserves the joint distribution: distribution-exact, not
    /// stream-identical.
    fn advance_idle(&mut self, start_slot: u64, n: u64, rng: &mut SimRng) {
        self.burst.advance_idle(start_slot, n, rng);
        self.path.advance_idle(start_slot, n, rng);
        for i in self.interferers.iter_mut() {
            i.advance_idle(start_slot, n, rng);
        }
    }
}

/// A channel with a constant BER — the *memoryless* baseline used by the
/// ablation bench to show Fig. 3a's shape depends on burstiness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemorylessChannel {
    ber: f64,
}

impl MemorylessChannel {
    /// Creates a memoryless channel with constant `ber`.
    ///
    /// # Panics
    ///
    /// Panics if `ber` is outside `[0, 1]`.
    pub fn new(ber: f64) -> Self {
        assert!((0.0..=1.0).contains(&ber), "ber outside [0,1]");
        MemorylessChannel { ber }
    }

    /// A memoryless channel with the same *average* BER as a given
    /// Gilbert–Elliott process (matched first moment).
    pub fn matching(ge: &GilbertElliott) -> Self {
        let pi_bad = ge.stationary_bad();
        MemorylessChannel::new(ge.ber_bad * pi_bad + ge.ber_good * (1.0 - pi_bad))
    }
}

impl ChannelModel for MemorylessChannel {
    fn slot_ber(&mut self, _slot: u64, _ch: u8, _rng: &mut SimRng) -> f64 {
        self.ber
    }

    /// Stateless and RNG-free: skipping idle slots is an exact no-op.
    fn advance_idle(&mut self, _start_slot: u64, _n: u64, _rng: &mut SimRng) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from(99)
    }

    #[test]
    fn gilbert_elliott_visits_both_states() {
        let mut ge = GilbertElliott::new(0.05, 0.2, 1e-6, 1e-2);
        let mut r = rng();
        let mut good = 0;
        let mut bad = 0;
        for slot in 0..100_000 {
            match ge.state() {
                ChannelState::Good => good += 1,
                ChannelState::Bad => bad += 1,
            }
            let _ = ge.slot_ber(slot, 0, &mut r);
        }
        let frac_bad = bad as f64 / (good + bad) as f64;
        let expect = ge.stationary_bad(); // 0.05/0.25 = 0.2
        assert!((frac_bad - expect).abs() < 0.02, "frac {frac_bad}");
    }

    #[test]
    fn gilbert_elliott_bursts_are_contiguous() {
        let mut ge = GilbertElliott::new(0.01, 0.1, 0.0, 1.0);
        let mut r = rng();
        let bers: Vec<f64> = (0..50_000).map(|s| ge.slot_ber(s, 0, &mut r)).collect();
        // Count runs of bad slots; mean run length should be ~ 1/p_bg = 10.
        let mut runs = Vec::new();
        let mut cur = 0u32;
        for &b in &bers {
            if b == 1.0 {
                cur += 1;
            } else if cur > 0 {
                runs.push(cur);
                cur = 0;
            }
        }
        assert!(!runs.is_empty());
        let mean = runs.iter().copied().sum::<u32>() as f64 / runs.len() as f64;
        assert!((mean - 10.0).abs() < 2.0, "mean burst {mean}");
    }

    #[test]
    fn stationary_and_burst_stats() {
        let ge = GilbertElliott::new(0.02, 0.08, 0.0, 0.1);
        assert!((ge.stationary_bad() - 0.2).abs() < 1e-12);
        assert!((ge.mean_burst_slots() - 12.5).abs() < 1e-12);
        let z = GilbertElliott::new(0.0, 0.0, 0.0, 0.1);
        assert_eq!(z.stationary_bad(), 0.0);
        assert!(z.mean_burst_slots().is_infinite());
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn ge_rejects_bad_probability() {
        let _ = GilbertElliott::new(1.5, 0.1, 0.0, 0.0);
    }

    #[test]
    fn path_loss_mild_within_class2() {
        let near = PathLoss::new(0.5).ber_floor();
        let far = PathLoss::new(7.0).ber_floor();
        assert!(far > near);
        // Still tiny compared to the burst-state BER.
        assert!(far < 1e-5);
        assert_eq!(PathLoss::new(0.0).ber_floor(), 0.0);
    }

    #[test]
    fn interferer_only_hits_its_band_when_on() {
        let mut i = Interferer::new(40, 22, 0.5, 1.0, 1.0);
        let mut r = rng();
        let mut hit_in_band = false;
        let mut hit_out_band = false;
        for slot in 0..20_000 {
            let in_band = i.slot_ber(slot, 40, &mut r);
            let out_band = i.slot_ber(slot, 5, &mut r);
            if in_band > 0.0 {
                hit_in_band = true;
            }
            if out_band > 0.0 {
                hit_out_band = true;
            }
        }
        assert!(hit_in_band);
        assert!(!hit_out_band);
    }

    #[test]
    fn interferer_duty_cycle() {
        let mut i = Interferer::new(40, 79, 1.0, 2.0, 8.0);
        let mut r = rng();
        // Mean cycle is 16 000 slots (2 s on + 8 s off), so sample a few
        // hundred cycles to keep the duty estimator's σ well under the
        // assertion margin regardless of the RNG stream.
        let n = 4_000_000;
        let on = (0..n).filter(|&s| i.slot_ber(s, 40, &mut r) > 0.0).count();
        let duty = on as f64 / n as f64;
        assert!((duty - 0.2).abs() < 0.05, "duty {duty}");
    }

    #[test]
    fn composite_combines_sources() {
        let mut c = CompositeChannel::new(
            GilbertElliott::new(0.0, 1.0, 1e-3, 1e-3),
            PathLoss::new(5.0),
        );
        let mut r = rng();
        let ber = c.slot_ber(0, 0, &mut r);
        assert!(ber > 1e-3); // burst floor + path floor
        assert!(ber < 2e-3);
    }

    #[test]
    fn memoryless_matches_average() {
        let ge = GilbertElliott::new(0.01, 0.04, 0.0, 0.05);
        let m = MemorylessChannel::matching(&ge);
        // pi_bad = 0.2, avg = 0.01
        let mut r = rng();
        let mut mm = m;
        assert!((mm.slot_ber(0, 0, &mut r) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn interferer_advance_idle_is_bit_identical_to_slot_walk() {
        // The on/off process draws only at dwell boundaries, so the
        // batched advance must consume the same draws in the same order:
        // after the span, both copies (and both RNGs) are in identical
        // states, verified by comparing long subsequent BER streams.
        for span in [1u64, 7, 1_000, 123_457] {
            let mut a = Interferer::wifi(40);
            let mut b = a.clone();
            let mut ra = SimRng::seed_from(0xD1CE);
            let mut rb = SimRng::seed_from(0xD1CE);
            for slot in 0..span {
                let _ = a.slot_ber(slot, (slot % 79) as u8, &mut ra);
            }
            b.advance_idle(0, span, &mut rb);
            for slot in span..span + 50_000 {
                let ch = (slot % 79) as u8;
                assert_eq!(
                    a.slot_ber(slot, ch, &mut ra).to_bits(),
                    b.slot_ber(slot, ch, &mut rb).to_bits(),
                    "diverged after span {span} at slot {slot}"
                );
            }
        }
    }

    #[test]
    fn memoryless_models_skip_idle_without_touching_rng() {
        let mut m = MemorylessChannel::new(1e-3);
        let mut p = PathLoss::new(5.0);
        let mut r = SimRng::seed_from(7);
        let before = r.uniform01();
        let mut r = SimRng::seed_from(7);
        m.advance_idle(0, 1 << 40, &mut r);
        p.advance_idle(0, 1 << 40, &mut r);
        assert_eq!(r.uniform01().to_bits(), before.to_bits());
    }

    #[test]
    fn ge_advance_idle_matches_stationary_distribution() {
        // Long spans mix the chain: the post-span state frequency over
        // many trials must match the stationary distribution, same as
        // the slot-by-slot walk's.
        let mut r = rng();
        let trials = 4000;
        let mut bad = 0;
        for _ in 0..trials {
            let mut ge = GilbertElliott::new(0.02, 0.08, 0.0, 0.1);
            ge.advance_idle(0, 2_000, &mut r);
            if ge.state() == ChannelState::Bad {
                bad += 1;
            }
        }
        let frac = bad as f64 / trials as f64;
        let expect = GilbertElliott::new(0.02, 0.08, 0.0, 0.1).stationary_bad();
        assert!((frac - expect).abs() < 0.03, "frac {frac} expect {expect}");
    }

    #[test]
    fn ge_advance_idle_short_span_flip_probability_is_exact() {
        // Over a single-slot span the flip probability must be exactly
        // p_gb — the truncated-geometric argument in miniature.
        let p_gb = 0.3;
        let mut r = rng();
        let trials = 20_000;
        let mut flips = 0;
        for _ in 0..trials {
            let mut ge = GilbertElliott::new(p_gb, 0.5, 0.0, 0.1);
            ge.advance_idle(0, 1, &mut r);
            if ge.state() == ChannelState::Bad {
                flips += 1;
            }
        }
        let frac = flips as f64 / trials as f64;
        assert!((frac - p_gb).abs() < 0.015, "frac {frac}");
    }

    #[test]
    fn ge_advance_idle_absorbing_and_deterministic_edges() {
        // p_flip = 0: absorbing, no draws (matches chance(0.0)).
        let mut ge = GilbertElliott::new(0.0, 0.5, 0.0, 0.1);
        let mut r = rng();
        let probe = SimRng::seed_from(99).uniform01();
        ge.advance_idle(0, 1 << 30, &mut r);
        assert_eq!(ge.state(), ChannelState::Good);
        assert_eq!(r.uniform01().to_bits(), probe.to_bits());

        // p_flip = 1 both ways: alternates every slot, no draws.
        let mut ge = GilbertElliott::new(1.0, 1.0, 0.0, 0.1);
        let mut r = rng();
        ge.advance_idle(0, 5, &mut r);
        assert_eq!(ge.state(), ChannelState::Bad);
        ge.advance_idle(5, 4, &mut r);
        assert_eq!(ge.state(), ChannelState::Bad);
        let mut fresh = rng();
        assert_eq!(r.uniform01().to_bits(), fresh.uniform01().to_bits());
    }

    #[test]
    fn composite_advance_idle_preserves_component_statistics() {
        let mut c = CompositeChannel::typical(5.0);
        let mut r = rng();
        // Alternate long idle spans with short active probes; the BERs
        // seen while active must stay in range and both burst states
        // must appear over time.
        let mut saw_bad = false;
        let mut slot = 0u64;
        for _ in 0..3000 {
            c.advance_idle(slot, 10_000, &mut r);
            slot += 10_000;
            for _ in 0..6 {
                let ber = c.slot_ber(slot, (slot % 79) as u8, &mut r);
                assert!((0.0..=1.0).contains(&ber));
                slot += 1;
            }
            if c.burst_state() == ChannelState::Bad {
                saw_bad = true;
            }
        }
        assert!(saw_bad, "burst process never entered bad state");
    }

    #[test]
    fn typical_channel_sane() {
        let mut c = CompositeChannel::typical(5.0);
        let mut r = rng();
        for slot in 0..1000 {
            let ber = c.slot_ber(slot, (slot % 79) as u8, &mut r);
            assert!((0.0..=1.0).contains(&ber));
        }
    }
}
