//! # btpan-faults
//!
//! The Bluetooth-PAN failure model of the DSN'06 study and the fault
//! injection that substitutes for 18 months of field exposure.
//!
//! * [`types`] — the taxonomy of paper Table 1: ten user-level failure
//!   types in three groups, eleven system-level failure (error) types in
//!   seven components, and the local-vs-NAP cause site used to study
//!   error propagation;
//! * [`profiles`] — the paper's published conditional distributions
//!   (Table 2 cause profiles, Table 3 SIRA-effectiveness profiles, the
//!   overall failure mix) encoded as ground truth for injection. Where
//!   the source PDF is garbled, cells are **reconstructed** to satisfy
//!   every constraint stated in the prose — see each constant's docs;
//! * [`injector`] — samples, per workload phase, whether a failure
//!   manifests, its system-level cause, and the system-log entries that
//!   cause leaves behind (including entries on the NAP for propagated
//!   causes);
//! * [`latent`] — latent connection-setup faults with decreasing hazard
//!   (Weibull k<1): the mechanism behind Fig. 3b ("young connections
//!   fail more") and the MTTF gap between recovery policies;
//! * [`stress`] — channel-stress amplification for sustained-transfer
//!   applications (Fig. 3c: P2P and streaming fail most);
//! * [`quirks`] — per-host modifiers (Fig. 4: bind failures only on the
//!   Fedora and Windows machines, switch-role failures concentrated on
//!   the BCSP-transport PDAs).

pub mod injector;
pub mod latent;
pub mod profiles;
pub mod quirks;
pub mod stress;
pub mod types;

pub use injector::{FaultInjector, InjectedFailure, InjectionConfig};
pub use latent::LatentFaultModel;
pub use profiles::{CauseProfile, SiraProfiles, FAILURE_MIX};
pub use quirks::HostQuirks;
pub use stress::StressModel;
pub use types::{CauseSite, FailureGroup, Sira, SystemComponent, SystemFault, UserFailure};
