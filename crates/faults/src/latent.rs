//! Latent connection-setup faults: the "young connections fail more"
//! mechanism (Figure 3b).
//!
//! The paper demonstrates that connections fail predominantly while
//! young — "likely due to latent errors of the connection setup process,
//! such as the corruption of the BT stack data structures" — and that
//! *idle* connections do not fail more (mean idle time before failed
//! cycles 27.3 s vs 26.9 s before clean ones). We model this as: at
//! setup, a connection acquires a latent defect with probability
//! `p_latent`; a defective connection fails after a Weibull(k < 1)
//! number of packets, i.e. with a *decreasing* hazard — most latent
//! failures strike early. Healthy connections are only exposed to the
//! (age-independent) baseband drop process, so the mixture produces
//! Fig. 3b's decreasing histogram.
//!
//! The same mechanism explains the paper's counter-intuitive Table 4
//! result that SIRAs alone lengthen MTTF (630.56 s → 845.54 s): deep
//! recoveries (app restart, reboot) tear down *every* connection and the
//! stack state, so each failure is followed by fresh, latent-fault-prone
//! setups — shallow SIRAs avoid that exposure. The
//! [`LatentFaultModel::post_recovery_multiplier`] hook quantifies the
//! extra hazard a recovery of a given severity leaves behind.

use btpan_sim::prelude::*;

/// Parameters of the latent-fault process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatentFaultModel {
    /// Probability a fresh connection carries a latent defect.
    pub p_latent: f64,
    /// Weibull shape of the defect's manifestation point (< 1 gives the
    /// decreasing hazard of Fig. 3b).
    pub shape: f64,
    /// Weibull scale, in packets sent.
    pub scale_packets: f64,
    /// Scales the post-recovery hazard penalty: 1.0 = calibrated model,
    /// 0.0 = no rejuvenation effect (ablation).
    pub post_scale: f64,
}

impl Default for LatentFaultModel {
    fn default() -> Self {
        LatentFaultModel::typical()
    }
}

impl LatentFaultModel {
    /// Paper-calibrated defaults: ~0.18 % of setups defective, shape 0.45,
    /// scale 1.5 k packets — puts the bulk of latent losses within the
    /// first few hundred packets of a 10 000-packet Fig. 3b run.
    pub fn typical() -> Self {
        LatentFaultModel {
            p_latent: 0.0018,
            shape: 0.45,
            scale_packets: 1500.0,
            post_scale: 1.0,
        }
    }

    /// Draws the latent state of a freshly set-up connection: `None` for
    /// a healthy connection, or the packet count at which the defect
    /// will manifest.
    ///
    /// # Panics
    ///
    /// Panics if the model parameters are invalid.
    pub fn sample_connection(&self, rng: &mut SimRng) -> Option<u64> {
        if !rng.chance(self.p_latent) {
            return None;
        }
        let w = Weibull::new(self.shape, self.scale_packets).expect("valid Weibull parameters");
        Some(w.sample(rng).ceil().max(1.0) as u64)
    }

    /// Probability that a defective connection has *not yet* failed
    /// after sending `packets` packets.
    pub fn survival(&self, packets: u64) -> f64 {
        let w = Weibull::new(self.shape, self.scale_packets).expect("valid Weibull parameters");
        w.survival(packets as f64)
    }

    /// Hazard multiplier applied to the next `post_recovery_window`
    /// cycles after a recovery of the given SIRA severity (1–7).
    ///
    /// Shallow SIRAs (1–3) preserve stack/connection state; application
    /// restarts rebuild the application's connections; reboots rebuild
    /// everything including driver and HAL state. Calibrated so that the
    /// four Table 4 policies land near MTTF 630/831/845/1905 s.
    pub fn post_recovery_multiplier(&self, severity: u8) -> f64 {
        let base = match severity {
            0..=3 => 1.0,
            4 | 5 => 1.12,
            _ => 1.8,
        };
        1.0 + (base - 1.0) * self.post_scale.max(0.0)
    }

    /// Number of workload cycles the post-recovery multiplier persists
    /// (~25 minutes of wall time: driver/HAL warm-up, cache
    /// repopulation, piconet re-synchronization).
    pub fn post_recovery_window(&self) -> u32 {
        40
    }
}

/// Tracks the latent state of one live connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConnectionLatency {
    defect_at: Option<u64>,
    packets_sent: u64,
}

impl ConnectionLatency {
    /// Rolls the latent state for a fresh connection.
    pub fn roll(model: &LatentFaultModel, rng: &mut SimRng) -> Self {
        ConnectionLatency {
            defect_at: model.sample_connection(rng),
            packets_sent: 0,
        }
    }

    /// A connection known to be healthy (for tests/baselines).
    pub fn healthy() -> Self {
        ConnectionLatency {
            defect_at: None,
            packets_sent: 0,
        }
    }

    /// Packets sent so far on this connection.
    pub fn packets_sent(&self) -> u64 {
        self.packets_sent
    }

    /// Advances the connection by `packets` sent packets. Returns
    /// `Some(age_at_failure)` if the latent defect manifests within this
    /// batch — the age is the total packets sent when the connection
    /// broke (the Fig. 3b x-axis).
    pub fn advance(&mut self, packets: u64) -> Option<u64> {
        let before = self.packets_sent;
        self.packets_sent += packets;
        match self.defect_at {
            Some(at) if at > before && at <= self.packets_sent => {
                self.defect_at = None;
                Some(at)
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_connections_never_latently_fail() {
        let mut c = ConnectionLatency::healthy();
        assert_eq!(c.advance(1_000_000), None);
        assert_eq!(c.packets_sent(), 1_000_000);
    }

    #[test]
    fn latent_fraction_matches_p() {
        let m = LatentFaultModel::typical();
        let mut rng = SimRng::seed_from(10);
        let n = 100_000;
        let defective = (0..n)
            .filter(|_| m.sample_connection(&mut rng).is_some())
            .count();
        let frac = defective as f64 / n as f64;
        assert!((frac - m.p_latent).abs() < 0.003, "frac {frac}");
    }

    #[test]
    fn failures_skew_young() {
        // Among defective connections, far more manifest in the first
        // 500 packets than in packets 5000..5500 — the Fig. 3b shape.
        let m = LatentFaultModel::typical();
        let mut rng = SimRng::seed_from(11);
        let mut early = 0;
        let mut late = 0;
        for _ in 0..200_000 {
            if let Some(at) = m.sample_connection(&mut rng) {
                if at <= 500 {
                    early += 1;
                } else if (5000..=5500).contains(&at) {
                    late += 1;
                }
            }
        }
        assert!(early > late * 3, "early {early} late {late}");
    }

    #[test]
    fn survival_is_monotone() {
        let m = LatentFaultModel::typical();
        assert!(m.survival(0) >= m.survival(10));
        assert!(m.survival(10) > m.survival(10_000));
    }

    #[test]
    fn advance_reports_exact_age() {
        let mut c = ConnectionLatency {
            defect_at: Some(150),
            packets_sent: 0,
        };
        assert_eq!(c.advance(100), None);
        assert_eq!(c.advance(100), Some(150));
        // defect consumed: no double fire
        assert_eq!(c.advance(1000), None);
    }

    #[test]
    fn advance_boundary_conditions() {
        let mut c = ConnectionLatency {
            defect_at: Some(100),
            packets_sent: 0,
        };
        assert_eq!(c.advance(99), None);
        assert_eq!(c.advance(1), Some(100));
        let mut d = ConnectionLatency {
            defect_at: Some(1),
            packets_sent: 0,
        };
        assert_eq!(d.advance(1), Some(1));
    }

    #[test]
    fn post_scale_zero_disables_penalty() {
        let mut m = LatentFaultModel::typical();
        m.post_scale = 0.0;
        for s in 1..=7 {
            assert_eq!(m.post_recovery_multiplier(s), 1.0);
        }
    }

    #[test]
    fn post_recovery_ordering() {
        let m = LatentFaultModel::typical();
        assert_eq!(m.post_recovery_multiplier(1), 1.0);
        assert_eq!(m.post_recovery_multiplier(3), 1.0);
        assert!(m.post_recovery_multiplier(4) > 1.0);
        assert!(m.post_recovery_multiplier(6) > m.post_recovery_multiplier(4));
        assert!(m.post_recovery_window() > 0);
    }
}
