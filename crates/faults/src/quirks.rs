//! Per-host failure modifiers (Figure 4).
//!
//! The paper's per-host failure distribution is far from uniform:
//!
//! * **bind failures appeared only on `Azzurro` and `Win`** — `Azzurro`
//!   runs Fedora Core with the then-new Hardware Abstraction Layer
//!   daemon responsible for hotplug (the problem survived a hardware
//!   upgrade, pinning it on the HAL version); `Win` uses the Broadcom
//!   stack with its own interface-configuration timing;
//! * **switch-role command failures are frequent on the PDAs**
//!   (iPAQ H3870, Zaurus SL-5600) "due to the complexity introduced by
//!   the BCSP" serial transport.

use serde::{Deserialize, Serialize};

/// Host-level quirk flags that modulate fault activation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct HostQuirks {
    /// The host's hotplug/HAL path is racy: bind failures can occur
    /// (Fedora's HAL on `Azzurro`, Broadcom on `Win`).
    pub bind_prone: bool,
    /// The host's controller speaks BCSP over UART (the PDAs); the
    /// switch-role command path is fragile.
    pub uses_bcsp: bool,
    /// The host is a resource-constrained PDA (slower recovery times).
    pub is_pda: bool,
}

impl HostQuirks {
    /// A commodity Linux PC on USB transport with a healthy hotplug.
    pub fn linux_pc() -> Self {
        HostQuirks::default()
    }

    /// The Fedora machine with the buggy HAL (`Azzurro`).
    pub fn fedora_hal_bug() -> Self {
        HostQuirks {
            bind_prone: true,
            uses_bcsp: false,
            is_pda: false,
        }
    }

    /// The Windows XP / Broadcom machine (`Win`).
    pub fn windows_broadcom() -> Self {
        HostQuirks {
            bind_prone: true,
            uses_bcsp: false,
            is_pda: false,
        }
    }

    /// A Linux PDA on BCSP transport (iPAQ, Zaurus).
    pub fn pda() -> Self {
        HostQuirks {
            bind_prone: false,
            uses_bcsp: true,
            is_pda: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper() {
        assert!(HostQuirks::fedora_hal_bug().bind_prone);
        assert!(HostQuirks::windows_broadcom().bind_prone);
        assert!(!HostQuirks::linux_pc().bind_prone);
        assert!(HostQuirks::pda().uses_bcsp);
        assert!(HostQuirks::pda().is_pda);
        assert!(!HostQuirks::fedora_hal_bug().uses_bcsp);
    }

    #[test]
    fn default_is_clean() {
        let q = HostQuirks::default();
        assert!(!q.bind_prone && !q.uses_bcsp && !q.is_pda);
    }
}
