//! The Bluetooth PAN failure model (paper Table 1).
//!
//! Two levels of failure data are produced by the testbeds:
//!
//! * **user-level failures** — what the PANU user perceives, grouped by
//!   the utilization phase in which they manifest (searching for devices
//!   and services / connecting / transferring data);
//! * **system-level failures** — what system software records in the OS
//!   log (BT stack modules, OS drivers). System-level failures act as
//!   *errors* for user-level failures: when a user failure manifests,
//!   one or more system failures appear in the same window of time.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The utilization phase a user-level failure belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FailureGroup {
    /// Searching for devices and services (inquiry/scan, SDP).
    Search,
    /// Establishing the PAN connection (L2CAP, BNEP, bind, role switch).
    Connect,
    /// Moving data over the established channel.
    DataTransfer,
}

/// User-level failure types, exactly the ten of paper Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum UserFailure {
    /// The inquiry procedure terminates abnormally.
    InquiryScanFailed,
    /// The SDP Search procedure terminates abnormally.
    SdpSearchFailed,
    /// The SDP procedure does not find the NAP, even if it is present.
    NapNotFound,
    /// The device fails to establish the L2CAP connection with the NAP.
    ConnectFailed,
    /// The PANU fails to establish the PAN connection with the NAP.
    PanConnectFailed,
    /// The IP socket cannot bind the Bluetooth BNEP interface.
    BindFailed,
    /// The switch-role request does not reach the master.
    SwitchRoleRequestFailed,
    /// The request succeeds, but the command completes abnormally.
    SwitchRoleCommandFailed,
    /// An expected packet is lost (30 s receive timeout expires).
    PacketLoss,
    /// The packet is received correctly, but the content is corrupted.
    DataMismatch,
}

impl UserFailure {
    /// All ten failure types in Table 1 order.
    pub const ALL: [UserFailure; 10] = [
        UserFailure::InquiryScanFailed,
        UserFailure::SdpSearchFailed,
        UserFailure::NapNotFound,
        UserFailure::ConnectFailed,
        UserFailure::PanConnectFailed,
        UserFailure::BindFailed,
        UserFailure::SwitchRoleRequestFailed,
        UserFailure::SwitchRoleCommandFailed,
        UserFailure::PacketLoss,
        UserFailure::DataMismatch,
    ];

    /// The utilization phase the failure belongs to.
    pub const fn group(self) -> FailureGroup {
        match self {
            UserFailure::InquiryScanFailed
            | UserFailure::SdpSearchFailed
            | UserFailure::NapNotFound => FailureGroup::Search,
            UserFailure::ConnectFailed
            | UserFailure::PanConnectFailed
            | UserFailure::BindFailed
            | UserFailure::SwitchRoleRequestFailed
            | UserFailure::SwitchRoleCommandFailed => FailureGroup::Connect,
            UserFailure::PacketLoss | UserFailure::DataMismatch => FailureGroup::DataTransfer,
        }
    }

    /// Stable index (Table 1 order) for array-backed lookup tables.
    pub const fn index(self) -> usize {
        match self {
            UserFailure::InquiryScanFailed => 0,
            UserFailure::SdpSearchFailed => 1,
            UserFailure::NapNotFound => 2,
            UserFailure::ConnectFailed => 3,
            UserFailure::PanConnectFailed => 4,
            UserFailure::BindFailed => 5,
            UserFailure::SwitchRoleRequestFailed => 6,
            UserFailure::SwitchRoleCommandFailed => 7,
            UserFailure::PacketLoss => 8,
            UserFailure::DataMismatch => 9,
        }
    }

    /// The short label used in tables and logs.
    pub const fn label(self) -> &'static str {
        match self {
            UserFailure::InquiryScanFailed => "Inquiry/scan failed",
            UserFailure::SdpSearchFailed => "SDP search failed",
            UserFailure::NapNotFound => "NAP not found",
            UserFailure::ConnectFailed => "Connect failed",
            UserFailure::PanConnectFailed => "PAN connect failed",
            UserFailure::BindFailed => "Bind failed",
            UserFailure::SwitchRoleRequestFailed => "Sw role request failed",
            UserFailure::SwitchRoleCommandFailed => "Sw role command failed",
            UserFailure::PacketLoss => "Packet loss",
            UserFailure::DataMismatch => "Data mismatch",
        }
    }
}

impl fmt::Display for UserFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The software component that signalled a system-level failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SystemComponent {
    /// Host Controller Interface command layer.
    Hci,
    /// Logical Link Control and Adaptation Protocol.
    L2cap,
    /// Service Discovery Protocol daemon.
    Sdp,
    /// BT Network Encapsulation Protocol / interface module.
    Bnep,
    /// BlueCore Serial Protocol transport (PDAs).
    Bcsp,
    /// USB transport to the BT controller.
    Usb,
    /// OS hotplug / Hardware Abstraction Layer daemon.
    Hotplug,
}

impl SystemComponent {
    /// All seven components in Table 1 order (BT stack then OS/drivers).
    pub const ALL: [SystemComponent; 7] = [
        SystemComponent::Hci,
        SystemComponent::L2cap,
        SystemComponent::Sdp,
        SystemComponent::Bnep,
        SystemComponent::Bcsp,
        SystemComponent::Usb,
        SystemComponent::Hotplug,
    ];

    /// Stable index for lookup tables.
    pub const fn index(self) -> usize {
        match self {
            SystemComponent::Hci => 0,
            SystemComponent::L2cap => 1,
            SystemComponent::Sdp => 2,
            SystemComponent::Bnep => 3,
            SystemComponent::Bcsp => 4,
            SystemComponent::Usb => 5,
            SystemComponent::Hotplug => 6,
        }
    }

    /// True for components inside the Bluetooth protocol stack (as
    /// opposed to OS/driver components).
    pub const fn is_bt_stack(self) -> bool {
        matches!(
            self,
            SystemComponent::Hci
                | SystemComponent::L2cap
                | SystemComponent::Sdp
                | SystemComponent::Bnep
        )
    }

    /// Table label.
    pub const fn label(self) -> &'static str {
        match self {
            SystemComponent::Hci => "HCI",
            SystemComponent::L2cap => "L2CAP",
            SystemComponent::Sdp => "SDP",
            SystemComponent::Bnep => "BNEP",
            SystemComponent::Bcsp => "BCSP",
            SystemComponent::Usb => "USB",
            SystemComponent::Hotplug => "HOTPLUG",
        }
    }
}

impl fmt::Display for SystemComponent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// System-level failure types (errors), per paper Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SystemFault {
    /// HCI command timeout transmitting to the BT firmware.
    HciCommandTimeout,
    /// HCI command issued for an unknown connection handle.
    HciInvalidHandle,
    /// Unexpected L2CAP start or continuation frame received.
    L2capUnexpectedFrame,
    /// Connection with the SDP server refused or timed out.
    SdpConnectionRefused,
    /// AP unavailable or not implementing the required service.
    SdpServiceUnavailable,
    /// "Failed to add a connection, can't locate module bnep0".
    BnepModuleMissing,
    /// "bnep occupied" — the BNEP device is busy.
    BnepOccupied,
    /// Out-of-order BCSP packets.
    BcspOutOfOrder,
    /// Missing BCSP packets.
    BcspMissing,
    /// The USB device does not accept new addresses.
    UsbAddressRejected,
    /// The HAL daemon times out waiting for a hotplug event.
    HotplugTimeout,
}

impl SystemFault {
    /// All eleven system fault types.
    pub const ALL: [SystemFault; 11] = [
        SystemFault::HciCommandTimeout,
        SystemFault::HciInvalidHandle,
        SystemFault::L2capUnexpectedFrame,
        SystemFault::SdpConnectionRefused,
        SystemFault::SdpServiceUnavailable,
        SystemFault::BnepModuleMissing,
        SystemFault::BnepOccupied,
        SystemFault::BcspOutOfOrder,
        SystemFault::BcspMissing,
        SystemFault::UsbAddressRejected,
        SystemFault::HotplugTimeout,
    ];

    /// The component that signals this fault.
    pub const fn component(self) -> SystemComponent {
        match self {
            SystemFault::HciCommandTimeout | SystemFault::HciInvalidHandle => SystemComponent::Hci,
            SystemFault::L2capUnexpectedFrame => SystemComponent::L2cap,
            SystemFault::SdpConnectionRefused | SystemFault::SdpServiceUnavailable => {
                SystemComponent::Sdp
            }
            SystemFault::BnepModuleMissing | SystemFault::BnepOccupied => SystemComponent::Bnep,
            SystemFault::BcspOutOfOrder | SystemFault::BcspMissing => SystemComponent::Bcsp,
            SystemFault::UsbAddressRejected => SystemComponent::Usb,
            SystemFault::HotplugTimeout => SystemComponent::Hotplug,
        }
    }

    /// The log message the component writes for this fault.
    pub const fn log_message(self) -> &'static str {
        match self {
            SystemFault::HciCommandTimeout => "HCI command timeout",
            SystemFault::HciInvalidHandle => "HCI command for invalid handle",
            SystemFault::L2capUnexpectedFrame => "L2CAP unexpected start/continuation frame",
            SystemFault::SdpConnectionRefused => "SDP connection refused or timed out",
            SystemFault::SdpServiceUnavailable => "SDP required service unavailable",
            SystemFault::BnepModuleMissing => "bnep: can't locate module bnep0",
            SystemFault::BnepOccupied => "bnep: device occupied",
            SystemFault::BcspOutOfOrder => "BCSP out of order packet",
            SystemFault::BcspMissing => "BCSP missing packet",
            SystemFault::UsbAddressRejected => "usb: device not accepting address",
            SystemFault::HotplugTimeout => "HAL timed out waiting for hotplug event",
        }
    }
}

impl fmt::Display for SystemFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.log_message())
    }
}

/// Where a system-level cause was recorded: on the failing PANU itself or
/// propagated from the NAP (the paper relates each Test log with both the
/// local System log and the NAP's).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CauseSite {
    /// The PANU's own system log.
    Local,
    /// The NAP's system log (error propagation NAP → PANU).
    Nap,
}

impl fmt::Display for CauseSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CauseSite::Local => f.write_str("local"),
            CauseSite::Nap => f.write_str("NAP"),
        }
    }
}

/// The seven Software-Implemented Recovery Actions, ordered by
/// increasing cost. "If action j was successful, the failure has
/// severity j."
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Sira {
    /// 1 — destroy and rebuild the IP socket.
    IpSocketReset,
    /// 2 — close and re-establish the L2CAP and PAN connections.
    BtConnectionReset,
    /// 3 — clean up BT stack variables and data, restoring initial state.
    BtStackReset,
    /// 4 — automatically close and restart the BlueTest application.
    AppRestart,
    /// 5 — up to 3 consecutive application restarts.
    MultiAppRestart,
    /// 6 — reboot the entire system.
    SystemReboot,
    /// 7 — up to 5 consecutive system reboots.
    MultiSystemReboot,
}

impl Sira {
    /// All seven actions in cascade (cost) order.
    pub const ALL: [Sira; 7] = [
        Sira::IpSocketReset,
        Sira::BtConnectionReset,
        Sira::BtStackReset,
        Sira::AppRestart,
        Sira::MultiAppRestart,
        Sira::SystemReboot,
        Sira::MultiSystemReboot,
    ];

    /// 1-based severity level of a failure recovered by this action.
    pub const fn severity(self) -> u8 {
        match self {
            Sira::IpSocketReset => 1,
            Sira::BtConnectionReset => 2,
            Sira::BtStackReset => 3,
            Sira::AppRestart => 4,
            Sira::MultiAppRestart => 5,
            Sira::SystemReboot => 6,
            Sira::MultiSystemReboot => 7,
        }
    }

    /// Stable 0-based index.
    pub const fn index(self) -> usize {
        self.severity() as usize - 1
    }

    /// True for the actions a typical user cannot perform (the paper's
    /// failure-mode *coverage* counts failures recovered "without
    /// rebooting the system or restarting the application", i.e. by
    /// actions 1–3).
    pub const fn counts_for_coverage(self) -> bool {
        (self.severity()) <= 3
    }

    /// Table label.
    pub const fn label(self) -> &'static str {
        match self {
            Sira::IpSocketReset => "IP socket reset",
            Sira::BtConnectionReset => "BT connection reset",
            Sira::BtStackReset => "BT stack reset",
            Sira::AppRestart => "Application restart",
            Sira::MultiAppRestart => "Multiple app restart",
            Sira::SystemReboot => "System reboot",
            Sira::MultiSystemReboot => "Multiple sys reboot",
        }
    }
}

impl fmt::Display for Sira {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_user_failures_with_stable_indices() {
        assert_eq!(UserFailure::ALL.len(), 10);
        for (i, f) in UserFailure::ALL.iter().enumerate() {
            assert_eq!(f.index(), i);
        }
    }

    #[test]
    fn groups_match_table1() {
        use UserFailure::*;
        assert_eq!(InquiryScanFailed.group(), FailureGroup::Search);
        assert_eq!(SdpSearchFailed.group(), FailureGroup::Search);
        assert_eq!(NapNotFound.group(), FailureGroup::Search);
        assert_eq!(ConnectFailed.group(), FailureGroup::Connect);
        assert_eq!(PanConnectFailed.group(), FailureGroup::Connect);
        assert_eq!(BindFailed.group(), FailureGroup::Connect);
        assert_eq!(SwitchRoleRequestFailed.group(), FailureGroup::Connect);
        assert_eq!(SwitchRoleCommandFailed.group(), FailureGroup::Connect);
        assert_eq!(PacketLoss.group(), FailureGroup::DataTransfer);
        assert_eq!(DataMismatch.group(), FailureGroup::DataTransfer);
    }

    #[test]
    fn system_faults_map_to_components() {
        assert_eq!(SystemFault::ALL.len(), 11);
        assert_eq!(
            SystemFault::HciCommandTimeout.component(),
            SystemComponent::Hci
        );
        assert_eq!(
            SystemFault::HotplugTimeout.component(),
            SystemComponent::Hotplug
        );
        // every component is signalled by at least one fault
        for c in SystemComponent::ALL {
            assert!(
                SystemFault::ALL.iter().any(|f| f.component() == c),
                "{c} has no fault"
            );
        }
    }

    #[test]
    fn bt_stack_vs_os_split() {
        assert!(SystemComponent::Hci.is_bt_stack());
        assert!(SystemComponent::Bnep.is_bt_stack());
        assert!(!SystemComponent::Usb.is_bt_stack());
        assert!(!SystemComponent::Hotplug.is_bt_stack());
        assert!(!SystemComponent::Bcsp.is_bt_stack());
    }

    #[test]
    fn sira_severities_ordered() {
        for w in Sira::ALL.windows(2) {
            assert!(w[0].severity() < w[1].severity());
        }
        assert!(Sira::IpSocketReset.counts_for_coverage());
        assert!(Sira::BtStackReset.counts_for_coverage());
        assert!(!Sira::AppRestart.counts_for_coverage());
        assert!(!Sira::MultiSystemReboot.counts_for_coverage());
    }

    #[test]
    fn labels_unique() {
        let mut labels: Vec<&str> = UserFailure::ALL.iter().map(|f| f.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 10);
    }

    #[test]
    fn display_forms() {
        assert_eq!(UserFailure::PacketLoss.to_string(), "Packet loss");
        assert_eq!(SystemComponent::Hci.to_string(), "HCI");
        assert_eq!(CauseSite::Nap.to_string(), "NAP");
        assert_eq!(Sira::BtStackReset.to_string(), "BT stack reset");
        assert!(SystemFault::BnepOccupied.to_string().contains("occupied"));
    }

    #[test]
    fn serde_round_trip() {
        let f = UserFailure::SwitchRoleCommandFailed;
        let json = serde_json::to_string(&f).unwrap();
        let back: UserFailure = serde_json::from_str(&json).unwrap();
        assert_eq!(back, f);
    }
}
