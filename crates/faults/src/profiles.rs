//! Ground-truth conditional distributions from the paper's Tables 2–3.
//!
//! These constants play a double role:
//!
//! 1. the fault **injector** samples from them, substituting for the 18
//!    months of real field exposure the paper had (repro band 2:
//!    hardware/testbed gate);
//! 2. the **analysis pipeline** re-derives them from the simulated logs
//!    through merge-and-coalesce, validating the paper's methodology
//!    end-to-end (the `repro_table2` / `repro_table3` binaries print
//!    paper-vs-measured).
//!
//! ## Reconstruction notes
//!
//! The available PDF extraction of Tables 2 and 3 is partially garbled.
//! Cell values below are **reconstructed** by jointly solving:
//!
//! * every number stated unambiguously in the prose — HCI causes 49.9 %
//!   of user failures; Connect-failed is 85.1 % HCI; PAN-connect-failed
//!   is 96.5 % SDP; switch-role-request-failed is 91.1 % HCI command
//!   timeouts; switch-role-command-failed is 49.7 % BCSP (plus 0.9/4.4 %
//!   L2CAP local/NAP, 10.9/2.4 % HCI local/NAP, 18.8 % BNEP);
//!   NAP-not-found recovers by BT-stack reset in 61.4 % of cases; packet
//!   loss recovers by IP-socket reset in 5.9 % of cases; Connect-failed
//!   recovers at severity ≥ app-restart in 84.6 % of cases;
//! * the Table 2 column totals readable in the extraction
//!   (HCI 49.9, SDP 21.1, L2CAP 11.4, BNEP 8.5, HOTPLUG 7.0, BCSP 1.1,
//!   USB 1.0 — they sum to 100);
//! * Table 4's *58 % masking* row — the three masked failure types
//!   (bind, NAP-not-found, switch-role-command) plus the SDP-first
//!   practice must jointly account for ≈ 58 % of all failures;
//! * Table 4's *58.4 % coverage* row — failures recovered by SIRAs 1–3
//!   (without app restart or reboot) must total ≈ 58.4 %.
//!
//! The resulting failure mix and profiles satisfy all of the above
//! simultaneously to within ≲ 1 percentage point (L2CAP total lands at
//! 10.6 vs 11.4). EXPERIMENTS.md tabulates paper-vs-reconstructed-vs-
//! measured for every cell.

use crate::types::{CauseSite, SystemComponent, UserFailure};
use btpan_sim::prelude::*;

/// One (component, site) cause option with its percentage weight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CauseWeight {
    /// Component whose error relates to the user failure.
    pub component: SystemComponent,
    /// Whether the error is recorded locally or on the NAP.
    pub site: CauseSite,
    /// Percentage weight within the failure's row (rows sum to 100).
    pub percent: f64,
}

/// The cause profile of one user failure: Table 2 row.
#[derive(Debug, Clone, PartialEq)]
pub struct CauseProfile {
    failure: UserFailure,
    causes: Vec<CauseWeight>,
    /// Percentage of occurrences with no related system entry.
    none_percent: f64,
}

impl CauseProfile {
    /// Builds a profile; weights plus `none_percent` must total 100 ± 0.5.
    ///
    /// # Panics
    ///
    /// Panics if the row does not sum to ≈ 100 or any weight is negative.
    pub fn new(failure: UserFailure, causes: Vec<CauseWeight>, none_percent: f64) -> Self {
        let total: f64 = causes.iter().map(|c| c.percent).sum::<f64>() + none_percent;
        assert!(
            (total - 100.0).abs() < 0.5,
            "{failure}: cause row sums to {total}"
        );
        assert!(
            causes.iter().all(|c| c.percent >= 0.0) && none_percent >= 0.0,
            "negative weight"
        );
        CauseProfile {
            failure,
            causes,
            none_percent,
        }
    }

    /// The failure this profile describes.
    pub fn failure(&self) -> UserFailure {
        self.failure
    }

    /// The weighted cause options.
    pub fn causes(&self) -> &[CauseWeight] {
        &self.causes
    }

    /// Percentage of occurrences with no system-level evidence.
    pub fn none_percent(&self) -> f64 {
        self.none_percent
    }

    /// Percentage attributed to `component` at `site`.
    pub fn percent_for(&self, component: SystemComponent, site: CauseSite) -> f64 {
        self.causes
            .iter()
            .filter(|c| c.component == component && c.site == site)
            .map(|c| c.percent)
            .sum()
    }

    /// Samples a cause (or `None` for "no system evidence").
    pub fn sample(&self, rng: &mut SimRng) -> Option<(SystemComponent, CauseSite)> {
        let mut weights: Vec<f64> = self.causes.iter().map(|c| c.percent).collect();
        weights.push(self.none_percent);
        let cat = Categorical::new(&weights).expect("valid row");
        let idx = cat.sample(rng);
        (idx < self.causes.len()).then(|| (self.causes[idx].component, self.causes[idx].site))
    }
}

/// Overall failure mix: the Table 2 "TOT" column — the share each user
/// failure holds among all user failures (percent, sums to 100).
///
/// Indexed by [`UserFailure::index`]. Reconstructed (see module docs):
/// bind + 0.95·NAP-not-found + masked fractions of switch-role-command
/// and PAN-connect ≈ 58 % (Table 4 masking row); SDP column total 21.1
/// forces NAP-not-found ≈ 20.6; HOTPLUG/BNEP totals force the bind
/// share ≈ 37.9; packet loss takes the remainder, landing within 0.5 of
/// the extraction's legible `33.9`.
pub const FAILURE_MIX: [f64; 10] = [
    0.1,  // Inquiry/scan failed
    0.5,  // SDP search failed
    20.6, // NAP not found
    5.7,  // Connect failed
    0.1,  // PAN connect failed
    37.9, // Bind failed
    0.7,  // Sw role request failed
    0.2,  // Sw role command failed
    33.4, // Packet loss
    0.8,  // Data mismatch
];

/// Builds the Table 2 cause profile for `failure`.
pub fn cause_profile(failure: UserFailure) -> CauseProfile {
    use CauseSite::{Local, Nap};
    use SystemComponent::*;
    let w = |component, site, percent| CauseWeight {
        component,
        site,
        percent,
    };
    match failure {
        UserFailure::InquiryScanFailed => CauseProfile::new(failure, vec![], 100.0),
        UserFailure::SdpSearchFailed => CauseProfile::new(
            failure,
            vec![w(Sdp, Local, 50.9), w(Sdp, Nap, 20.0), w(Hci, Local, 20.1)],
            9.0,
        ),
        UserFailure::NapNotFound => {
            CauseProfile::new(failure, vec![w(Sdp, Local, 79.8), w(Sdp, Nap, 20.2)], 0.0)
        }
        UserFailure::ConnectFailed => CauseProfile::new(
            failure,
            vec![
                w(Hci, Local, 55.1),
                w(Hci, Nap, 30.0),
                w(L2cap, Local, 10.0),
                w(L2cap, Nap, 4.9),
            ],
            0.0,
        ),
        UserFailure::PanConnectFailed => {
            CauseProfile::new(failure, vec![w(Sdp, Local, 96.5), w(Hci, Local, 3.5)], 0.0)
        }
        UserFailure::BindFailed => CauseProfile::new(
            failure,
            vec![
                w(Hci, Local, 59.6),
                w(Bnep, Local, 21.9),
                w(Hotplug, Local, 18.5),
            ],
            0.0,
        ),
        UserFailure::SwitchRoleRequestFailed => {
            CauseProfile::new(failure, vec![w(Hci, Local, 91.1)], 8.9)
        }
        UserFailure::SwitchRoleCommandFailed => CauseProfile::new(
            failure,
            vec![
                w(Bcsp, Local, 49.7),
                w(Bnep, Local, 18.8),
                w(Hci, Local, 10.9),
                w(Hci, Nap, 2.4),
                w(L2cap, Local, 0.9),
                w(L2cap, Nap, 4.4),
            ],
            12.9,
        ),
        UserFailure::PacketLoss => CauseProfile::new(
            failure,
            vec![
                w(Hci, Local, 55.0),
                w(Hci, Nap, 10.1),
                w(L2cap, Local, 16.0),
                w(L2cap, Nap, 13.0),
                w(Usb, Local, 3.0),
                w(Bcsp, Local, 2.9),
            ],
            0.0,
        ),
        UserFailure::DataMismatch => CauseProfile::new(failure, vec![], 100.0),
    }
}

/// Table 3: per failure, the percentage of occurrences each SIRA
/// recovers (columns in cascade order), or `None` when the paper defines
/// no recovery (data mismatch — "not realistically recoverable").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SiraProfiles;

impl SiraProfiles {
    /// Row for `failure`: seven percentages summing to 100, or `None`.
    pub fn row(failure: UserFailure) -> Option<[f64; 7]> {
        match failure {
            UserFailure::InquiryScanFailed => Some([0.0, 40.1, 34.5, 22.0, 3.1, 0.3, 0.0]),
            UserFailure::SdpSearchFailed => Some([0.0, 7.2, 39.8, 30.0, 1.8, 20.1, 1.1]),
            UserFailure::NapNotFound => Some([0.0, 0.0, 61.4, 28.4, 0.5, 9.0, 0.7]),
            UserFailure::ConnectFailed => Some([0.1, 0.5, 14.8, 55.8, 3.2, 25.2, 0.4]),
            UserFailure::PanConnectFailed => Some([0.0, 46.4, 35.7, 12.5, 0.2, 5.2, 0.0]),
            UserFailure::BindFailed => Some([0.0, 5.5, 62.4, 30.0, 0.1, 1.7, 0.3]),
            UserFailure::SwitchRoleRequestFailed => Some([0.0, 17.5, 48.2, 28.4, 0.5, 5.4, 0.0]),
            UserFailure::SwitchRoleCommandFailed => Some([0.0, 63.7, 20.4, 11.3, 1.2, 2.4, 1.0]),
            UserFailure::PacketLoss => Some([5.9, 28.5, 19.8, 32.9, 3.9, 8.6, 0.4]),
            UserFailure::DataMismatch => None,
        }
    }

    /// Percentage of `failure` occurrences recovered by SIRAs 1–3
    /// (the paper's coverage criterion: no app restart, no reboot).
    pub fn coverage_1_to_3(failure: UserFailure) -> f64 {
        Self::row(failure).map_or(0.0, |r| r[0] + r[1] + r[2])
    }

    /// Samples the severity (1–7) at which a `failure` occurrence is
    /// recovered, or `None` for unrecoverable failures.
    pub fn sample_severity(failure: UserFailure, rng: &mut SimRng) -> Option<u8> {
        let row = Self::row(failure)?;
        let cat = Categorical::new(&row).expect("valid SIRA row");
        Some(cat.sample(rng) as u8 + 1)
    }
}

/// Fraction (0–1) of each failure type the paper's masking strategies
/// eliminate:
///
/// * **bind failed** — fully masked by waiting for the L2CAP handle
///   (T_C) and the hotplug/BNEP interface configuration (T_H);
/// * **NAP not found** / **switch-role command failed** — repeating the
///   command up to 2 times with 1 s spacing lets the transient cause
///   disappear (we model a 95 % mask rate);
/// * **PAN connect failed** — 96.5 % manifest when the SDP search is
///   skipped; always performing SDP first masks exactly those.
pub fn masking_fraction(failure: UserFailure) -> f64 {
    match failure {
        UserFailure::BindFailed => 1.0,
        UserFailure::NapNotFound | UserFailure::SwitchRoleCommandFailed => 0.95,
        UserFailure::PanConnectFailed => 0.965,
        _ => 0.0,
    }
}

/// Expected percentage of all failures eliminated by masking under the
/// ground-truth mix (Table 4 reports 58 %).
pub fn expected_masking_percent() -> f64 {
    UserFailure::ALL
        .iter()
        .map(|&f| FAILURE_MIX[f.index()] * masking_fraction(f))
        .sum()
}

/// Expected SIRA-only coverage percentage (failures recovered by actions
/// 1–3) under the ground-truth mix (Table 4 reports 58.4 %).
pub fn expected_coverage_percent() -> f64 {
    UserFailure::ALL
        .iter()
        .map(|&f| FAILURE_MIX[f.index()] * SiraProfiles::coverage_1_to_3(f) / 100.0)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_sums_to_100() {
        let total: f64 = FAILURE_MIX.iter().sum();
        assert!((total - 100.0).abs() < 1e-9, "mix total {total}");
    }

    #[test]
    fn all_cause_rows_valid() {
        for f in UserFailure::ALL {
            let p = cause_profile(f);
            let total: f64 = p.causes().iter().map(|c| c.percent).sum::<f64>() + p.none_percent();
            assert!((total - 100.0).abs() < 0.5, "{f} row {total}");
        }
    }

    #[test]
    fn prose_constraints_hold() {
        use CauseSite::*;
        use SystemComponent::*;
        // Connect failed: 85.1 % HCI (local + NAP).
        let c = cause_profile(UserFailure::ConnectFailed);
        let hci = c.percent_for(Hci, Local) + c.percent_for(Hci, Nap);
        assert!((hci - 85.1).abs() < 1e-9);
        // PAN connect failed: 96.5 % SDP.
        let p = cause_profile(UserFailure::PanConnectFailed);
        assert!((p.percent_for(Sdp, Local) - 96.5).abs() < 1e-9);
        // Switch role request: 91.1 % HCI.
        let s = cause_profile(UserFailure::SwitchRoleRequestFailed);
        assert!((s.percent_for(Hci, Local) - 91.1).abs() < 1e-9);
        // Switch role command: 49.7 % BCSP, 18.8 % BNEP, HCI 10.9/2.4,
        // L2CAP 0.9/4.4 — all from the prose.
        let sc = cause_profile(UserFailure::SwitchRoleCommandFailed);
        assert!((sc.percent_for(Bcsp, Local) - 49.7).abs() < 1e-9);
        assert!((sc.percent_for(Bnep, Local) - 18.8).abs() < 1e-9);
        assert!((sc.percent_for(Hci, Local) - 10.9).abs() < 1e-9);
        assert!((sc.percent_for(Hci, Nap) - 2.4).abs() < 1e-9);
        assert!((sc.percent_for(L2cap, Local) - 0.9).abs() < 1e-9);
        assert!((sc.percent_for(L2cap, Nap) - 4.4).abs() < 1e-9);
        // Inquiry/scan and data mismatch: no relationships found.
        assert_eq!(
            cause_profile(UserFailure::InquiryScanFailed).none_percent(),
            100.0
        );
        assert_eq!(
            cause_profile(UserFailure::DataMismatch).none_percent(),
            100.0
        );
    }

    #[test]
    fn column_totals_match_table2() {
        use CauseSite::*;
        use SystemComponent::*;
        let total_for = |comp: SystemComponent| -> f64 {
            UserFailure::ALL
                .iter()
                .map(|&f| {
                    let p = cause_profile(f);
                    FAILURE_MIX[f.index()] * (p.percent_for(comp, Local) + p.percent_for(comp, Nap))
                        / 100.0
                })
                .sum()
        };
        assert!(
            (total_for(Hci) - 49.9).abs() < 1.0,
            "HCI {}",
            total_for(Hci)
        );
        assert!(
            (total_for(Sdp) - 21.1).abs() < 1.0,
            "SDP {}",
            total_for(Sdp)
        );
        assert!(
            (total_for(L2cap) - 11.4).abs() < 1.5,
            "L2CAP {}",
            total_for(L2cap)
        );
        assert!(
            (total_for(Bnep) - 8.5).abs() < 1.0,
            "BNEP {}",
            total_for(Bnep)
        );
        assert!(
            (total_for(Hotplug) - 7.0).abs() < 0.5,
            "HOTPLUG {}",
            total_for(Hotplug)
        );
        assert!(
            (total_for(Bcsp) - 1.1).abs() < 0.5,
            "BCSP {}",
            total_for(Bcsp)
        );
        assert!((total_for(Usb) - 1.0).abs() < 0.5, "USB {}", total_for(Usb));
    }

    #[test]
    fn sira_rows_sum_to_100() {
        for f in UserFailure::ALL {
            if let Some(row) = SiraProfiles::row(f) {
                let total: f64 = row.iter().sum();
                assert!((total - 100.0).abs() < 0.5, "{f} SIRA row {total}");
            } else {
                assert_eq!(f, UserFailure::DataMismatch);
            }
        }
    }

    #[test]
    fn sira_prose_constraints() {
        // NAP not found: stack reset 61.4 %.
        assert_eq!(
            SiraProfiles::row(UserFailure::NapNotFound).unwrap()[2],
            61.4
        );
        // Packet loss: IP socket reset 5.9 %.
        assert_eq!(SiraProfiles::row(UserFailure::PacketLoss).unwrap()[0], 5.9);
        // Connect failed: 84.6 % at severity >= app restart.
        let c = SiraProfiles::row(UserFailure::ConnectFailed).unwrap();
        let severe: f64 = c[3..].iter().sum();
        assert!((severe - 84.6).abs() < 0.1, "connect severe {severe}");
    }

    #[test]
    fn masking_matches_table4() {
        let m = expected_masking_percent();
        assert!((m - 58.0).abs() < 1.0, "masking {m}");
    }

    #[test]
    fn coverage_matches_table4() {
        let c = expected_coverage_percent();
        assert!((c - 58.4).abs() < 1.0, "coverage {c}");
    }

    #[test]
    fn sampling_respects_row() {
        let mut rng = SimRng::seed_from(77);
        let p = cause_profile(UserFailure::PanConnectFailed);
        let n = 20_000;
        let sdp_hits = (0..n)
            .filter(|_| {
                matches!(
                    p.sample(&mut rng),
                    Some((SystemComponent::Sdp, CauseSite::Local))
                )
            })
            .count();
        let freq = sdp_hits as f64 / n as f64;
        assert!((freq - 0.965).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn severity_sampling_distribution() {
        let mut rng = SimRng::seed_from(78);
        let n = 50_000;
        let mut counts = [0u32; 7];
        for _ in 0..n {
            let s = SiraProfiles::sample_severity(UserFailure::NapNotFound, &mut rng).unwrap();
            counts[s as usize - 1] += 1;
        }
        assert_eq!(counts[0], 0);
        assert_eq!(counts[1], 0);
        let stack_reset = counts[2] as f64 / n as f64;
        assert!((stack_reset - 0.614).abs() < 0.01, "stack {stack_reset}");
        assert!(SiraProfiles::sample_severity(UserFailure::DataMismatch, &mut rng).is_none());
    }

    #[test]
    fn unrecoverable_failure_has_zero_coverage() {
        assert_eq!(
            SiraProfiles::coverage_1_to_3(UserFailure::DataMismatch),
            0.0
        );
        assert!((SiraProfiles::coverage_1_to_3(UserFailure::BindFailed) - 67.9).abs() < 1e-9);
    }
}
