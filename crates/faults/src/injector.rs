//! Calibrated fault activation for the control-plane workload phases.
//!
//! Each `BlueTest` cycle walks through inquiry → SDP search → L2CAP
//! connect → PAN connect → bind → role switch → transfer. The injector
//! decides, per phase execution, whether a user-level failure manifests
//! (substituting for 18 months of real field faults), which system-level
//! cause it has (Table 2 ground truth from [`crate::profiles`]), and
//! which concrete [`SystemFault`] entries the cause writes into which
//! system log (local or NAP — error propagation).
//!
//! Base rates are calibrated so that, with the paper's phase
//! frequencies (inquiry and SDP each performed with probability ½, the
//! connect chain once per cycle) and the testbed composition (2 of 12
//! PANU hosts bind-prone, 4 of 12 on BCSP), the per-cycle failure
//! probability is ≈ 1.2 % (the paper reports *piconet-level* MTTF —
//! "each 30 minutes on average a node in the piconet fails" — so six
//! PANUs share the 630–845 s budget) with type shares equal to
//! [`crate::profiles::FAILURE_MIX`] — which yields the paper's baseline
//! MTTF ≈ 630–845 s at a ~45 s mean cycle. Packet loss and data
//! mismatch are *not* injected here: they emerge from `btpan-baseband`
//! (plus the latent/stress models); the injector only tops up the
//! residual link-break hazard so totals stay calibrated.

use crate::profiles::{cause_profile, CauseProfile};
use crate::quirks::HostQuirks;
use crate::types::{CauseSite, SystemComponent, SystemFault, UserFailure};
use btpan_sim::prelude::*;

/// A workload phase the injector can be consulted about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Device inquiry/scan.
    Inquiry,
    /// SDP service search (can fail outright, or fail to find the NAP).
    SdpSearch,
    /// L2CAP connection establishment.
    L2capConnect,
    /// PAN (BNEP) connection on top of L2CAP. The flag records whether
    /// an SDP search preceded it in this cycle — 96.5 % of PAN-connect
    /// failures manifest when it did not.
    PanConnect {
        /// True when the cycle performed an SDP search first.
        sdp_done: bool,
    },
    /// Binding the IP socket to the BNEP interface.
    Bind,
    /// Issuing the master/slave switch request.
    SwitchRoleRequest,
    /// Completion of the switch command.
    SwitchRoleCommand,
}

/// Per-phase base activation probabilities (average host).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InjectionConfig {
    /// P(inquiry fails) per executed inquiry.
    pub inquiry_fail: f64,
    /// P(SDP search aborts) per executed search.
    pub sdp_search_fail: f64,
    /// P(SDP completes but misses the NAP) per executed search.
    pub nap_not_found: f64,
    /// P(L2CAP connect fails) per attempt.
    pub connect_fail: f64,
    /// P(PAN connect fails) per attempt *without* a prior SDP search.
    pub pan_fail_no_sdp: f64,
    /// P(PAN connect fails) per attempt *with* a prior SDP search.
    pub pan_fail_with_sdp: f64,
    /// P(bind fails) on a bind-prone host; zero elsewhere.
    pub bind_fail_prone: f64,
    /// P(switch-role request lost) per attempt.
    pub sw_role_request_fail: f64,
    /// P(switch-role command aborts) per attempt on a BCSP host.
    pub sw_role_cmd_bcsp: f64,
    /// P(switch-role command aborts) per attempt on a USB host.
    pub sw_role_cmd_usb: f64,
    /// Residual link-break hazard per transferred payload, on top of the
    /// baseband drop process (interference broken links the baseband
    /// model does not capture).
    pub link_break_per_payload: f64,
    /// P(stack-data-corruption data mismatch) per transfer cycle, on top
    /// of CRC-escaping channel corruption.
    pub mismatch_per_cycle: f64,
    /// Global hazard scale (1.0 = paper calibration). The dependability
    /// experiments scale this to sweep failure rates.
    pub hazard_scale: f64,
}

impl Default for InjectionConfig {
    fn default() -> Self {
        InjectionConfig::paper_calibrated()
    }
}

impl InjectionConfig {
    /// The calibration described in the module docs.
    pub fn paper_calibrated() -> Self {
        InjectionConfig {
            inquiry_fail: 2.2e-5,
            sdp_search_fail: 1.1e-4,
            nap_not_found: 4.3e-3,
            connect_fail: 6.5e-4,
            pan_fail_no_sdp: 2.2e-5,
            pan_fail_with_sdp: 7.0e-7,
            bind_fail_prone: 1.1e-2,
            sw_role_request_fail: 8.0e-5,
            sw_role_cmd_bcsp: 5.4e-5,
            sw_role_cmd_usb: 6.7e-6,
            link_break_per_payload: 6.2e-7,
            mismatch_per_cycle: 9.1e-5,
            hazard_scale: 1.0,
        }
    }

    /// Scales every hazard by `scale` (for rate sweeps and ablations).
    pub fn scaled(mut self, scale: f64) -> Self {
        assert!(scale >= 0.0, "hazard scale must be non-negative");
        self.hazard_scale = scale;
        self
    }
}

/// One injected user-level failure, with its sampled system-level cause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedFailure {
    /// What the user perceives.
    pub failure: UserFailure,
    /// The related system-level error, if any ("no relationship found"
    /// failures like inquiry/scan carry none).
    pub cause: Option<(SystemComponent, CauseSite)>,
}

/// The fault injection engine. One instance per campaign; host variation
/// enters through [`HostQuirks`] at each call.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    cfg: InjectionConfig,
    profiles: Vec<CauseProfile>,
}

impl FaultInjector {
    /// Creates an injector with the given configuration.
    pub fn new(cfg: InjectionConfig) -> Self {
        let profiles = UserFailure::ALL.iter().map(|&f| cause_profile(f)).collect();
        FaultInjector { cfg, profiles }
    }

    /// The active configuration.
    pub fn config(&self) -> &InjectionConfig {
        &self.cfg
    }

    fn p(&self, base: f64) -> f64 {
        (base * self.cfg.hazard_scale).clamp(0.0, 1.0)
    }

    /// Consults the injector about one phase execution on a host with
    /// `quirks`. Returns the manifested failure with its sampled cause,
    /// or `None` when the phase proceeds cleanly.
    pub fn check_phase(
        &self,
        phase: Phase,
        quirks: HostQuirks,
        rng: &mut SimRng,
    ) -> Option<InjectedFailure> {
        let failure = match phase {
            Phase::Inquiry => rng
                .chance(self.p(self.cfg.inquiry_fail))
                .then_some(UserFailure::InquiryScanFailed),
            Phase::SdpSearch => {
                if rng.chance(self.p(self.cfg.sdp_search_fail)) {
                    Some(UserFailure::SdpSearchFailed)
                } else if rng.chance(self.p(self.cfg.nap_not_found)) {
                    Some(UserFailure::NapNotFound)
                } else {
                    None
                }
            }
            Phase::L2capConnect => rng
                .chance(self.p(self.cfg.connect_fail))
                .then_some(UserFailure::ConnectFailed),
            Phase::PanConnect { sdp_done } => {
                let base = if sdp_done {
                    self.cfg.pan_fail_with_sdp
                } else {
                    self.cfg.pan_fail_no_sdp
                };
                rng.chance(self.p(base))
                    .then_some(UserFailure::PanConnectFailed)
            }
            Phase::Bind => {
                let base = if quirks.bind_prone {
                    self.cfg.bind_fail_prone
                } else {
                    0.0
                };
                rng.chance(self.p(base)).then_some(UserFailure::BindFailed)
            }
            Phase::SwitchRoleRequest => rng
                .chance(self.p(self.cfg.sw_role_request_fail))
                .then_some(UserFailure::SwitchRoleRequestFailed),
            Phase::SwitchRoleCommand => {
                let base = if quirks.uses_bcsp {
                    self.cfg.sw_role_cmd_bcsp
                } else {
                    self.cfg.sw_role_cmd_usb
                };
                rng.chance(self.p(base))
                    .then_some(UserFailure::SwitchRoleCommandFailed)
            }
        }?;
        Some(self.materialize(failure, quirks, rng))
    }

    /// Residual link-break probability for a transfer of `payloads`
    /// baseband payloads (top-up over the baseband drop process).
    pub fn link_break_probability(&self, payloads: u64) -> f64 {
        let per = self.p(self.cfg.link_break_per_payload);
        1.0 - (1.0 - per).powf(payloads as f64)
    }

    /// P(stack-corruption data mismatch) for one transfer cycle.
    pub fn mismatch_probability(&self) -> f64 {
        self.p(self.cfg.mismatch_per_cycle)
    }

    /// Builds the full injected record for a user failure that has
    /// already been decided (used by the transfer path where the
    /// *trigger* is the baseband/latent/stress machinery).
    pub fn materialize(
        &self,
        failure: UserFailure,
        quirks: HostQuirks,
        rng: &mut SimRng,
    ) -> InjectedFailure {
        let mut cause = self.profiles[failure.index()].sample(rng);
        // A host without BCSP cannot log BCSP errors; resample onto HCI
        // (the transport-adjacent component) keeping the site.
        if let Some((SystemComponent::Bcsp, site)) = cause {
            if !quirks.uses_bcsp {
                cause = Some((SystemComponent::Hci, site));
            }
        }
        InjectedFailure { failure, cause }
    }

    /// Picks the concrete [`SystemFault`] a component logs for a given
    /// user failure (context-dependent: e.g. HCI errors behind a bind
    /// failure are invalid-handle — the socket binds before the L2CAP
    /// handle exists — while HCI errors behind connect/switch-role are
    /// command timeouts on a busy device).
    pub fn system_fault_for(
        &self,
        component: SystemComponent,
        failure: UserFailure,
        rng: &mut SimRng,
    ) -> SystemFault {
        match component {
            SystemComponent::Hci => match failure {
                UserFailure::BindFailed => SystemFault::HciInvalidHandle,
                UserFailure::SwitchRoleRequestFailed => SystemFault::HciCommandTimeout,
                UserFailure::SwitchRoleCommandFailed => SystemFault::HciInvalidHandle,
                UserFailure::ConnectFailed | UserFailure::PacketLoss => {
                    if rng.chance(0.8) {
                        SystemFault::HciCommandTimeout
                    } else {
                        SystemFault::HciInvalidHandle
                    }
                }
                _ => SystemFault::HciCommandTimeout,
            },
            SystemComponent::L2cap => SystemFault::L2capUnexpectedFrame,
            SystemComponent::Sdp => match failure {
                UserFailure::NapNotFound => SystemFault::SdpServiceUnavailable,
                _ => {
                    if rng.chance(0.6) {
                        SystemFault::SdpConnectionRefused
                    } else {
                        SystemFault::SdpServiceUnavailable
                    }
                }
            },
            SystemComponent::Bnep => match failure {
                UserFailure::SwitchRoleCommandFailed => SystemFault::BnepOccupied,
                _ => {
                    if rng.chance(0.5) {
                        SystemFault::BnepModuleMissing
                    } else {
                        SystemFault::BnepOccupied
                    }
                }
            },
            SystemComponent::Bcsp => {
                if rng.chance(0.7) {
                    SystemFault::BcspOutOfOrder
                } else {
                    SystemFault::BcspMissing
                }
            }
            SystemComponent::Usb => SystemFault::UsbAddressRejected,
            SystemComponent::Hotplug => SystemFault::HotplugTimeout,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from(0xFA11)
    }

    #[test]
    fn bind_failures_only_on_prone_hosts() {
        let inj = FaultInjector::new(InjectionConfig::paper_calibrated());
        let mut r = rng();
        let clean = HostQuirks::linux_pc();
        for _ in 0..10_000 {
            assert!(inj.check_phase(Phase::Bind, clean, &mut r).is_none());
        }
        let prone = HostQuirks::fedora_hal_bug();
        let hits = (0..10_000)
            .filter(|_| inj.check_phase(Phase::Bind, prone, &mut r).is_some())
            .count();
        let freq = hits as f64 / 10_000.0;
        assert!((freq - 0.011).abs() < 0.003, "freq {freq}");
    }

    #[test]
    fn pan_connect_mostly_fails_without_sdp() {
        let inj = FaultInjector::new(
            // scale up so the test converges quickly
            InjectionConfig::paper_calibrated().scaled(100.0),
        );
        let mut r = rng();
        let q = HostQuirks::linux_pc();
        let n = 50_000;
        let without = (0..n)
            .filter(|_| {
                matches!(
                    inj.check_phase(Phase::PanConnect { sdp_done: false }, q, &mut r),
                    Some(InjectedFailure {
                        failure: UserFailure::PanConnectFailed,
                        ..
                    })
                )
            })
            .count();
        let with = (0..n)
            .filter(|_| {
                inj.check_phase(Phase::PanConnect { sdp_done: true }, q, &mut r)
                    .is_some()
            })
            .count();
        assert!(without > with * 10, "without {without} with {with}");
    }

    #[test]
    fn bcsp_hosts_dominate_switch_role_command() {
        let inj = FaultInjector::new(InjectionConfig::paper_calibrated().scaled(50.0));
        let mut r = rng();
        let n = 40_000;
        let pda = (0..n)
            .filter(|_| {
                inj.check_phase(Phase::SwitchRoleCommand, HostQuirks::pda(), &mut r)
                    .is_some()
            })
            .count();
        let pc = (0..n)
            .filter(|_| {
                inj.check_phase(Phase::SwitchRoleCommand, HostQuirks::linux_pc(), &mut r)
                    .is_some()
            })
            .count();
        assert!(pda > pc * 4, "pda {pda} pc {pc}");
    }

    #[test]
    fn causes_follow_profiles() {
        let inj = FaultInjector::new(InjectionConfig::paper_calibrated());
        let mut r = rng();
        let q = HostQuirks::linux_pc();
        let n = 30_000;
        let mut hci = 0;
        for _ in 0..n {
            let inj_f = inj.materialize(UserFailure::ConnectFailed, q, &mut r);
            if matches!(inj_f.cause, Some((SystemComponent::Hci, _))) {
                hci += 1;
            }
        }
        let frac = hci as f64 / n as f64;
        assert!((frac - 0.851).abs() < 0.01, "HCI frac {frac}");
    }

    #[test]
    fn bcsp_causes_remapped_on_usb_hosts() {
        let inj = FaultInjector::new(InjectionConfig::paper_calibrated());
        let mut r = rng();
        for _ in 0..5_000 {
            let f = inj.materialize(
                UserFailure::SwitchRoleCommandFailed,
                HostQuirks::linux_pc(),
                &mut r,
            );
            assert!(
                !matches!(f.cause, Some((SystemComponent::Bcsp, _))),
                "USB host logged BCSP"
            );
        }
        // PDAs do log BCSP causes.
        let saw_bcsp = (0..5_000).any(|_| {
            matches!(
                inj.materialize(
                    UserFailure::SwitchRoleCommandFailed,
                    HostQuirks::pda(),
                    &mut r
                )
                .cause,
                Some((SystemComponent::Bcsp, _))
            )
        });
        assert!(saw_bcsp);
    }

    #[test]
    fn link_break_probability_composes() {
        let inj = FaultInjector::new(InjectionConfig::paper_calibrated());
        assert_eq!(inj.link_break_probability(0), 0.0);
        let p1 = inj.link_break_probability(100);
        let p2 = inj.link_break_probability(1000);
        assert!(p1 > 0.0 && p2 > p1 && p2 < 1.0);
    }

    #[test]
    fn hazard_scale_zero_silences_everything() {
        let inj = FaultInjector::new(InjectionConfig::paper_calibrated().scaled(0.0));
        let mut r = rng();
        for _ in 0..2_000 {
            assert!(inj
                .check_phase(Phase::SdpSearch, HostQuirks::pda(), &mut r)
                .is_none());
        }
        assert_eq!(inj.link_break_probability(10_000), 0.0);
        assert_eq!(inj.mismatch_probability(), 0.0);
    }

    #[test]
    fn context_dependent_system_faults() {
        let inj = FaultInjector::new(InjectionConfig::paper_calibrated());
        let mut r = rng();
        assert_eq!(
            inj.system_fault_for(SystemComponent::Hci, UserFailure::BindFailed, &mut r),
            SystemFault::HciInvalidHandle
        );
        assert_eq!(
            inj.system_fault_for(
                SystemComponent::Hci,
                UserFailure::SwitchRoleRequestFailed,
                &mut r
            ),
            SystemFault::HciCommandTimeout
        );
        assert_eq!(
            inj.system_fault_for(SystemComponent::Hotplug, UserFailure::BindFailed, &mut r),
            SystemFault::HotplugTimeout
        );
        assert_eq!(
            inj.system_fault_for(SystemComponent::Sdp, UserFailure::NapNotFound, &mut r),
            SystemFault::SdpServiceUnavailable
        );
    }

    #[test]
    fn phase_mix_approximates_failure_mix() {
        // With phase frequencies of the paper's workload and the testbed
        // host composition, the injected type shares should track
        // FAILURE_MIX for the control-plane types.
        use crate::profiles::FAILURE_MIX;
        let inj = FaultInjector::new(InjectionConfig::paper_calibrated());
        let mut r = rng();
        let hosts = [
            HostQuirks::linux_pc(),
            HostQuirks::linux_pc(),
            HostQuirks::fedora_hal_bug(),
            HostQuirks::windows_broadcom(),
            HostQuirks::pda(),
            HostQuirks::pda(),
        ];
        let mut counts = [0u64; 10];
        let cycles = 600_000;
        for i in 0..cycles {
            let q = hosts[i % hosts.len()];
            let sdp = r.chance(0.5);
            let mut phases: Vec<Phase> = Vec::new();
            if r.chance(0.5) {
                phases.push(Phase::Inquiry);
            }
            if sdp {
                phases.push(Phase::SdpSearch);
            }
            phases.extend([
                Phase::L2capConnect,
                Phase::PanConnect { sdp_done: sdp },
                Phase::Bind,
                Phase::SwitchRoleRequest,
                Phase::SwitchRoleCommand,
            ]);
            for ph in phases {
                if let Some(f) = inj.check_phase(ph, q, &mut r) {
                    counts[f.failure.index()] += 1;
                    break; // cycle aborts at first failure
                }
            }
        }
        let total: u64 = counts.iter().sum();
        assert!(total > 2_000, "too few injected failures: {total}");
        // shares are noisy at these rates; compare with wide bands
        // Control-plane share of the mix (packet loss + mismatch are
        // produced elsewhere): renormalize and compare the big rows.
        let control_mix: f64 = FAILURE_MIX.iter().sum::<f64>() - FAILURE_MIX[8] - FAILURE_MIX[9];
        let expect_bind = FAILURE_MIX[5] / control_mix;
        let got_bind = counts[5] as f64 / total as f64;
        assert!(
            (got_bind - expect_bind).abs() < 0.06,
            "bind {got_bind} vs {expect_bind}"
        );
        let expect_nnf = FAILURE_MIX[2] / control_mix;
        let got_nnf = counts[2] as f64 / total as f64;
        assert!(
            (got_nnf - expect_nnf).abs() < 0.06,
            "nnf {got_nnf} vs {expect_nnf}"
        );
    }
}
