//! Channel-stress amplification for sustained transfers (Figure 3c).
//!
//! The paper pinpoints P2P and streaming as the most packet-loss-prone
//! applications: "they are characterized by long sessions with
//! continuous data transfer, which overload the channel and stress its
//! time-based synchronization mechanism", while Web/Mail/FTP's
//! intermittent transfers go easier on the ACL channel. Two effects
//! compose:
//!
//! 1. **exposure** — more bytes per cycle means more baseband payloads,
//!    each a drop opportunity (emerges from `btpan-baseband` for free);
//! 2. **stress** — sustained slot occupation degrades the time-division
//!    synchronization; we model a hazard multiplier that grows with the
//!    channel duty factor of the running application, saturating at
//!    `1 + alpha`.

/// Multiplicative packet-loss hazard model driven by channel duty.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StressModel {
    /// Maximum extra hazard at full duty (multiplier = `1 + alpha`).
    pub alpha: f64,
}

impl Default for StressModel {
    fn default() -> Self {
        StressModel::typical()
    }
}

impl StressModel {
    /// Paper-shape calibration: full-duty transfers suffer ~2.2× the
    /// per-payload loss hazard of fully intermittent ones.
    pub fn typical() -> Self {
        StressModel { alpha: 1.2 }
    }

    /// Hazard multiplier for an application with channel duty factor
    /// `duty` in `[0, 1]` (fraction of the session the ACL channel is
    /// continuously occupied).
    ///
    /// # Panics
    ///
    /// Panics if `duty` is outside `[0, 1]`.
    pub fn multiplier(&self, duty: f64) -> f64 {
        assert!((0.0..=1.0).contains(&duty), "duty factor outside [0,1]");
        1.0 + self.alpha * duty * duty
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiplier_monotone_in_duty() {
        let m = StressModel::typical();
        assert_eq!(m.multiplier(0.0), 1.0);
        assert!(m.multiplier(0.3) < m.multiplier(0.7));
        assert!((m.multiplier(1.0) - (1.0 + m.alpha)).abs() < 1e-12);
    }

    #[test]
    fn convexity_punishes_sustained_duty() {
        // duty^2: two half-duty sessions stress less than one full-duty.
        let m = StressModel::typical();
        let two_half = 2.0 * (m.multiplier(0.5) - 1.0);
        let one_full = m.multiplier(1.0) - 1.0;
        assert!(one_full > two_half);
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn rejects_bad_duty() {
        let _ = StressModel::typical().multiplier(1.5);
    }
}
