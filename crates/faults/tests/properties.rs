//! Property-based tests over the fault profiles and injection.

use btpan_faults::injector::{FaultInjector, InjectionConfig, Phase};
use btpan_faults::profiles::{cause_profile, SiraProfiles};
use btpan_faults::{HostQuirks, UserFailure};
use btpan_sim::prelude::*;
use proptest::prelude::*;

proptest! {
    #[test]
    fn severity_always_in_range(seed in 0u64..5_000, f_idx in 0usize..10) {
        let f = UserFailure::ALL[f_idx];
        let mut rng = SimRng::seed_from(seed);
        match SiraProfiles::sample_severity(f, &mut rng) {
            Some(s) => prop_assert!((1..=7).contains(&s)),
            None => prop_assert_eq!(f, UserFailure::DataMismatch),
        }
    }

    #[test]
    fn sampled_causes_come_from_the_profile(seed in 0u64..2_000, f_idx in 0usize..10) {
        let f = UserFailure::ALL[f_idx];
        let profile = cause_profile(f);
        let mut rng = SimRng::seed_from(seed);
        for _ in 0..50 {
            if let Some((component, site)) = profile.sample(&mut rng) {
                prop_assert!(
                    profile.percent_for(component, site) > 0.0,
                    "{f}: sampled ({component}, {site}) has zero weight"
                );
            }
        }
    }

    #[test]
    fn scaled_injection_never_exceeds_probability_one(scale in 0.0f64..1_000.0, seed in 0u64..500) {
        let inj = FaultInjector::new(InjectionConfig::paper_calibrated().scaled(scale));
        let mut rng = SimRng::seed_from(seed);
        // At absurd scales everything fails, but nothing panics and the
        // phases still return coherent failures.
        for _ in 0..20 {
            if let Some(out) = inj.check_phase(Phase::SdpSearch, HostQuirks::pda(), &mut rng) {
                prop_assert!(matches!(
                    out.failure,
                    UserFailure::SdpSearchFailed | UserFailure::NapNotFound
                ));
            }
        }
        prop_assert!(inj.link_break_probability(1_000_000) <= 1.0);
        prop_assert!(inj.mismatch_probability() <= 1.0);
    }

    #[test]
    fn phase_failures_match_phase(seed in 0u64..2_000) {
        let inj = FaultInjector::new(InjectionConfig::paper_calibrated().scaled(100.0));
        let mut rng = SimRng::seed_from(seed);
        let cases = [
            (Phase::Inquiry, vec![UserFailure::InquiryScanFailed]),
            (Phase::L2capConnect, vec![UserFailure::ConnectFailed]),
            (Phase::Bind, vec![UserFailure::BindFailed]),
            (Phase::SwitchRoleRequest, vec![UserFailure::SwitchRoleRequestFailed]),
            (Phase::SwitchRoleCommand, vec![UserFailure::SwitchRoleCommandFailed]),
        ];
        for (phase, expected) in cases {
            if let Some(out) = inj.check_phase(phase, HostQuirks::fedora_hal_bug(), &mut rng) {
                prop_assert!(expected.contains(&out.failure), "{phase:?} -> {}", out.failure);
            }
        }
    }
}
