//! Property tests: the streaming merge + online coalescence are
//! byte-identical to the batch `merge` + `coalesce` pipeline — for any
//! generated multi-node record stream, any delivery permutation, and
//! under chaos-injected duplication/reordering/truncation.
//!
//! The streaming runs use a watermark lag covering the whole time
//! horizon, so no record is ever late: every divergence from batch is
//! then a real algorithmic difference, not a lateness policy choice.

use btpan_collect::chaos::{inject, ChaosConfig};
use btpan_collect::coalesce::coalesce;
use btpan_collect::entry::{LogRecord, SystemLogEntry, TestLogEntry, WorkloadTag};
use btpan_collect::trace::{export_trace, repository_from_records};
use btpan_faults::{SystemFault, UserFailure};
use btpan_sim::time::{SimDuration, SimTime};
use btpan_stream::{batch_reference, stream_records, StreamConfig};
use proptest::prelude::*;

const NAP: u64 = 0;

/// Beyond any generated timestamp: nothing is ever late.
const FULL_HORIZON_LAG: SimDuration = SimDuration::from_secs(1_000_000);

/// Builds a canonical multi-node record set from `(time, kind)` pairs:
/// NAP system records, PANU failures (with packet types) and PANU
/// system records, seq-numbered in canonical order.
fn records_from_spec(spec: &[(u64, u8)]) -> Vec<LogRecord> {
    let mut items: Vec<(u64, u8)> = spec.to_vec();
    items.sort_unstable();
    items
        .iter()
        .enumerate()
        .map(|(i, &(t, kind))| {
            let seq = i as u64;
            let at = SimTime::from_secs(t);
            let node = 1 + u64::from(kind % 3);
            match kind % 8 {
                0 | 1 => LogRecord::from_system(
                    seq,
                    SystemLogEntry::new(at, NAP, SystemFault::L2capUnexpectedFrame),
                ),
                2 | 3 => LogRecord::from_system(
                    seq,
                    SystemLogEntry::new(at, node, SystemFault::HciCommandTimeout),
                ),
                4 => LogRecord::from_test(
                    seq,
                    TestLogEntry {
                        at,
                        node,
                        failure: UserFailure::PacketLoss,
                        workload: WorkloadTag::Random,
                        packet_type: Some(if kind > 100 { "DH5" } else { "DM1" }.to_string()),
                        packets_sent_before: Some(u64::from(kind)),
                        app: None,
                        distance_m: 5.0,
                        idle_before_s: None,
                    },
                ),
                _ => LogRecord::from_test(
                    seq,
                    TestLogEntry {
                        at,
                        node,
                        failure: UserFailure::ConnectFailed,
                        workload: WorkloadTag::Random,
                        packet_type: None,
                        packets_sent_before: None,
                        app: None,
                        distance_m: 5.0,
                        idle_before_s: None,
                    },
                ),
            }
        })
        .collect()
}

fn config(window_s: u64, shards: usize) -> StreamConfig {
    StreamConfig {
        shards,
        channel_capacity: 64,
        window: SimDuration::from_secs(window_s),
        watermark_lag: FULL_HORIZON_LAG,
        idle_timeout_ms: None,
        nap_node: NAP,
        keep_tuples: true,
        group_of: None,
    }
}

/// Deterministic Fisher–Yates permutation (no RNG dependency).
fn permute<T>(items: &mut [T], seed: u64) {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    for i in (1..items.len()).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        items.swap(i, j);
    }
}

proptest! {
    /// Any delivery permutation: streaming tuples and ordering are
    /// byte-identical to batch merge + coalesce, and the full snapshot
    /// matches the batch reference.
    #[test]
    fn streaming_equals_batch_under_permutation(
        spec in prop::collection::vec((0u64..50_000, 0u8..=255), 1..150),
        window_s in 1u64..2_000,
        shards in 1usize..5,
        perm_seed in 0u64..1_000,
    ) {
        let records = records_from_spec(&spec);
        let mut delivered = records.clone();
        permute(&mut delivered, perm_seed);

        let cfg = config(window_s, shards);
        let outcome = stream_records(delivered, &cfg);

        // Byte-identical tuples and ordering vs the batch algorithm.
        let batch_tuples = coalesce(&records, cfg.window);
        prop_assert_eq!(outcome.tuples.as_ref().unwrap(), &batch_tuples);

        // Full analysis snapshot vs the batch reference pipeline.
        let reference = batch_reference(&records, &cfg);
        prop_assert!(
            outcome.snapshot.analysis_eq(&reference),
            "streaming {:?} != batch {:?}", outcome.snapshot, reference
        );
        prop_assert_eq!(outcome.snapshot.late_quarantined, 0);
    }

    /// Chaos shipping (duplication, bounded reordering, truncation):
    /// both sides consume whatever survives parsing, and streaming
    /// still reproduces batch exactly. Duplicates must be dropped, not
    /// double-counted.
    #[test]
    fn streaming_equals_batch_under_chaos(
        spec in prop::collection::vec((0u64..50_000, 0u8..=255), 1..120),
        window_s in 1u64..2_000,
        shards in 1usize..5,
        chaos_seed in 0u64..10_000,
    ) {
        let records = records_from_spec(&spec);
        let trace = export_trace(&repository_from_records(&records));
        let chaos = ChaosConfig {
            corrupt_line_rate: 0.0,
            truncate_line_rate: 0.05,
            duplicate_rate: 0.25,
            reorder_window: 12,
            clock_skew_s: 0.0,
            seed: chaos_seed,
        };
        let (shipped, _stats) = inject(&trace, &chaos);

        // Parse in delivery order (what the wire actually carried).
        let delivered: Vec<LogRecord> = shipped
            .lines()
            .filter(|l| !l.trim().is_empty())
            .filter_map(|l| serde_json::from_str(l).ok())
            .collect();

        let cfg = config(window_s, shards);
        let outcome = stream_records(delivered.clone(), &cfg);
        let reference = batch_reference(&delivered, &cfg);
        prop_assert!(
            outcome.snapshot.analysis_eq(&reference),
            "streaming {:?} != batch {:?}", outcome.snapshot, reference
        );

        // Tuple-level equality against batch coalesce of the canonical
        // (deduplicated, sorted) survivors.
        let canonical = repository_from_records(&delivered).records();
        let batch_tuples = coalesce(&canonical, cfg.window);
        prop_assert_eq!(outcome.tuples.as_ref().unwrap(), &batch_tuples);

        // Nothing can be late under a full-horizon lag; every dropped
        // record must be an exact duplicate.
        prop_assert_eq!(outcome.snapshot.late_quarantined, 0);
        prop_assert_eq!(
            outcome.snapshot.duplicates_dropped as usize,
            delivered.len() - canonical.len()
        );
    }
}
