//! Bounded-memory acceptance: the merge retains O(shards ×
//! watermark-lag) records, not O(stream length). The stream here is
//! ~40× larger than the total channel capacity and ~60× larger than
//! the residency bound the watermark allows.

use btpan_collect::entry::{LogRecord, SystemLogEntry};
use btpan_faults::SystemFault;
use btpan_sim::time::{SimDuration, SimTime};
use btpan_stream::{stream_records, StreamConfig, StreamEngine};

const TOTAL: u64 = 5_000;

fn config() -> StreamConfig {
    StreamConfig {
        shards: 2,
        channel_capacity: 64,
        window: SimDuration::from_secs(30),
        watermark_lag: SimDuration::from_secs(60),
        idle_timeout_ms: None,
        nap_node: 0,
        keep_tuples: false,
        group_of: None,
    }
}

/// One record per second, nodes rotating so every shard advances.
fn records() -> Vec<LogRecord> {
    (0..TOTAL)
        .map(|i| {
            LogRecord::from_system(
                i,
                SystemLogEntry::new(
                    SimTime::from_secs(i),
                    1 + (i % 4),
                    SystemFault::HciCommandTimeout,
                ),
            )
        })
        .collect()
}

#[test]
fn resident_records_track_the_watermark_lag_not_the_stream() {
    let outcome = stream_records(records(), &config());
    assert_eq!(outcome.snapshot.records_emitted, TOTAL);
    let peak = outcome.snapshot.peak_resident_records;
    // At 1 record/s a 60 s lag keeps ~60 records in flight (plus
    // cross-shard skew). Anything near the stream length means the
    // merge is buffering instead of emitting.
    assert!(
        peak <= 256,
        "peak residency {peak} is not bounded by the watermark lag"
    );
    assert!(peak >= 1, "merge never buffered anything?");
    assert!(
        peak <= TOTAL / 10,
        "peak residency {peak} is within 10x of the stream length"
    );
    assert_eq!(outcome.snapshot.resident_records, 0, "finalize must drain");
}

#[test]
fn threaded_engine_stays_bounded_under_backpressure() {
    let cfg = config();
    // 5000 records vs 2 shards x 64 slots = 128 buffered at most in
    // channels: ~40x more input than channel capacity.
    assert!(TOTAL as usize >= 10 * cfg.shards * cfg.channel_capacity);
    let mut engine = StreamEngine::start(cfg);
    for rec in records() {
        engine.ingest(rec).unwrap();
    }
    let outcome = engine.finish();
    assert_eq!(outcome.snapshot.records_emitted, TOTAL);
    let peak = outcome.snapshot.peak_resident_records;
    // Channel capacity adds at most shards x capacity of skew on top of
    // the watermark-lag residency.
    assert!(
        peak <= 600,
        "threaded peak residency {peak} exceeds lag + channel skew bound"
    );
}
