//! Kill/resume property: checkpoint the engine at an arbitrary point
//! mid-ingest, throw the engine away, restore from the serialized
//! checkpoint, replay the rest of the source — the final results must
//! equal an uninterrupted run, for any cut point.

use btpan_collect::entry::{LogRecord, SystemLogEntry, TestLogEntry, WorkloadTag};
use btpan_faults::{SystemFault, UserFailure};
use btpan_sim::time::{SimDuration, SimTime};
use btpan_stream::{stream_records, Checkpoint, StreamConfig, StreamEngine};
use proptest::prelude::*;

const NAP: u64 = 0;

fn record(seq: u64, t: u64, kind: u8) -> LogRecord {
    let at = SimTime::from_secs(t);
    let node = 1 + u64::from(kind % 3);
    match kind % 5 {
        0 => LogRecord::from_system(
            seq,
            SystemLogEntry::new(at, NAP, SystemFault::SdpConnectionRefused),
        ),
        1 | 2 => LogRecord::from_system(
            seq,
            SystemLogEntry::new(at, node, SystemFault::HciCommandTimeout),
        ),
        _ => LogRecord::from_test(
            seq,
            TestLogEntry {
                at,
                node,
                failure: if kind.is_multiple_of(2) {
                    UserFailure::PacketLoss
                } else {
                    UserFailure::ConnectFailed
                },
                workload: WorkloadTag::Random,
                packet_type: if kind.is_multiple_of(2) {
                    Some("DM1".to_string())
                } else {
                    None
                },
                packets_sent_before: None,
                app: None,
                distance_m: 5.0,
                idle_before_s: None,
            },
        ),
    }
}

/// Canonical-order records (the shape a live trace tail delivers).
fn records_from_spec(spec: &[(u64, u8)]) -> Vec<LogRecord> {
    let mut times: Vec<(u64, u8)> = spec.to_vec();
    times.sort_unstable();
    times
        .iter()
        .enumerate()
        .map(|(i, &(t, kind))| record(i as u64, t, kind))
        .collect()
}

fn config() -> StreamConfig {
    StreamConfig {
        shards: 3,
        channel_capacity: 16,
        window: SimDuration::from_secs(330),
        // Bounded lag: records actually flow through the merge, so the
        // checkpoint captures live buffers, coalescers and estimators.
        watermark_lag: SimDuration::from_secs(900),
        idle_timeout_ms: None,
        nap_node: NAP,
        keep_tuples: true,
        group_of: None,
    }
}

proptest! {
    #[test]
    fn resume_converges_to_uninterrupted_run(
        spec in prop::collection::vec((0u64..20_000, 0u8..=255), 1..120),
        cut_sel in 0usize..10_000,
    ) {
        let records = records_from_spec(&spec);
        let cut = cut_sel % (records.len() + 1);
        let cfg = config();

        let uninterrupted = stream_records(records.clone(), &cfg);

        // Run to the cut point, checkpoint at a barrier, kill.
        let mut engine = StreamEngine::start(cfg);
        for rec in &records[..cut] {
            engine.ingest(rec.clone()).unwrap();
        }
        let cp = engine.checkpoint();
        prop_assert_eq!(cp.source_index as usize, cut);
        drop(engine);

        // Serialize / reparse: the wire form must carry the full state.
        let restored = Checkpoint::from_json(&cp.to_json()).unwrap();
        prop_assert_eq!(cp.to_json(), restored.to_json());

        // Resume and replay the source from where the checkpoint says.
        let mut engine = StreamEngine::resume(restored);
        prop_assert_eq!(engine.ingested() as usize, cut);
        for rec in &records[cut..] {
            engine.ingest(rec.clone()).unwrap();
        }
        let resumed = engine.finish();

        prop_assert!(
            resumed.snapshot.analysis_eq(&uninterrupted.snapshot),
            "resumed {:?} != uninterrupted {:?}",
            resumed.snapshot,
            uninterrupted.snapshot
        );
        prop_assert_eq!(&resumed.tuples, &uninterrupted.tuples);
        prop_assert_eq!(resumed.snapshot.late_quarantined, 0);
        prop_assert_eq!(resumed.snapshot.duplicates_dropped, 0);
    }
}
