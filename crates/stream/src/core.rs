//! The deterministic streaming pipeline shared by every transport.
//!
//! [`StreamCore`] is the single-threaded heart of the engine: shard
//! merge buffers, watermark bookkeeping, online coalescence and the
//! streaming estimators. The threaded [`crate::engine::StreamEngine`]
//! drives it under a mutex; tests and the batch cross-checks drive it
//! directly. Keeping all state transitions in one place is what makes
//! the equivalence and checkpoint arguments tractable.
//!
//! # Ordering and lateness
//!
//! Each shard tracks a *watermark* (max timestamp seen) and a
//! *frontier* (`watermark - lag`, the point up to which its input is
//! assumed complete). The global emit watermark `W` is the minimum
//! frontier over all shards; whenever `W` advances, every buffered
//! record with `at ≤ W` is emitted in `(timestamp, seq)` order.
//! A record is *late* — quarantined, never emitted — iff it arrives at
//! or behind its own shard's frontier. Because the frontier is a
//! function of the shard's own input prefix only, lateness (and hence
//! every downstream number) is independent of how the OS interleaves
//! shard threads.
//!
//! Emitted records always satisfy `at > W`-at-emission-time, so
//! closing tuples via `OnlineCoalescer::advance(W)` can never split a
//! tuple the batch algorithm would have kept together (see
//! [`crate::coalesce`]).
//!
//! # Memory bound
//!
//! Shard buffers only hold records in `(frontier, watermark]`, i.e.
//! O(shards × watermark-lag × arrival-rate) records — independent of
//! stream length. The NAP chain and open tuples are pruned as the
//! watermark passes them.

use crate::coalesce::OnlineCoalescer;
use crate::estimators::{EpisodeEstimator, MatrixCell, StreamSnapshot};
use crate::router::ShardRouter;
use btpan_collect::coalesce::Tuple;
use btpan_collect::entry::{LogRecord, NodeId};
use btpan_collect::relate::{observations_in, RelationshipMatrix};
use btpan_collect::trace::QuarantineReport;
use btpan_faults::UserFailure;
use btpan_sim::config::ConfigError;
use btpan_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The paper's Table 1 coalescence window (330 s).
pub const DEFAULT_WINDOW: SimDuration = SimDuration::from_secs(330);

pub(crate) mod metrics {
    use btpan_obs::{Counter, Gauge, Registry};
    use std::sync::OnceLock;

    pub(crate) struct StreamMetrics {
        /// `btpan_stream_records_emitted_total` — records released by the
        /// merge in canonical order.
        pub emitted: Counter,
        /// `btpan_stream_late_quarantined_total` — records refused for
        /// arriving at or behind their shard's frontier.
        pub late: Counter,
        /// `btpan_stream_duplicates_dropped_total` — exact and
        /// conflicting duplicates dropped by the merge.
        pub duplicates: Counter,
        /// `btpan_stream_resident_records` — records currently buffered
        /// across all shard merge buffers (the memory bound, live).
        pub resident: Gauge,
        /// `btpan_stream_watermark_lag_us` — max shard watermark minus
        /// the emitted watermark: how far emission trails ingestion.
        pub watermark_lag_us: Gauge,
    }

    pub(crate) fn handles() -> &'static StreamMetrics {
        static HANDLES: OnceLock<StreamMetrics> = OnceLock::new();
        HANDLES.get_or_init(|| {
            let registry = Registry::global();
            StreamMetrics {
                emitted: registry.counter("btpan_stream_records_emitted_total"),
                late: registry.counter("btpan_stream_late_quarantined_total"),
                duplicates: registry.counter("btpan_stream_duplicates_dropped_total"),
                resident: registry.gauge("btpan_stream_resident_records"),
                watermark_lag_us: registry.gauge("btpan_stream_watermark_lag_us"),
            }
        })
    }
}

/// Tuning knobs of the streaming engine. Serializable so a checkpoint
/// carries the exact configuration it was taken under.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamConfig {
    /// Number of ingestion shards (must be ≥ 1).
    pub shards: usize,
    /// Bounded capacity of each shard's ingest channel (backpressure).
    pub channel_capacity: usize,
    /// Tupling coalescence window.
    pub window: SimDuration,
    /// How far the emit frontier trails each shard's watermark. Larger
    /// lag tolerates more cross-shard skew; smaller lag emits sooner
    /// and buffers less.
    pub watermark_lag: SimDuration,
    /// Wall-clock silence after which a shard's frontier catches up to
    /// the global max watermark, so one quiet node cannot stall the
    /// merge (`None` disables the idle kick).
    pub idle_timeout_ms: Option<u64>,
    /// The NAP's node id (its System Log feeds every relationship).
    pub nap_node: NodeId,
    /// Retain closed global tuples in the outcome (tests; costs memory
    /// proportional to stream length).
    pub keep_tuples: bool,
    /// Optional `(node, group)` routing table: nodes sharing a group
    /// (e.g. a piconet id) share a shard. `None` — and any node absent
    /// from the table — routes by hashed node id, which keeps old
    /// checkpoints and single-piconet streams unchanged.
    pub group_of: Option<Vec<(NodeId, u64)>>,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            shards: 4,
            channel_capacity: 1024,
            window: DEFAULT_WINDOW,
            watermark_lag: SimDuration::from_secs(660),
            idle_timeout_ms: Some(100),
            nap_node: 0,
            keep_tuples: false,
            group_of: None,
        }
    }
}

impl StreamConfig {
    /// The configured idle timeout as a `Duration`, if enabled.
    pub fn idle_timeout(&self) -> Option<std::time::Duration> {
        self.idle_timeout_ms.map(std::time::Duration::from_millis)
    }

    /// The shard router this configuration implies: group-based when a
    /// routing table is present, plain node-id hashing otherwise.
    pub fn router(&self) -> ShardRouter {
        match &self.group_of {
            Some(table) => ShardRouter::with_groups(self.shards, table),
            None => ShardRouter::new(self.shards),
        }
    }

    /// Starts a validating builder. Struct literals remain supported;
    /// the builder rejects at construction time what `StreamCore::new`
    /// would otherwise panic on (zero shards) or silently misbehave
    /// under (zero window collapses every tuple, zero lag quarantines
    /// all reordering).
    pub fn builder() -> StreamConfigBuilder {
        StreamConfigBuilder {
            config: StreamConfig::default(),
        }
    }
}

/// Validating builder for [`StreamConfig`].
///
/// ```
/// use btpan_stream::StreamConfig;
///
/// let config = StreamConfig::builder().shards(8).build().unwrap();
/// assert_eq!(config.shards, 8);
///
/// let err = StreamConfig::builder().shards(0).build().unwrap_err();
/// assert_eq!(err.field, "shards");
/// ```
#[derive(Debug, Clone)]
pub struct StreamConfigBuilder {
    config: StreamConfig,
}

impl StreamConfigBuilder {
    /// Number of ingestion shards.
    pub fn shards(mut self, shards: usize) -> Self {
        self.config.shards = shards;
        self
    }

    /// Bounded capacity of each shard's ingest channel.
    pub fn channel_capacity(mut self, capacity: usize) -> Self {
        self.config.channel_capacity = capacity;
        self
    }

    /// Tupling coalescence window.
    pub fn window(mut self, window: SimDuration) -> Self {
        self.config.window = window;
        self
    }

    /// How far the emit frontier trails each shard's watermark.
    pub fn watermark_lag(mut self, lag: SimDuration) -> Self {
        self.config.watermark_lag = lag;
        self
    }

    /// Idle-shard kick timeout (`None` disables it).
    pub fn idle_timeout_ms(mut self, timeout_ms: Option<u64>) -> Self {
        self.config.idle_timeout_ms = timeout_ms;
        self
    }

    /// The NAP's node id.
    pub fn nap_node(mut self, node: NodeId) -> Self {
        self.config.nap_node = node;
        self
    }

    /// `(node, group)` shard-routing table (e.g. node → piconet id).
    pub fn group_of(mut self, table: Option<Vec<(NodeId, u64)>>) -> Self {
        self.config.group_of = table;
        self
    }

    /// Retain closed global tuples in the outcome.
    pub fn keep_tuples(mut self, keep: bool) -> Self {
        self.config.keep_tuples = keep;
        self
    }

    /// Validates and returns the config, failing at construction time.
    pub fn build(self) -> Result<StreamConfig, ConfigError> {
        if self.config.shards == 0 {
            return Err(ConfigError::new("shards", "must be at least 1"));
        }
        if self.config.channel_capacity == 0 {
            return Err(ConfigError::new("channel_capacity", "must be at least 1"));
        }
        if self.config.window.as_micros() == 0 {
            return Err(ConfigError::new(
                "window",
                "must be positive; a zero window collapses every tuple",
            ));
        }
        if self.config.watermark_lag.as_micros() == 0 {
            return Err(ConfigError::new(
                "watermark_lag",
                "must be positive; a zero lag quarantines any reordering",
            ));
        }
        Ok(self.config)
    }
}

/// Detailed quarantine entries are capped; the counters keep counting.
const MAX_QUARANTINE_DETAIL: usize = 1024;

/// Per-shard merge state.
#[derive(Debug, Clone)]
pub(crate) struct ShardState {
    /// Records awaiting emission, keyed by `(at µs, seq)`.
    pub(crate) buffer: BTreeMap<(u64, u64), LogRecord>,
    /// Max timestamp this shard has seen.
    pub(crate) watermark: Option<SimTime>,
    /// Lateness cutoff: records with `at ≤ frontier` are refused.
    /// Monotone; `None` until the watermark first exceeds the lag.
    pub(crate) frontier: Option<SimTime>,
    /// Set when the shard's input ended (frontier jumps to +∞).
    pub(crate) closed: bool,
}

impl ShardState {
    fn new() -> Self {
        ShardState {
            buffer: BTreeMap::new(),
            watermark: None,
            frontier: None,
            closed: false,
        }
    }
}

/// Everything a finished stream hands back.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamOutcome {
    /// The end-of-stream snapshot.
    pub snapshot: StreamSnapshot,
    /// Closed global tuples, when `keep_tuples` was set.
    pub tuples: Option<Vec<Tuple>>,
    /// Late/duplicate records refused by the merge.
    pub quarantine: QuarantineReport,
}

/// Single-threaded streaming pipeline state machine.
#[derive(Debug, Clone)]
pub struct StreamCore {
    config: StreamConfig,
    shards: Vec<ShardState>,
    emitted_watermark: Option<SimTime>,
    global: OnlineCoalescer,
    nodes: BTreeMap<NodeId, OnlineCoalescer>,
    /// Maximal suffix of emitted NAP system records whose consecutive
    /// gaps are all ≤ window: the chain a late-joining node's tuple
    /// would have started with in the batch merge.
    nap_chain: Vec<LogRecord>,
    episode: EpisodeEstimator,
    failures: BTreeMap<UserFailure, u64>,
    loss_by_packet_type: BTreeMap<String, u64>,
    matrix: RelationshipMatrix,
    tuples: Vec<Tuple>,
    quarantine: QuarantineReport,
    late_quarantined: u64,
    duplicates_dropped: u64,
    records_emitted: u64,
    resident: usize,
    peak_resident: usize,
    finalized: bool,
}

impl StreamCore {
    /// A fresh pipeline.
    ///
    /// # Panics
    ///
    /// Panics if `config.shards == 0`.
    pub fn new(config: StreamConfig) -> Self {
        assert!(config.shards > 0, "need at least one shard");
        let shards = (0..config.shards).map(|_| ShardState::new()).collect();
        let global = OnlineCoalescer::new(config.window);
        StreamCore {
            shards,
            global,
            config,
            emitted_watermark: None,
            nodes: BTreeMap::new(),
            nap_chain: Vec::new(),
            episode: EpisodeEstimator::new(),
            failures: BTreeMap::new(),
            loss_by_packet_type: BTreeMap::new(),
            matrix: RelationshipMatrix::new(),
            tuples: Vec::new(),
            quarantine: QuarantineReport::default(),
            late_quarantined: 0,
            duplicates_dropped: 0,
            records_emitted: 0,
            resident: 0,
            peak_resident: 0,
            finalized: false,
        }
    }

    /// The configuration this pipeline runs under.
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }

    /// Offers one record to `shard`'s merge buffer. Late records and
    /// duplicates are quarantined/dropped, everything else is buffered
    /// and the merge pumped.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn accept(&mut self, shard: usize, rec: LogRecord) {
        self.quarantine.total_lines += 1;
        let at = rec.at;
        let seq = rec.seq;
        let state = &self.shards[shard];
        if let Some(frontier) = state.frontier {
            if at <= frontier {
                self.late_quarantined += 1;
                metrics::handles().late.inc();
                self.quarantine_detail(
                    seq,
                    format!("late record: at {at} ≤ shard frontier {frontier}"),
                );
                return;
            }
        }
        let key = (at.as_micros(), seq);
        if let Some(existing) = state.buffer.get(&key) {
            metrics::handles().duplicates.inc();
            if *existing == rec {
                self.duplicates_dropped += 1;
                self.quarantine_detail(seq, "duplicate record".to_string());
            } else {
                self.duplicates_dropped += 1;
                self.quarantine_detail(
                    seq,
                    "conflicting duplicate: same (timestamp, seq), different content".to_string(),
                );
            }
            return;
        }
        let state = &mut self.shards[shard];
        state.buffer.insert(key, rec);
        if state.watermark.is_none_or(|wm| at > wm) {
            state.watermark = Some(at);
        }
        let lag = self.config.watermark_lag.as_micros();
        if let Some(wm) = state.watermark {
            if wm.as_micros() > lag {
                let f = SimTime::from_micros(wm.as_micros() - lag);
                if state.frontier.is_none_or(|old| f > old) {
                    state.frontier = Some(f);
                }
            }
        }
        self.quarantine.imported += 1;
        self.resident += 1;
        self.peak_resident = self.peak_resident.max(self.resident);
        self.pump();
    }

    /// Idle-shard kick: advances `shard`'s frontier to the max
    /// watermark over all shards, so a node that stopped logging does
    /// not stall the merge forever. Records the shard receives later
    /// with timestamps at or behind that point will be quarantined as
    /// late — the price of progress without input.
    pub fn mark_idle(&mut self, shard: usize) {
        let max_wm = self.shards.iter().filter_map(|s| s.watermark).max();
        let Some(max_wm) = max_wm else { return };
        let state = &mut self.shards[shard];
        if state.closed {
            return;
        }
        if state.frontier.is_none_or(|f| max_wm > f) {
            state.frontier = Some(max_wm);
            self.pump();
        }
    }

    /// Marks `shard`'s input as ended: its frontier jumps to +∞. When
    /// the last shard closes, the pipeline finalizes (all open tuples
    /// close).
    pub fn close_shard(&mut self, shard: usize) {
        {
            let state = &mut self.shards[shard];
            if state.closed {
                return;
            }
            state.closed = true;
            state.frontier = Some(SimTime::from_micros(u64::MAX));
        }
        self.pump();
        if self.shards.iter().all(|s| s.closed) {
            self.finalize();
        }
    }

    /// Closes every open tuple. Idempotent; called automatically when
    /// the last shard closes.
    pub fn finalize(&mut self) {
        if self.finalized {
            return;
        }
        self.finalized = true;
        // Draining a closed shard pumps with the +∞ frontier sentinel,
        // which must not leak into the reported watermark: the stream
        // is fully consumed, so the true watermark is the newest
        // timestamp any shard has seen.
        if self
            .emitted_watermark
            .is_some_and(|w| w.as_micros() == u64::MAX)
        {
            self.emitted_watermark = self.shards.iter().filter_map(|s| s.watermark).max();
        }
        if let Some(t) = self.global.finish() {
            self.close_global_tuple(t);
        }
        let nodes: Vec<NodeId> = self.nodes.keys().copied().collect();
        for node in nodes {
            let closed = self.nodes.get_mut(&node).expect("listed").finish();
            if let Some(t) = closed {
                self.close_node_tuple(node, t);
            }
        }
        self.nodes.clear();
        self.nap_chain.clear();
    }

    /// Emits everything allowed by the current minimum frontier.
    fn pump(&mut self) {
        let mut w = SimTime::from_micros(u64::MAX);
        for state in &self.shards {
            match state.frontier {
                None => return, // some shard has not established a frontier yet
                Some(f) => w = w.min(f),
            }
        }
        if self.emitted_watermark.is_some_and(|e| e >= w) {
            return;
        }
        let mut batch: Vec<LogRecord> = Vec::new();
        for state in &mut self.shards {
            if w.as_micros() == u64::MAX {
                batch.extend(std::mem::take(&mut state.buffer).into_values());
            } else {
                let keep = state.buffer.split_off(&(w.as_micros() + 1, 0));
                let take = std::mem::replace(&mut state.buffer, keep);
                batch.extend(take.into_values());
            }
        }
        self.resident -= batch.len();
        let emitted_now = batch.len() as u64;
        batch.sort_by_key(|r| (r.at, r.seq));
        for rec in batch {
            self.emit(rec);
        }
        self.advance_all(w);
        self.emitted_watermark = Some(w);
        let obs = metrics::handles();
        obs.emitted.add(emitted_now);
        obs.resident.set(self.resident as i64);
        // How far emission trails the fastest shard; the +∞ sentinel of
        // a closing pump means lag zero, not u64::MAX.
        let max_wm = self.shards.iter().filter_map(|s| s.watermark).max();
        let lag = match (max_wm, w.as_micros()) {
            (_, u64::MAX) => 0,
            (Some(wm), emitted) => wm.as_micros().saturating_sub(emitted),
            (None, _) => 0,
        };
        obs.watermark_lag_us
            .set(i64::try_from(lag).unwrap_or(i64::MAX));
    }

    /// Feeds one canonical-order record to every estimator.
    fn emit(&mut self, rec: LogRecord) {
        self.records_emitted += 1;
        if let Some(report) = rec.as_failure() {
            *self.failures.entry(report.failure).or_insert(0) += 1;
            if report.failure == UserFailure::PacketLoss {
                let key = report
                    .packet_type
                    .clone()
                    .unwrap_or_else(|| "unknown".to_string());
                *self.loss_by_packet_type.entry(key).or_insert(0) += 1;
            }
        }
        if let Some(t) = self.global.push(rec.clone()) {
            self.close_global_tuple(t);
        }
        if rec.node == self.config.nap_node {
            if rec.as_system().is_none() {
                // The NAP never produces Test reports; if one appears
                // the batch matrix would ignore it too.
                return;
            }
            // Extend the NAP active chain and fan the record out to
            // every live per-node pipeline (batch merges the NAP's
            // System Log into each node's stream).
            if let Some(last) = self.nap_chain.last().map(|r| r.at) {
                if rec.at.saturating_since(last) > self.config.window {
                    self.nap_chain.clear();
                }
            }
            self.nap_chain.push(rec.clone());
            let nodes: Vec<NodeId> = self.nodes.keys().copied().collect();
            for node in nodes {
                let closed = self.nodes.get_mut(&node).expect("listed").push(rec.clone());
                if let Some(t) = closed {
                    self.close_node_tuple(node, t);
                }
            }
        } else {
            let node = rec.node;
            if !self.nodes.contains_key(&node) {
                // First sight of this node: seed its pipeline with the
                // NAP chain its batch tuple would have started with.
                self.nodes.insert(
                    node,
                    OnlineCoalescer::seeded(self.config.window, self.nap_chain.clone()),
                );
            }
            let closed = self.nodes.get_mut(&node).expect("inserted").push(rec);
            if let Some(t) = closed {
                self.close_node_tuple(node, t);
            }
        }
    }

    /// Watermark-driven cleanup: close dead tuples, drop idle node
    /// pipelines, prune the NAP chain.
    fn advance_all(&mut self, w: SimTime) {
        if let Some(t) = self.global.advance(w) {
            self.close_global_tuple(t);
        }
        let nodes: Vec<NodeId> = self.nodes.keys().copied().collect();
        for node in nodes {
            let closed = self.nodes.get_mut(&node).expect("listed").advance(w);
            if let Some(t) = closed {
                self.close_node_tuple(node, t);
            }
        }
        self.nodes.retain(|_, c| !c.is_idle());
        if let Some(last) = self.nap_chain.last().map(|r| r.at) {
            if w.saturating_since(last) > self.config.window {
                self.nap_chain.clear();
            }
        }
    }

    fn close_global_tuple(&mut self, tuple: Tuple) {
        self.episode.observe(&tuple);
        if self.config.keep_tuples {
            self.tuples.push(tuple);
        }
    }

    fn close_node_tuple(&mut self, node: NodeId, tuple: Tuple) {
        for obs in observations_in(&tuple, node, self.config.nap_node) {
            self.matrix.record(obs);
        }
    }

    fn quarantine_detail(&mut self, seq: u64, reason: String) {
        if self.quarantine.quarantined.len() < MAX_QUARANTINE_DETAIL {
            self.quarantine.quarantined.push((seq as usize, reason));
        }
    }

    /// Point-in-time view of every estimator; callable mid-stream.
    pub fn snapshot(&self) -> StreamSnapshot {
        StreamSnapshot {
            records_emitted: self.records_emitted,
            late_quarantined: self.late_quarantined,
            duplicates_dropped: self.duplicates_dropped,
            watermark_us: self.emitted_watermark.map(SimTime::as_micros),
            resident_records: self.resident as u64,
            peak_resident_records: self.peak_resident as u64,
            episodes: self.episode.episodes(),
            mttf_s: self.episode.mttf_s(),
            mttr_s: self.episode.mttr_s(),
            availability: self.episode.availability(),
            failures: self.failures.clone(),
            loss_by_packet_type: self.loss_by_packet_type.clone(),
            matrix_cells: self
                .matrix
                .cells()
                .into_iter()
                .map(|(failure, cause, count)| MatrixCell {
                    failure,
                    cause,
                    count,
                })
                .collect(),
        }
    }

    /// The merge-refusal report (late + duplicate records).
    pub fn quarantine(&self) -> &QuarantineReport {
        &self.quarantine
    }

    /// Consumes the pipeline into its outcome (finalizes first).
    pub fn into_outcome(mut self) -> StreamOutcome {
        for shard in 0..self.shards.len() {
            self.close_shard(shard);
        }
        StreamOutcome {
            snapshot: self.snapshot(),
            tuples: self.config.keep_tuples.then_some(self.tuples),
            quarantine: self.quarantine,
        }
    }

    // ---- checkpoint plumbing (state capture/restore lives in
    // `crate::checkpoint`; these accessors expose the private fields
    // it needs without making them public API) ----

    pub(crate) fn shards_state(&self) -> &[ShardState] {
        &self.shards
    }

    pub(crate) fn emitted_watermark(&self) -> Option<SimTime> {
        self.emitted_watermark
    }

    pub(crate) fn global_coalescer(&self) -> &OnlineCoalescer {
        &self.global
    }

    pub(crate) fn node_coalescers(&self) -> &BTreeMap<NodeId, OnlineCoalescer> {
        &self.nodes
    }

    pub(crate) fn nap_chain(&self) -> &[LogRecord] {
        &self.nap_chain
    }

    pub(crate) fn episode(&self) -> &EpisodeEstimator {
        &self.episode
    }

    pub(crate) fn kept_tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    pub(crate) fn counters(&self) -> (u64, u64, u64, u64) {
        (
            self.records_emitted,
            self.late_quarantined,
            self.duplicates_dropped,
            self.peak_resident as u64,
        )
    }

    pub(crate) fn census(&self) -> (&BTreeMap<UserFailure, u64>, &BTreeMap<String, u64>) {
        (&self.failures, &self.loss_by_packet_type)
    }

    pub(crate) fn matrix_ref(&self) -> &RelationshipMatrix {
        &self.matrix
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        config: StreamConfig,
        shards: Vec<ShardState>,
        emitted_watermark: Option<SimTime>,
        global: OnlineCoalescer,
        nodes: BTreeMap<NodeId, OnlineCoalescer>,
        nap_chain: Vec<LogRecord>,
        episode: EpisodeEstimator,
        failures: BTreeMap<UserFailure, u64>,
        loss_by_packet_type: BTreeMap<String, u64>,
        matrix: RelationshipMatrix,
        tuples: Vec<Tuple>,
        quarantine: QuarantineReport,
        counters: (u64, u64, u64, u64),
    ) -> Self {
        assert_eq!(config.shards, shards.len(), "checkpoint shard count");
        let resident = shards.iter().map(|s| s.buffer.len()).sum();
        let (records_emitted, late_quarantined, duplicates_dropped, peak_resident) = counters;
        StreamCore {
            config,
            shards,
            emitted_watermark,
            global,
            nodes,
            nap_chain,
            episode,
            failures,
            loss_by_packet_type,
            matrix,
            tuples,
            quarantine,
            late_quarantined,
            duplicates_dropped,
            records_emitted,
            resident,
            peak_resident: (peak_resident as usize).max(resident),
            finalized: false,
        }
    }
}

/// Runs a record iterator through a fresh single-threaded pipeline —
/// the reference path for tests and the in-process cross-checks. The
/// records are routed with the standard [`ShardRouter`], so the result
/// is exactly what the threaded engine converges to.
pub fn stream_records<I>(records: I, config: &StreamConfig) -> StreamOutcome
where
    I: IntoIterator<Item = LogRecord>,
{
    let router = config.router();
    let mut core = StreamCore::new(config.clone());
    for rec in records {
        let shard = router.route(rec.node);
        core.accept(shard, rec);
    }
    core.into_outcome()
}
