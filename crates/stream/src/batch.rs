//! The batch reference: the exact DSN-2006 pipeline (dedup → merge →
//! coalesce → relate) folded into a [`StreamSnapshot`], so streaming
//! results can be compared field for field.

use crate::core::StreamConfig;
use crate::estimators::{EpisodeEstimator, MatrixCell, StreamSnapshot};
use btpan_collect::coalesce::coalesce;
use btpan_collect::entry::{LogRecord, NodeId};
use btpan_collect::relate::RelationshipMatrix;
use btpan_collect::trace::repository_from_records;
use btpan_faults::UserFailure;
use std::collections::BTreeMap;

/// Runs the batch pipeline over `records` (raw delivery order, possibly
/// with duplicates) under the same window/NAP settings as `config` and
/// returns the snapshot the streaming engine must converge to.
pub fn batch_reference(records: &[LogRecord], config: &StreamConfig) -> StreamSnapshot {
    // Canonicalize exactly like the collection pipeline: idempotent
    // repository storage (duplicate fingerprints dropped), then the
    // canonical (timestamp, seq) sort.
    let repo = repository_from_records(records);
    let canonical = repo.records();

    let mut episode = EpisodeEstimator::new();
    for tuple in coalesce(&canonical, config.window) {
        episode.observe(&tuple);
    }

    let mut failures: BTreeMap<UserFailure, u64> = BTreeMap::new();
    let mut loss_by_packet_type: BTreeMap<String, u64> = BTreeMap::new();
    for rec in &canonical {
        if let Some(report) = rec.as_failure() {
            *failures.entry(report.failure).or_insert(0) += 1;
            if report.failure == UserFailure::PacketLoss {
                let key = report
                    .packet_type
                    .clone()
                    .unwrap_or_else(|| "unknown".to_string());
                *loss_by_packet_type.entry(key).or_insert(0) += 1;
            }
        }
    }

    let nap_system = repo.system_records_of(config.nap_node);
    let node_streams: Vec<(NodeId, Vec<LogRecord>)> = repo
        .reporting_nodes()
        .into_iter()
        .filter(|&node| node != config.nap_node)
        .map(|node| (node, repo.records_of(node)))
        .collect();
    let matrix = RelationshipMatrix::from_node_logs(
        &node_streams,
        &nap_system,
        config.nap_node,
        config.window,
    );

    StreamSnapshot {
        records_emitted: canonical.len() as u64,
        late_quarantined: 0,
        duplicates_dropped: (records.len() - canonical.len()) as u64,
        watermark_us: canonical.last().map(|r| r.at.as_micros()),
        resident_records: 0,
        peak_resident_records: 0,
        episodes: episode.episodes(),
        mttf_s: episode.mttf_s(),
        mttr_s: episode.mttr_s(),
        availability: episode.availability(),
        failures,
        loss_by_packet_type,
        matrix_cells: matrix
            .cells()
            .into_iter()
            .map(|(failure, cause, count)| MatrixCell {
                failure,
                cause,
                count,
            })
            .collect(),
    }
}
