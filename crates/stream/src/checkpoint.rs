//! Checkpoint/resume: serialize the whole pipeline state, restart a
//! killed stream exactly where it left off.
//!
//! A checkpoint is taken at a *barrier* — the engine flushes every
//! shard channel first (see `StreamEngine::checkpoint`), so the
//! captured [`StreamCore`] state reflects exactly the first
//! `source_index` records of the source. Resuming means restoring the
//! core and replaying the source from `source_index`; every estimator
//! then continues the same fold it would have performed uninterrupted.

use crate::coalesce::OnlineCoalescer;
use crate::core::{ShardState, StreamConfig, StreamCore};
use crate::estimators::{EpisodeEstimator, MatrixCell, StreamSnapshot};
use btpan_collect::coalesce::Tuple;
use btpan_collect::entry::{LogRecord, NodeId};
use btpan_collect::trace::QuarantineReport;
use btpan_faults::UserFailure;
use btpan_sim::stats::RunningStats;
use btpan_sim::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Serializable Welford accumulator state. An empty accumulator is
/// stored as all zeros (not the infinity sentinels, which JSON cannot
/// carry) and restored via [`RunningStats::from_raw`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WelfordState {
    /// Observation count.
    pub n: u64,
    /// Running mean.
    pub mean: f64,
    /// Welford M2 (sum of squared deviations).
    pub m2: f64,
    /// Minimum observation (0 when empty).
    pub min: f64,
    /// Maximum observation (0 when empty).
    pub max: f64,
}

impl WelfordState {
    /// Captures an accumulator.
    pub fn capture(stats: &RunningStats) -> Self {
        WelfordState {
            n: stats.count(),
            mean: stats.mean().unwrap_or(0.0),
            m2: stats.raw_m2(),
            min: stats.min().unwrap_or(0.0),
            max: stats.max().unwrap_or(0.0),
        }
    }

    /// Rebuilds the accumulator.
    pub fn restore(&self) -> RunningStats {
        RunningStats::from_raw(self.n, self.mean, self.m2, self.min, self.max)
    }
}

/// Serializable [`OnlineCoalescer`] state (window comes from the
/// checkpoint's config).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoalescerState {
    /// The open tuple's records.
    pub current: Vec<LogRecord>,
    /// Timestamp of the last pushed record.
    pub last_at: Option<SimTime>,
}

impl CoalescerState {
    fn capture(c: &OnlineCoalescer) -> Self {
        CoalescerState {
            current: c.buffered_records().to_vec(),
            last_at: c.last_at(),
        }
    }

    fn restore(&self, window: btpan_sim::time::SimDuration) -> OnlineCoalescer {
        OnlineCoalescer::from_parts(window, self.current.clone(), self.last_at)
    }
}

/// Emission/refusal counters at checkpoint time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckpointCounters {
    /// Records emitted in canonical order.
    pub emitted: u64,
    /// Late records quarantined.
    pub late: u64,
    /// Duplicates dropped.
    pub duplicates: u64,
    /// High-water mark of buffered records.
    pub peak_resident: u64,
}

/// Serializable per-shard merge state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardCheckpoint {
    /// Buffered, not-yet-emitted records.
    pub buffer: Vec<LogRecord>,
    /// Max timestamp seen.
    pub watermark: Option<SimTime>,
    /// Lateness cutoff.
    pub frontier: Option<SimTime>,
    /// Input ended.
    pub closed: bool,
}

/// A complete, serializable pipeline checkpoint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Records of the source consumed before this checkpoint; resume
    /// replays the source from here.
    pub source_index: u64,
    /// The configuration the stream ran under.
    pub config: StreamConfig,
    /// Per-shard merge state.
    pub shards: Vec<ShardCheckpoint>,
    /// The last emitted watermark.
    pub emitted_watermark: Option<SimTime>,
    /// Global tupling coalescer.
    pub global: CoalescerState,
    /// Per-node relationship coalescers.
    pub nodes: Vec<(NodeId, CoalescerState)>,
    /// The NAP active chain.
    pub nap_chain: Vec<LogRecord>,
    /// TTF accumulator.
    pub ttf: WelfordState,
    /// TTR accumulator.
    pub ttr: WelfordState,
    /// End of the previous failure episode.
    pub prev_episode_end: Option<SimTime>,
    /// Failure episodes observed.
    pub episodes: u64,
    /// Failure census.
    pub failures: BTreeMap<UserFailure, u64>,
    /// Packet-loss census.
    pub loss_by_packet_type: BTreeMap<String, u64>,
    /// Relationship-matrix cells.
    pub matrix_cells: Vec<MatrixCell>,
    /// Emission/refusal counters.
    pub counters: CheckpointCounters,
    /// The merge quarantine report.
    pub quarantine: QuarantineReport,
    /// Closed global tuples, when `keep_tuples` was set.
    pub kept_tuples: Vec<Vec<LogRecord>>,
}

impl Checkpoint {
    /// Serializes to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("checkpoint serializes")
    }

    /// Parses a checkpoint back from JSON.
    ///
    /// # Errors
    ///
    /// Returns the underlying decode error on malformed input.
    pub fn from_json(json: &str) -> Result<Checkpoint, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// The snapshot this checkpoint would report (for display without
    /// restoring the whole pipeline).
    pub fn snapshot(&self) -> StreamSnapshot {
        self.clone().restore().snapshot()
    }

    /// Rebuilds the pipeline.
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint is internally inconsistent (shard count
    /// vs config).
    pub fn restore(self) -> StreamCore {
        let window = self.config.window;
        let shards = self
            .shards
            .into_iter()
            .map(|s| {
                let mut state = ShardState {
                    buffer: BTreeMap::new(),
                    watermark: s.watermark,
                    frontier: s.frontier,
                    closed: s.closed,
                };
                for rec in s.buffer {
                    state.buffer.insert((rec.at.as_micros(), rec.seq), rec);
                }
                state
            })
            .collect();
        let nodes: BTreeMap<NodeId, OnlineCoalescer> = self
            .nodes
            .into_iter()
            .map(|(node, c)| (node, c.restore(window)))
            .collect();
        let episode = EpisodeEstimator::from_parts(
            self.ttf.restore(),
            self.ttr.restore(),
            self.prev_episode_end,
            self.episodes,
        );
        let mut matrix = btpan_collect::relate::RelationshipMatrix::new();
        for cell in &self.matrix_cells {
            matrix.add_count(cell.failure, cell.cause, cell.count);
        }
        let tuples: Vec<Tuple> = self
            .kept_tuples
            .into_iter()
            .map(|records| Tuple { records })
            .collect();
        StreamCore::from_parts(
            self.config,
            shards,
            self.emitted_watermark,
            self.global.restore(window),
            nodes,
            self.nap_chain,
            episode,
            self.failures,
            self.loss_by_packet_type,
            matrix,
            tuples,
            self.quarantine,
            (
                self.counters.emitted,
                self.counters.late,
                self.counters.duplicates,
                self.counters.peak_resident,
            ),
        )
    }
}

/// Captures the full pipeline state. `source_index` is how many source
/// records were consumed before the barrier.
pub fn capture(core: &StreamCore, source_index: u64) -> Checkpoint {
    let (failures, loss) = core.census();
    let (emitted, late, duplicates, peak_resident) = core.counters();
    Checkpoint {
        source_index,
        config: core.config().clone(),
        shards: core
            .shards_state()
            .iter()
            .map(|s| ShardCheckpoint {
                buffer: s.buffer.values().cloned().collect(),
                watermark: s.watermark,
                frontier: s.frontier,
                closed: s.closed,
            })
            .collect(),
        emitted_watermark: core.emitted_watermark(),
        global: CoalescerState::capture(core.global_coalescer()),
        nodes: core
            .node_coalescers()
            .iter()
            .map(|(&node, c)| (node, CoalescerState::capture(c)))
            .collect(),
        nap_chain: core.nap_chain().to_vec(),
        ttf: WelfordState::capture(core.episode().ttf()),
        ttr: WelfordState::capture(core.episode().ttr()),
        prev_episode_end: core.episode().prev_end(),
        episodes: core.episode().episodes(),
        failures: failures.clone(),
        loss_by_packet_type: loss.clone(),
        matrix_cells: core
            .matrix_ref()
            .cells()
            .into_iter()
            .map(|(failure, cause, count)| MatrixCell {
                failure,
                cause,
                count,
            })
            .collect(),
        counters: CheckpointCounters {
            emitted,
            late,
            duplicates,
            peak_resident,
        },
        quarantine: core.quarantine().clone(),
        kept_tuples: core
            .kept_tuples()
            .iter()
            .map(|t| t.records.clone())
            .collect(),
    }
}
