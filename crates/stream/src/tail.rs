//! Line framing for tailing a growing JSONL trace.
//!
//! A trace being appended to by a live collector can be read mid-line;
//! [`LineFramer`] buffers the partial tail chunk-to-chunk and only
//! releases complete lines, so the CLI tailer never feeds the parser a
//! record that was cut off mid-write.

/// Reassembles complete lines from arbitrary read chunks.
#[derive(Debug, Default)]
pub struct LineFramer {
    partial: String,
}

impl LineFramer {
    /// An empty framer.
    pub fn new() -> Self {
        LineFramer::default()
    }

    /// Feeds the next chunk; returns every line completed by it (without
    /// the terminating newline). The unterminated remainder is buffered.
    ///
    /// Allocates one `String` per line; hot paths should prefer
    /// [`LineFramer::push_lines`], which borrows instead.
    pub fn push(&mut self, chunk: &str) -> Vec<String> {
        let mut lines = Vec::new();
        self.push_lines(chunk, |line| lines.push(line.to_string()));
        lines
    }

    /// Feeds the next chunk, invoking `sink` once per completed line
    /// (without the newline; a trailing `\r` is stripped).
    ///
    /// Zero-copy: lines fully contained in `chunk` are passed as
    /// borrowed subslices of it; only a line spanning a chunk boundary
    /// goes through the internal buffer, and only the unterminated tail
    /// is copied in. Steady-state tailing therefore allocates nothing.
    pub fn push_lines<F: FnMut(&str)>(&mut self, chunk: &str, mut sink: F) {
        let mut rest = chunk;
        if !self.partial.is_empty() {
            // Complete the buffered partial line first.
            match rest.find('\n') {
                Some(pos) => {
                    self.partial.push_str(&rest[..pos]);
                    if self.partial.ends_with('\r') {
                        self.partial.pop();
                    }
                    sink(&self.partial);
                    self.partial.clear();
                    rest = &rest[pos + 1..];
                }
                None => {
                    self.partial.push_str(rest);
                    return;
                }
            }
        }
        while let Some(pos) = rest.find('\n') {
            let mut line = &rest[..pos];
            if line.ends_with('\r') {
                line = &line[..line.len() - 1];
            }
            sink(line);
            rest = &rest[pos + 1..];
        }
        self.partial.push_str(rest);
    }

    /// Bytes buffered waiting for a newline.
    pub fn pending(&self) -> usize {
        self.partial.len()
    }

    /// End of input: returns the final unterminated line, if any.
    pub fn finish(&mut self) -> Option<String> {
        if self.partial.is_empty() {
            None
        } else {
            Some(std::mem::take(&mut self.partial))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reassembles_lines_across_chunks() {
        let mut f = LineFramer::new();
        assert!(f.push("{\"a\":").is_empty());
        assert_eq!(f.pending(), 5);
        assert_eq!(f.push("1}\n{\"b\":2}\n{\"c\"").len(), 2);
        assert_eq!(f.push(":3}\n"), vec!["{\"c\":3}".to_string()]);
        assert!(f.finish().is_none());
    }

    #[test]
    fn finish_flushes_unterminated_tail() {
        let mut f = LineFramer::new();
        assert!(f.push("tail-without-newline").is_empty());
        assert_eq!(f.finish(), Some("tail-without-newline".to_string()));
        assert_eq!(f.pending(), 0);
    }

    #[test]
    fn strips_crlf() {
        let mut f = LineFramer::new();
        assert_eq!(f.push("x\r\ny\n"), vec!["x".to_string(), "y".to_string()]);
    }

    #[test]
    fn push_lines_equals_push_for_every_chunking() {
        // Split the same input at every pair of positions and require
        // the borrow-based API to yield exactly what push() yields.
        let input = "alpha\nbeta\r\n\ngamma with spaces\nδelta\npartial tail";
        let expect = {
            let mut f = LineFramer::new();
            let mut lines = f.push(input);
            if let Some(t) = f.finish() {
                lines.push(t);
            }
            lines
        };
        let bytes = input.as_bytes();
        let boundaries: Vec<usize> = (0..=bytes.len())
            .filter(|&i| input.is_char_boundary(i))
            .collect();
        for &a in &boundaries {
            for &b in boundaries.iter().filter(|&&b| b >= a) {
                let mut f = LineFramer::new();
                let mut got: Vec<String> = Vec::new();
                for chunk in [&input[..a], &input[a..b], &input[b..]] {
                    f.push_lines(chunk, |line| got.push(line.to_string()));
                }
                if let Some(t) = f.finish() {
                    got.push(t);
                }
                assert_eq!(got, expect, "split at ({a}, {b})");
            }
        }
    }

    #[test]
    fn push_lines_borrows_complete_lines_without_buffering() {
        let mut f = LineFramer::new();
        let mut n = 0;
        f.push_lines("one\ntwo\nthree\n", |_| n += 1);
        assert_eq!(n, 3);
        // Nothing buffered: every line lived entirely in the chunk.
        assert_eq!(f.pending(), 0);
    }
}
