//! Line framing for tailing a growing JSONL trace.
//!
//! A trace being appended to by a live collector can be read mid-line;
//! [`LineFramer`] buffers the partial tail chunk-to-chunk and only
//! releases complete lines, so the CLI tailer never feeds the parser a
//! record that was cut off mid-write.

/// Reassembles complete lines from arbitrary read chunks.
#[derive(Debug, Default)]
pub struct LineFramer {
    partial: String,
}

impl LineFramer {
    /// An empty framer.
    pub fn new() -> Self {
        LineFramer::default()
    }

    /// Feeds the next chunk; returns every line completed by it (without
    /// the terminating newline). The unterminated remainder is buffered.
    pub fn push(&mut self, chunk: &str) -> Vec<String> {
        self.partial.push_str(chunk);
        let mut lines = Vec::new();
        while let Some(pos) = self.partial.find('\n') {
            let rest = self.partial.split_off(pos + 1);
            let mut line = std::mem::replace(&mut self.partial, rest);
            line.pop(); // the '\n'
            if line.ends_with('\r') {
                line.pop();
            }
            lines.push(line);
        }
        lines
    }

    /// Bytes buffered waiting for a newline.
    pub fn pending(&self) -> usize {
        self.partial.len()
    }

    /// End of input: returns the final unterminated line, if any.
    pub fn finish(&mut self) -> Option<String> {
        if self.partial.is_empty() {
            None
        } else {
            Some(std::mem::take(&mut self.partial))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reassembles_lines_across_chunks() {
        let mut f = LineFramer::new();
        assert!(f.push("{\"a\":").is_empty());
        assert_eq!(f.pending(), 5);
        assert_eq!(f.push("1}\n{\"b\":2}\n{\"c\"").len(), 2);
        assert_eq!(f.push(":3}\n"), vec!["{\"c\":3}".to_string()]);
        assert!(f.finish().is_none());
    }

    #[test]
    fn finish_flushes_unterminated_tail() {
        let mut f = LineFramer::new();
        assert!(f.push("tail-without-newline").is_empty());
        assert_eq!(f.finish(), Some("tail-without-newline".to_string()));
        assert_eq!(f.pending(), 0);
    }

    #[test]
    fn strips_crlf() {
        let mut f = LineFramer::new();
        assert_eq!(f.push("x\r\ny\n"), vec!["x".to_string(), "y".to_string()]);
    }
}
