//! Deterministic shard routing.
//!
//! Every producer (the CLI tailer, the in-process campaign feed, a
//! resumed checkpoint) must agree on which shard owns which node, or
//! the per-shard lateness rule would depend on who did the routing.
//! The router therefore hashes only the node id, with a fixed avalanche
//! function (splitmix64) rather than `std`'s `RandomState`.
//!
//! Multi-piconet campaigns can instead route by **group** (piconet id):
//! every member of a piconet lands on the same shard, so its NAP's
//! System-Log entries and its PANUs' reports stay ordered relative to
//! each other without cross-shard watermark coupling.

use btpan_collect::entry::NodeId;

/// Maps node ids to shard indices, stable across processes and runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRouter {
    shards: usize,
    /// Sorted `(node, group)` table; empty means "hash the node id".
    groups: Vec<(NodeId, u64)>,
}

impl ShardRouter {
    /// Creates a router over `shards` shards, hashing node ids.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        ShardRouter {
            shards,
            groups: Vec::new(),
        }
    }

    /// Creates a router that hashes each node's *group* (e.g. its
    /// piconet id) instead of the node id itself, so grouped nodes
    /// share a shard. Nodes absent from the table fall back to node-id
    /// hashing.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn with_groups(shards: usize, groups: &[(NodeId, u64)]) -> Self {
        assert!(shards > 0, "need at least one shard");
        let mut groups = groups.to_vec();
        groups.sort_unstable();
        groups.dedup_by_key(|e| e.0);
        ShardRouter { shards, groups }
    }

    /// Number of shards routed over.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `node`. All records of a node land on the same
    /// shard, so per-node log order is preserved end to end; with a
    /// group table, all records of a *group* land on the same shard.
    pub fn route(&self, node: NodeId) -> usize {
        let key = match self.groups.binary_search_by_key(&node, |e| e.0) {
            Ok(i) => self.groups[i].1,
            Err(_) => node,
        };
        (splitmix64(key) % self.shards as u64) as usize
    }
}

/// SplitMix64 finalizer: a fixed, well-mixed 64-bit avalanche.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_stable_and_in_range() {
        let r = ShardRouter::new(4);
        for node in 0..100u64 {
            let s = r.route(node);
            assert!(s < 4);
            assert_eq!(s, r.route(node), "same node, same shard");
        }
    }

    #[test]
    fn single_shard_takes_everything() {
        let r = ShardRouter::new(1);
        assert!((0..50u64).all(|n| r.route(n) == 0));
    }

    #[test]
    fn small_node_ids_spread_over_shards() {
        // Node ids in this codebase are tiny integers; the avalanche
        // must still spread them instead of clustering shard 0.
        let r = ShardRouter::new(4);
        let mut hit = [false; 4];
        for node in 0..16u64 {
            hit[r.route(node)] = true;
        }
        assert!(hit.iter().all(|&h| h), "all shards reached: {hit:?}");
    }

    #[test]
    fn grouped_nodes_share_a_shard() {
        // Two piconets: nodes 0-6 in group 0, nodes 100-106 in group 1.
        let mut table = Vec::new();
        for n in 0..=6u64 {
            table.push((n, 0u64));
        }
        for n in 100..=106u64 {
            table.push((n, 1u64));
        }
        let r = ShardRouter::with_groups(4, &table);
        let s0 = r.route(0);
        assert!((0..=6u64).all(|n| r.route(n) == s0), "group 0 split");
        let s1 = r.route(100);
        assert!((100..=106u64).all(|n| r.route(n) == s1), "group 1 split");
        // Ungrouped nodes fall back to node-id hashing.
        let plain = ShardRouter::new(4);
        assert_eq!(r.route(5000), plain.route(5000));
    }

    #[test]
    fn empty_group_table_matches_plain_router() {
        let plain = ShardRouter::new(8);
        let grouped = ShardRouter::with_groups(8, &[]);
        assert!((0..200u64).all(|n| plain.route(n) == grouped.route(n)));
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = ShardRouter::new(0);
    }
}
