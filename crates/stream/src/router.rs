//! Deterministic shard routing.
//!
//! Every producer (the CLI tailer, the in-process campaign feed, a
//! resumed checkpoint) must agree on which shard owns which node, or
//! the per-shard lateness rule would depend on who did the routing.
//! The router therefore hashes only the node id, with a fixed avalanche
//! function (splitmix64) rather than `std`'s `RandomState`.

use btpan_collect::entry::NodeId;

/// Maps node ids to shard indices, stable across processes and runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRouter {
    shards: usize,
}

impl ShardRouter {
    /// Creates a router over `shards` shards.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        ShardRouter { shards }
    }

    /// Number of shards routed over.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `node`. All records of a node land on the same
    /// shard, so per-node log order is preserved end to end.
    pub fn route(&self, node: NodeId) -> usize {
        (splitmix64(node) % self.shards as u64) as usize
    }
}

/// SplitMix64 finalizer: a fixed, well-mixed 64-bit avalanche.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_stable_and_in_range() {
        let r = ShardRouter::new(4);
        for node in 0..100u64 {
            let s = r.route(node);
            assert!(s < 4);
            assert_eq!(s, r.route(node), "same node, same shard");
        }
    }

    #[test]
    fn single_shard_takes_everything() {
        let r = ShardRouter::new(1);
        assert!((0..50u64).all(|n| r.route(n) == 0));
    }

    #[test]
    fn small_node_ids_spread_over_shards() {
        // Node ids in this codebase are tiny integers; the avalanche
        // must still spread them instead of clustering shard 0.
        let r = ShardRouter::new(4);
        let mut hit = [false; 4];
        for node in 0..16u64 {
            hit[r.route(node)] = true;
        }
        assert!(hit.iter().all(|&h| h), "all shards reached: {hit:?}");
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = ShardRouter::new(0);
    }
}
