//! Incremental tupling coalescence.
//!
//! [`OnlineCoalescer`] is the streaming twin of
//! [`btpan_collect::coalesce::coalesce`]: the same sliding (gap-based)
//! rule, applied one record at a time. Equivalence argument:
//!
//! * [`OnlineCoalescer::push`] closes the open tuple exactly when the
//!   batch rule would — the incoming record's gap from the tuple's last
//!   record exceeds the window.
//! * [`OnlineCoalescer::advance`] additionally closes the open tuple
//!   once a watermark `w` guarantees `w - last > window`. Every record
//!   emitted after `advance(w)` has `at > w`, so its gap from `last`
//!   also exceeds the window — the batch rule would have closed the
//!   tuple at that record anyway. Early closing therefore never changes
//!   the tuple partition, only *when* a tuple becomes observable.
//!
//! Fed the same record sequence, `push`+`finish` produces byte-identical
//! tuples to the batch function (asserted by the property tests).

use btpan_collect::coalesce::Tuple;
use btpan_collect::entry::LogRecord;
use btpan_sim::time::{SimDuration, SimTime};

/// Online sliding-window coalescer over a time-sorted record stream.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineCoalescer {
    window: SimDuration,
    current: Vec<LogRecord>,
    last_at: Option<SimTime>,
}

impl OnlineCoalescer {
    /// An empty coalescer with the given window.
    pub fn new(window: SimDuration) -> Self {
        OnlineCoalescer {
            window,
            current: Vec::new(),
            last_at: None,
        }
    }

    /// A coalescer whose open tuple is pre-seeded with `records` (used
    /// to hand a late-joining node the NAP's still-active error chain).
    ///
    /// # Panics
    ///
    /// Panics (debug) if `records` is not time-sorted.
    pub fn seeded(window: SimDuration, records: Vec<LogRecord>) -> Self {
        debug_assert!(records.windows(2).all(|w| w[0].at <= w[1].at));
        let last_at = records.last().map(|r| r.at);
        OnlineCoalescer {
            window,
            current: records,
            last_at,
        }
    }

    /// Rebuilds a coalescer from checkpointed state.
    pub fn from_parts(
        window: SimDuration,
        current: Vec<LogRecord>,
        last_at: Option<SimTime>,
    ) -> Self {
        OnlineCoalescer {
            window,
            current,
            last_at,
        }
    }

    /// Feeds the next record; returns the previous tuple if `rec`'s gap
    /// from it exceeds the window (the batch closing rule).
    ///
    /// # Panics
    ///
    /// Panics (debug) if `rec` precedes the last pushed record.
    pub fn push(&mut self, rec: LogRecord) -> Option<Tuple> {
        let mut closed = None;
        if let Some(last) = self.last_at {
            debug_assert!(rec.at >= last, "online coalesce input not time-sorted");
            if !self.current.is_empty() && rec.at.saturating_since(last) > self.window {
                closed = Some(Tuple {
                    records: std::mem::take(&mut self.current),
                });
            }
        }
        self.last_at = Some(rec.at);
        self.current.push(rec);
        closed
    }

    /// Closes the open tuple early once the watermark proves no future
    /// record can join it (`watermark - last > window`).
    pub fn advance(&mut self, watermark: SimTime) -> Option<Tuple> {
        match self.last_at {
            Some(last)
                if !self.current.is_empty() && watermark.saturating_since(last) > self.window =>
            {
                Some(Tuple {
                    records: std::mem::take(&mut self.current),
                })
            }
            _ => None,
        }
    }

    /// End of stream: closes and returns the open tuple, if any.
    pub fn finish(&mut self) -> Option<Tuple> {
        if self.current.is_empty() {
            None
        } else {
            Some(Tuple {
                records: std::mem::take(&mut self.current),
            })
        }
    }

    /// True when no tuple is open.
    pub fn is_idle(&self) -> bool {
        self.current.is_empty()
    }

    /// Records buffered in the open tuple.
    pub fn buffered(&self) -> usize {
        self.current.len()
    }

    /// The open tuple's records (checkpoint capture).
    pub fn buffered_records(&self) -> &[LogRecord] {
        &self.current
    }

    /// Timestamp of the most recently pushed record (checkpoint capture).
    pub fn last_at(&self) -> Option<SimTime> {
        self.last_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btpan_collect::coalesce::coalesce;
    use btpan_collect::entry::SystemLogEntry;
    use btpan_faults::SystemFault;

    fn rec(seq: u64, at_s: u64) -> LogRecord {
        LogRecord::from_system(
            seq,
            SystemLogEntry::new(SimTime::from_secs(at_s), 1, SystemFault::HciCommandTimeout),
        )
    }

    fn drain(records: &[LogRecord], window: SimDuration) -> Vec<Tuple> {
        let mut c = OnlineCoalescer::new(window);
        let mut out = Vec::new();
        for r in records {
            out.extend(c.push(r.clone()));
        }
        out.extend(c.finish());
        out
    }

    #[test]
    fn push_finish_matches_batch() {
        let records: Vec<LogRecord> = [0u64, 3, 9, 11, 40, 41, 90, 300, 301, 302]
            .iter()
            .enumerate()
            .map(|(i, &s)| rec(i as u64, s))
            .collect();
        for w in [0u64, 1, 5, 10, 30, 100, 500] {
            let window = SimDuration::from_secs(w);
            assert_eq!(
                drain(&records, window),
                coalesce(&records, window),
                "window {w}"
            );
        }
    }

    #[test]
    fn advance_closes_only_dead_tuples() {
        let window = SimDuration::from_secs(30);
        let mut c = OnlineCoalescer::new(window);
        assert!(c.push(rec(0, 100)).is_none());
        // Watermark within the window of the last record: still open.
        assert!(c.advance(SimTime::from_secs(120)).is_none());
        assert_eq!(c.buffered(), 1);
        // Watermark past last + window: the tuple can never grow again.
        let t = c.advance(SimTime::from_secs(131)).expect("closed");
        assert_eq!(t.len(), 1);
        assert!(c.is_idle());
        // Idempotent on an empty coalescer.
        assert!(c.advance(SimTime::from_secs(10_000)).is_none());
    }

    #[test]
    fn push_after_advance_starts_fresh_tuple() {
        let window = SimDuration::from_secs(30);
        let mut c = OnlineCoalescer::new(window);
        c.push(rec(0, 100));
        c.advance(SimTime::from_secs(200)).expect("closed");
        assert!(c.push(rec(1, 250)).is_none(), "no double close");
        assert_eq!(c.buffered(), 1);
    }

    #[test]
    fn seeded_chain_joins_or_splits_by_gap() {
        let window = SimDuration::from_secs(30);
        // Record within the window of the seed chain: joins it.
        let mut c = OnlineCoalescer::seeded(window, vec![rec(0, 90), rec(1, 100)]);
        assert!(c.push(rec(2, 120)).is_none());
        assert_eq!(c.buffered(), 3);
        // Record past the window: the pure-seed tuple closes first.
        let mut c = OnlineCoalescer::seeded(window, vec![rec(0, 100)]);
        let closed = c.push(rec(1, 200)).expect("seed tuple closed");
        assert_eq!(closed.len(), 1);
        assert_eq!(c.buffered(), 1);
    }
}
