//! The threaded ingestion engine: bounded channels in, snapshots out.
//!
//! One worker thread per shard pulls records off a bounded crossbeam
//! channel and feeds the shared [`StreamCore`]. The channels provide
//! the backpressure story — a producer outrunning the analysis blocks
//! on `send` instead of growing an unbounded queue. Because lateness is
//! decided per shard from the shard's own input order (see
//! [`crate::core`]), the final numbers are identical no matter how the
//! scheduler interleaves the workers.

use crate::checkpoint::{capture, Checkpoint};
use crate::core::{StreamConfig, StreamCore, StreamOutcome};
use crate::estimators::StreamSnapshot;
use crate::router::ShardRouter;
use btpan_collect::entry::LogRecord;
use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use std::fmt;
use std::sync::Arc;
use std::thread::JoinHandle;

/// A record or a checkpoint barrier travelling to a shard worker.
enum ShardMsg {
    Record(Box<LogRecord>),
    Barrier,
}

/// Error returned by [`StreamEngine::ingest`] when the workers are
/// gone (the engine was finished or a worker died).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestError;

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "streaming engine is shut down")
    }
}

impl std::error::Error for IngestError {}

/// Sharded streaming ingestion engine.
pub struct StreamEngine {
    router: ShardRouter,
    senders: Vec<Sender<ShardMsg>>,
    ack_rx: Receiver<usize>,
    core: Arc<Mutex<StreamCore>>,
    workers: Vec<JoinHandle<()>>,
    ingested: u64,
    /// `btpan_stream_channel_occupancy{shard=…}` — in-flight records per
    /// shard channel (how close each shard is to backpressure).
    occupancy: Vec<btpan_obs::Gauge>,
}

impl StreamEngine {
    /// Starts a fresh engine: spawns one worker per shard.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread cannot be spawned.
    pub fn start(config: StreamConfig) -> Self {
        let core = StreamCore::new(config);
        Self::with_core(core, 0)
    }

    /// Resumes from a checkpoint. The caller must replay the record
    /// source from [`Checkpoint::source_index`] (see
    /// [`StreamEngine::ingested`]).
    pub fn resume(checkpoint: Checkpoint) -> Self {
        let source_index = checkpoint.source_index;
        Self::with_core(checkpoint.restore(), source_index)
    }

    fn with_core(core: StreamCore, ingested: u64) -> Self {
        let config = core.config().clone();
        let core = Arc::new(Mutex::new(core));
        let (ack_tx, ack_rx) = channel::unbounded();
        let mut senders = Vec::with_capacity(config.shards);
        let mut workers = Vec::with_capacity(config.shards);
        for shard in 0..config.shards {
            let (tx, rx) = channel::bounded::<ShardMsg>(config.channel_capacity.max(1));
            let worker_core = Arc::clone(&core);
            let ack = ack_tx.clone();
            let idle = config.idle_timeout();
            let handle = std::thread::Builder::new()
                .name(format!("btpan-stream-{shard}"))
                .spawn(move || worker_loop(shard, rx, worker_core, ack, idle))
                .expect("spawn stream worker");
            senders.push(tx);
            workers.push(handle);
        }
        let occupancy = (0..config.shards)
            .map(|shard| {
                btpan_obs::Registry::global().gauge_with(
                    "btpan_stream_channel_occupancy",
                    &[("shard", &shard.to_string())],
                )
            })
            .collect();
        StreamEngine {
            router: config.router(),
            senders,
            ack_rx,
            core,
            workers,
            ingested,
            occupancy,
        }
    }

    /// Routes one record to its shard, blocking if that shard's channel
    /// is full (backpressure).
    ///
    /// # Errors
    ///
    /// [`IngestError`] if the engine has shut down.
    pub fn ingest(&mut self, rec: LogRecord) -> Result<(), IngestError> {
        let shard = self.router.route(rec.node);
        self.senders[shard]
            .send(ShardMsg::Record(Box::new(rec)))
            .map_err(|_| IngestError)?;
        self.ingested += 1;
        // Gated: Sender::len takes the channel lock, which the disabled
        // path must not pay.
        if btpan_obs::Registry::global().is_enabled() {
            self.occupancy[shard].set(self.senders[shard].len() as i64);
        }
        Ok(())
    }

    /// Records handed to [`StreamEngine::ingest`] so far (counts the
    /// checkpointed prefix after a resume).
    pub fn ingested(&self) -> u64 {
        self.ingested
    }

    /// A live snapshot of the estimators. In-flight records that have
    /// not reached their worker yet are not included.
    pub fn snapshot(&self) -> StreamSnapshot {
        self.core.lock().snapshot()
    }

    /// Takes a consistent checkpoint: flushes every shard channel with
    /// a barrier, waits for all workers to ack, then captures the core.
    /// The checkpoint covers exactly the records ingested before this
    /// call.
    pub fn checkpoint(&mut self) -> Checkpoint {
        for tx in &self.senders {
            let _ = tx.send(ShardMsg::Barrier);
        }
        let mut acks = 0;
        while acks < self.senders.len() && self.ack_rx.recv().is_ok() {
            acks += 1;
        }
        capture(&self.core.lock(), self.ingested)
    }

    /// Ends the stream: closes every shard channel, joins the workers
    /// (each closes its shard, the last one finalizes the pipeline) and
    /// returns the outcome.
    pub fn finish(self) -> StreamOutcome {
        drop(self.senders);
        for handle in self.workers {
            let _ = handle.join();
        }
        Arc::try_unwrap(self.core)
            .expect("workers joined, no core refs remain")
            .into_inner()
            .into_outcome()
    }
}

fn worker_loop(
    shard: usize,
    rx: Receiver<ShardMsg>,
    core: Arc<Mutex<StreamCore>>,
    ack: Sender<usize>,
    idle: Option<std::time::Duration>,
) {
    loop {
        let msg = match idle {
            Some(timeout) => match rx.recv_timeout(timeout) {
                Ok(msg) => msg,
                Err(RecvTimeoutError::Timeout) => {
                    core.lock().mark_idle(shard);
                    continue;
                }
                Err(RecvTimeoutError::Disconnected) => break,
            },
            None => match rx.recv() {
                Ok(msg) => msg,
                Err(_) => break,
            },
        };
        match msg {
            ShardMsg::Record(rec) => core.lock().accept(shard, *rec),
            ShardMsg::Barrier => {
                let _ = ack.send(shard);
            }
        }
    }
    core.lock().close_shard(shard);
}

#[cfg(test)]
mod tests {
    use super::*;
    use btpan_collect::entry::{SystemLogEntry, TestLogEntry, WorkloadTag};
    use btpan_faults::{SystemFault, UserFailure};
    use btpan_sim::time::{SimDuration, SimTime};

    fn sys_rec(seq: u64, node: u64, at_s: u64) -> LogRecord {
        LogRecord::from_system(
            seq,
            SystemLogEntry::new(
                SimTime::from_secs(at_s),
                node,
                SystemFault::HciCommandTimeout,
            ),
        )
    }

    fn fail_rec(seq: u64, node: u64, at_s: u64) -> LogRecord {
        LogRecord::from_test(
            seq,
            TestLogEntry {
                at: SimTime::from_secs(at_s),
                node,
                failure: UserFailure::ConnectFailed,
                workload: WorkloadTag::Random,
                packet_type: None,
                packets_sent_before: None,
                app: None,
                distance_m: 5.0,
                idle_before_s: None,
            },
        )
    }

    fn config() -> StreamConfig {
        StreamConfig {
            shards: 2,
            channel_capacity: 8,
            window: SimDuration::from_secs(30),
            watermark_lag: SimDuration::from_secs(60),
            idle_timeout_ms: None,
            nap_node: 0,
            keep_tuples: true,
            group_of: None,
        }
    }

    #[test]
    fn engine_matches_single_threaded_core() {
        let records: Vec<LogRecord> = (0..200)
            .map(|i| {
                let node = 1 + (i % 3);
                if i % 7 == 0 {
                    fail_rec(i, node, 10 + i * 9)
                } else {
                    sys_rec(i, node, 10 + i * 9)
                }
            })
            .collect();
        let mut engine = StreamEngine::start(config());
        for rec in records.clone() {
            engine.ingest(rec).unwrap();
        }
        let outcome = engine.finish();
        let reference = crate::core::stream_records(records, &config());
        // Transport fields (peak residency) legitimately vary with the
        // thread interleaving; the analysis results must not.
        assert!(
            outcome.snapshot.analysis_eq(&reference.snapshot),
            "threaded {:?} != single-threaded {:?}",
            outcome.snapshot,
            reference.snapshot
        );
        assert_eq!(outcome.tuples, reference.tuples);
        assert_eq!(outcome.snapshot.late_quarantined, 0);
        assert_eq!(outcome.snapshot.duplicates_dropped, 0);
    }

    #[test]
    fn idle_timeout_unblocks_a_silent_shard() {
        // Without the idle kick, a shard that never receives records
        // keeps the global watermark at None and nothing is emitted.
        let mut cfg = config();
        cfg.idle_timeout_ms = Some(20);
        let router = ShardRouter::new(cfg.shards);
        // Pick node ids that all land on one shard, leaving the other idle.
        let target = router.route(1);
        let nodes: Vec<u64> = (1..100)
            .filter(|&n| router.route(n) == target)
            .take(2)
            .collect();
        let mut engine = StreamEngine::start(cfg);
        for (i, at) in (0u64..50).enumerate() {
            engine
                .ingest(sys_rec(i as u64, nodes[i % nodes.len()], 100 + at * 10))
                .unwrap();
        }
        // Wait out a few idle timeouts; the silent shard's frontier
        // must catch up and let the merge emit.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            let snap = engine.snapshot();
            if snap.records_emitted > 0 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "idle shard stalled the merge: {snap:?}"
            );
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        let outcome = engine.finish();
        assert_eq!(outcome.snapshot.records_emitted, 50);
    }

    #[test]
    fn checkpoint_barrier_covers_all_ingested_records() {
        let mut engine = StreamEngine::start(config());
        for i in 0..40u64 {
            engine.ingest(sys_rec(i, 1 + (i % 3), 10 + i * 5)).unwrap();
        }
        let cp = engine.checkpoint();
        assert_eq!(cp.source_index, 40);
        let processed = cp.counters.emitted
            + cp.shards.iter().map(|s| s.buffer.len() as u64).sum::<u64>()
            + cp.counters.late
            + cp.counters.duplicates;
        assert_eq!(processed, 40, "barrier must flush every in-flight record");
        let outcome = engine.finish();
        assert_eq!(outcome.snapshot.records_emitted, 40);
    }
}
