//! Streaming estimators and the snapshot they can produce at any time.
//!
//! The paper's Table 4 statistics (MTTF/MTTR/availability) accumulate
//! in Welford form via [`btpan_sim::stats::RunningStats`]; the Table 2
//! relationship matrix and the failure/loss censuses accumulate as
//! plain counters. All of them are pure folds over the canonical record
//! and tuple sequence, so the streaming engine reproduces the batch
//! numbers bit for bit as long as it feeds them the same sequence.

use btpan_collect::coalesce::Tuple;
use btpan_collect::relate::RelationshipMatrix;
use btpan_faults::{CauseSite, SystemComponent, UserFailure};
use btpan_sim::stats::RunningStats;
use btpan_sim::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Online MTTF/MTTR/availability over the global tuple stream.
///
/// A *failure episode* is a coalesced tuple containing at least one
/// user-level failure report. TTR is the episode's tuple span; TTF is
/// the gap from the previous episode's end to this episode's start.
/// Tuples must be observed in canonical order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EpisodeEstimator {
    ttf: RunningStats,
    ttr: RunningStats,
    prev_end: Option<SimTime>,
    episodes: u64,
}

impl EpisodeEstimator {
    /// An empty estimator.
    pub fn new() -> Self {
        EpisodeEstimator::default()
    }

    /// Rebuilds an estimator from checkpointed state.
    pub fn from_parts(
        ttf: RunningStats,
        ttr: RunningStats,
        prev_end: Option<SimTime>,
        episodes: u64,
    ) -> Self {
        EpisodeEstimator {
            ttf,
            ttr,
            prev_end,
            episodes,
        }
    }

    /// Folds one closed tuple into the statistics.
    pub fn observe(&mut self, tuple: &Tuple) {
        if tuple.failures().next().is_none() {
            return;
        }
        let start = tuple.records.first().expect("non-empty").at;
        let end = tuple.records.last().expect("non-empty").at;
        if let Some(prev) = self.prev_end {
            self.ttf.push(start.saturating_since(prev).as_secs_f64());
        }
        self.ttr.push(tuple.span().as_secs_f64());
        self.episodes += 1;
        self.prev_end = Some(end);
    }

    /// Failure episodes seen so far.
    pub fn episodes(&self) -> u64 {
        self.episodes
    }

    /// Mean time to failure in seconds (0 until two episodes exist).
    pub fn mttf_s(&self) -> f64 {
        self.ttf.mean().unwrap_or(0.0)
    }

    /// Mean time to repair in seconds (0 until one episode exists).
    pub fn mttr_s(&self) -> f64 {
        self.ttr.mean().unwrap_or(0.0)
    }

    /// `MTTF / (MTTF + MTTR)`, or 1.0 while degenerate — the convention
    /// of `btpan_analysis::dependability`.
    pub fn availability(&self) -> f64 {
        let f = self.mttf_s();
        let r = self.mttr_s();
        if f + r > 0.0 {
            f / (f + r)
        } else {
            1.0
        }
    }

    /// TTF accumulator (checkpoint capture).
    pub fn ttf(&self) -> &RunningStats {
        &self.ttf
    }

    /// TTR accumulator (checkpoint capture).
    pub fn ttr(&self) -> &RunningStats {
        &self.ttr
    }

    /// End of the previous episode (checkpoint capture).
    pub fn prev_end(&self) -> Option<SimTime> {
        self.prev_end
    }
}

/// One serialized cell of the relationship matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MatrixCell {
    /// The user-level failure (the Table 2 row).
    pub failure: UserFailure,
    /// The dominant evidence, or `None` for the no-evidence column.
    pub cause: Option<(SystemComponent, CauseSite)>,
    /// Observations in this cell.
    pub count: u64,
}

/// A point-in-time view of every streaming estimator.
///
/// Serializable, comparable, and buildable from either the streaming
/// engine or the batch pipeline ([`crate::batch::batch_reference`]), so
/// equivalence checks are one `analysis_eq` call.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamSnapshot {
    /// Records emitted in canonical order so far.
    pub records_emitted: u64,
    /// Records refused because they arrived behind their shard frontier.
    pub late_quarantined: u64,
    /// Exact duplicates dropped at the merge buffer.
    pub duplicates_dropped: u64,
    /// The emitted watermark in microseconds (`None` before first emit).
    pub watermark_us: Option<u64>,
    /// Records currently buffered in shard merge buffers.
    pub resident_records: u64,
    /// High-water mark of `resident_records` over the whole run.
    pub peak_resident_records: u64,
    /// Failure episodes observed.
    pub episodes: u64,
    /// Mean time to failure, seconds.
    pub mttf_s: f64,
    /// Mean time to repair, seconds.
    pub mttr_s: f64,
    /// `MTTF / (MTTF + MTTR)`.
    pub availability: f64,
    /// Census of user failures by kind.
    pub failures: BTreeMap<UserFailure, u64>,
    /// Packet-loss reports by baseband packet type.
    pub loss_by_packet_type: BTreeMap<String, u64>,
    /// The Table 2 relationship matrix, cell by cell.
    pub matrix_cells: Vec<MatrixCell>,
}

impl StreamSnapshot {
    /// Rebuilds the relationship matrix from the serialized cells.
    pub fn matrix(&self) -> RelationshipMatrix {
        let mut m = RelationshipMatrix::new();
        for cell in &self.matrix_cells {
            m.add_count(cell.failure, cell.cause, cell.count);
        }
        m
    }

    /// True when every *analysis* field matches `other` exactly — bit
    /// equality for the floating-point statistics, full equality for
    /// the counters and the matrix. Transport-side fields (watermark,
    /// residency, quarantine counts) are deliberately excluded: they
    /// describe how the records travelled, not what they mean.
    pub fn analysis_eq(&self, other: &StreamSnapshot) -> bool {
        self.records_emitted == other.records_emitted
            && self.episodes == other.episodes
            && self.mttf_s.to_bits() == other.mttf_s.to_bits()
            && self.mttr_s.to_bits() == other.mttr_s.to_bits()
            && self.availability.to_bits() == other.availability.to_bits()
            && self.failures == other.failures
            && self.loss_by_packet_type == other.loss_by_packet_type
            && self.matrix_cells == other.matrix_cells
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btpan_collect::entry::{LogRecord, SystemLogEntry, TestLogEntry, WorkloadTag};
    use btpan_faults::SystemFault;

    fn fail_rec(seq: u64, at_s: u64) -> LogRecord {
        LogRecord::from_test(
            seq,
            TestLogEntry {
                at: SimTime::from_secs(at_s),
                node: 1,
                failure: UserFailure::ConnectFailed,
                workload: WorkloadTag::Random,
                packet_type: None,
                packets_sent_before: None,
                app: None,
                distance_m: 5.0,
                idle_before_s: None,
            },
        )
    }

    fn sys_rec(seq: u64, at_s: u64) -> LogRecord {
        LogRecord::from_system(
            seq,
            SystemLogEntry::new(SimTime::from_secs(at_s), 1, SystemFault::HciCommandTimeout),
        )
    }

    #[test]
    fn episodes_measure_ttf_and_ttr() {
        let mut e = EpisodeEstimator::new();
        // Episode 1: span 10 s, ends at t=110.
        e.observe(&Tuple {
            records: vec![sys_rec(0, 100), fail_rec(1, 110)],
        });
        // A failure-free tuple is not an episode.
        e.observe(&Tuple {
            records: vec![sys_rec(2, 300)],
        });
        // Episode 2: starts at t=500 → TTF 390 s; span 20 s.
        e.observe(&Tuple {
            records: vec![fail_rec(3, 500), sys_rec(4, 520)],
        });
        assert_eq!(e.episodes(), 2);
        assert_eq!(e.mttf_s(), 390.0);
        assert_eq!(e.mttr_s(), 15.0);
        assert!((e.availability() - 390.0 / 405.0).abs() < 1e-12);
    }

    #[test]
    fn empty_estimator_is_fully_available() {
        let e = EpisodeEstimator::new();
        assert_eq!(e.availability(), 1.0);
        assert_eq!(e.mttf_s(), 0.0);
        assert_eq!(e.mttr_s(), 0.0);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let snap = StreamSnapshot {
            records_emitted: 10,
            late_quarantined: 1,
            duplicates_dropped: 2,
            watermark_us: Some(5_000_000),
            resident_records: 3,
            peak_resident_records: 7,
            episodes: 2,
            mttf_s: 390.0,
            mttr_s: 15.0,
            availability: 390.0 / 405.0,
            failures: [(UserFailure::ConnectFailed, 2u64)].into_iter().collect(),
            loss_by_packet_type: [("DM1".to_string(), 1u64)].into_iter().collect(),
            matrix_cells: vec![MatrixCell {
                failure: UserFailure::ConnectFailed,
                cause: Some((SystemComponent::Hci, CauseSite::Local)),
                count: 2,
            }],
        };
        let json = serde_json::to_string(&snap).unwrap();
        let back: StreamSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
        assert!(back.analysis_eq(&snap));
        assert_eq!(back.matrix().grand_total(), 2);
    }

    #[test]
    fn analysis_eq_ignores_transport_fields() {
        let a = StreamSnapshot {
            records_emitted: 5,
            late_quarantined: 0,
            duplicates_dropped: 0,
            watermark_us: None,
            resident_records: 0,
            peak_resident_records: 0,
            episodes: 0,
            mttf_s: 0.0,
            mttr_s: 0.0,
            availability: 1.0,
            failures: BTreeMap::new(),
            loss_by_packet_type: BTreeMap::new(),
            matrix_cells: Vec::new(),
        };
        let mut b = a.clone();
        b.late_quarantined = 9;
        b.peak_resident_records = 99;
        b.watermark_us = Some(1);
        assert!(a.analysis_eq(&b));
        b.episodes = 1;
        assert!(!a.analysis_eq(&b));
    }
}
