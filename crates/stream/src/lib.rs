//! `btpan-stream`: sharded streaming ingestion + incremental online
//! analysis for Bluetooth PAN failure data.
//!
//! The batch pipeline (`btpan-collect` → `btpan-analysis`) answers the
//! paper's questions post-hoc: run a campaign, export, re-import,
//! merge, coalesce, analyze. This crate answers them *live*: log
//! records arrive as unbounded streams, and the Table 2 relationship
//! matrix and Table 4 dependability statistics are maintained
//! incrementally with bounded memory, snapshot-able at any instant.
//!
//! Architecture (producer → analysis):
//!
//! ```text
//!               ┌─ bounded channel ─ worker 0 ─┐
//!  ShardRouter ─┼─ bounded channel ─ worker 1 ─┼─► StreamCore
//!  (by node id) └─ bounded channel ─ worker n ─┘    ├ shard merge buffers + watermarks
//!                                                   ├ OnlineCoalescer (global + per node)
//!                                                   ├ EpisodeEstimator (Welford MTTF/MTTR)
//!                                                   ├ RelationshipMatrix accumulator
//!                                                   └ QuarantineReport (late/duplicates)
//! ```
//!
//! Guarantees, each backed by a test or property test:
//!
//! * **Canonical emission** — records leave the merge in `(timestamp,
//!   seq)` order regardless of arrival interleaving.
//! * **Batch equivalence** — end-of-stream snapshots are bit-identical
//!   to [`batch::batch_reference`] on the same records, including under
//!   chaos-injected duplication and reordering (when the watermark lag
//!   covers the displacement).
//! * **Bounded memory** — resident records are O(shards ×
//!   watermark-lag), not O(stream length).
//! * **Checkpoint/resume** — a killed stream restarted from its last
//!   [`checkpoint::Checkpoint`] converges to the uninterrupted result.

pub mod batch;
pub mod checkpoint;
pub mod coalesce;
pub mod core;
pub mod engine;
pub mod estimators;
pub mod router;
pub mod tail;

pub use crate::batch::batch_reference;
pub use crate::checkpoint::Checkpoint;
pub use crate::coalesce::OnlineCoalescer;
pub use crate::core::{
    stream_records, StreamConfig, StreamConfigBuilder, StreamCore, StreamOutcome, DEFAULT_WINDOW,
};
pub use crate::engine::{IngestError, StreamEngine};
pub use crate::estimators::{EpisodeEstimator, MatrixCell, StreamSnapshot};
pub use crate::router::ShardRouter;
pub use crate::tail::LineFramer;
