//! Window sensitivity analysis and knee detection (Fig. 2).
//!
//! "The window size has been determined by conducting a sensitivity
//! analysis: the number of obtained tuples is plotted as a function of
//! the window size. A critical knee is highlighted: choosing a point
//! before the knee causes the number of tuples to drastically increase
//! (truncations); choosing after the knee generates collapses. A window
//! size of 330 seconds, exactly at the beginning of the knee, is
//! chosen."
//!
//! Knee detection implements the paper's criterion directly: the chosen
//! window sits "exactly at the beginning of the knee", i.e. where the
//! steep truncation-side slope of the curve dies off (evaluated on a
//! log-spaced window grid with slope smoothing).

use crate::coalesce::coalesce;
use crate::entry::LogRecord;
use btpan_sim::time::SimDuration;

/// The sampled tuples-vs-window curve.
#[derive(Debug, Clone, PartialEq)]
pub struct SensitivityCurve {
    /// Window sizes evaluated, ascending, in seconds.
    pub windows_s: Vec<f64>,
    /// Number of tuples at each window.
    pub tuples: Vec<usize>,
    /// Number of input records (for the percentage axis of Fig. 2).
    pub record_count: usize,
}

impl SensitivityCurve {
    /// Sweeps the coalescence over a log-spaced grid of `points` windows
    /// between `min_s` and `max_s` seconds.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < min_s < max_s` and `points >= 2`.
    pub fn sweep(records: &[LogRecord], min_s: f64, max_s: f64, points: usize) -> Self {
        assert!(min_s > 0.0 && min_s < max_s, "window bounds");
        assert!(points >= 2, "need at least two grid points");
        let log_min = min_s.ln();
        let log_max = max_s.ln();
        let mut windows_s = Vec::with_capacity(points);
        let mut tuples = Vec::with_capacity(points);
        for i in 0..points {
            let f = i as f64 / (points - 1) as f64;
            let w = (log_min + f * (log_max - log_min)).exp();
            windows_s.push(w);
            tuples.push(coalesce(records, SimDuration::from_secs_f64(w)).len());
        }
        SensitivityCurve {
            windows_s,
            tuples,
            record_count: records.len(),
        }
    }

    /// Tuples as a percentage of input records (the Fig. 2 y-axis).
    pub fn tuple_percentages(&self) -> Vec<f64> {
        let denom = self.record_count.max(1) as f64;
        self.tuples
            .iter()
            .map(|&t| 100.0 * t as f64 / denom)
            .collect()
    }

    /// Finds the knee window (seconds) of this curve.
    pub fn knee(&self) -> f64 {
        detect_knee(&self.windows_s, &self.tuples)
    }
}

/// Detects the knee of a monotone-decreasing tuples-vs-window curve:
/// the paper picks the window "exactly at the beginning of the knee" —
/// the point where the steep truncation-side decline dies off. We find
/// the (smoothed) per-step slope peak and return the first window after
/// it where the slope falls below 30 % of that peak.
///
/// # Panics
///
/// Panics if the inputs are shorter than 4 points or lengths differ.
pub fn detect_knee(windows_s: &[f64], tuples: &[usize]) -> f64 {
    assert_eq!(windows_s.len(), tuples.len(), "curve arrays mismatch");
    assert!(windows_s.len() >= 4, "need at least 4 points for a knee");
    // Per-grid-step drops (the grid is log-spaced, so this is the slope
    // against log window size).
    let drops: Vec<f64> = tuples
        .windows(2)
        .map(|w| w[0] as f64 - w[1] as f64)
        .collect();
    // Moving-average smoothing (window 3) to ride over grid noise.
    let smooth: Vec<f64> = (0..drops.len())
        .map(|i| {
            let lo = i.saturating_sub(1);
            let hi = (i + 2).min(drops.len());
            drops[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
        })
        .collect();
    let (peak_i, peak) = smooth
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite slopes"))
        .expect("non-empty");
    let threshold = 0.3 * peak;
    for (i, s) in smooth.iter().enumerate().skip(peak_i + 1) {
        if *s < threshold {
            return windows_s[i];
        }
    }
    *windows_s.last().expect("non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::SystemLogEntry;
    use btpan_faults::SystemFault;
    use btpan_sim::prelude::*;
    use btpan_sim::time::SimTime;

    fn rec(seq: u64, at_us: u64) -> LogRecord {
        LogRecord::from_system(
            seq,
            SystemLogEntry::new(
                SimTime::from_micros(at_us),
                1,
                SystemFault::HciCommandTimeout,
            ),
        )
    }

    /// Builds a stream with two scales: intra-burst gaps up to
    /// `burst_spread_s`, bursts separated by `quiet_s` on average.
    fn two_scale_stream(bursts: usize, burst_spread_s: u64, quiet_s: u64) -> Vec<LogRecord> {
        let mut rng = SimRng::seed_from(7);
        let mut records = Vec::new();
        let mut t = 0u64;
        let mut seq = 0;
        for _ in 0..bursts {
            let events = rng.uniform_u64(2, 5);
            let mut bt = t;
            for _ in 0..events {
                records.push(rec(seq, bt * 1_000_000));
                seq += 1;
                bt += rng.uniform_u64(1, burst_spread_s.max(2));
            }
            t = bt + quiet_s + rng.uniform_u64(0, quiet_s);
        }
        records
    }

    #[test]
    fn knee_lands_between_scales() {
        // Bursts spread over <= 100 s, quiet gaps of ~2000 s: the knee
        // must land between 100 and 2000 s.
        let records = two_scale_stream(200, 100, 2_000);
        let curve = SensitivityCurve::sweep(&records, 1.0, 20_000.0, 60);
        let knee = curve.knee();
        assert!(
            (100.0..2_000.0).contains(&knee),
            "knee {knee} outside scales"
        );
    }

    #[test]
    fn curve_is_monotone_decreasing() {
        let records = two_scale_stream(100, 60, 1_000);
        let curve = SensitivityCurve::sweep(&records, 1.0, 10_000.0, 30);
        for w in curve.tuples.windows(2) {
            assert!(w[1] <= w[0], "tuple count increased with window");
        }
    }

    #[test]
    fn percentages_normalized() {
        let records = two_scale_stream(50, 30, 500);
        let curve = SensitivityCurve::sweep(&records, 1.0, 5_000.0, 20);
        let pct = curve.tuple_percentages();
        assert_eq!(pct.len(), 20);
        for p in pct {
            assert!((0.0..=100.0).contains(&p));
        }
    }

    #[test]
    fn knee_of_synthetic_elbow() {
        // Construct an explicit elbow: steep until x = 100, flat after.
        let windows: Vec<f64> = vec![1.0, 10.0, 50.0, 100.0, 500.0, 1000.0, 5000.0, 10_000.0];
        let tuples: Vec<usize> = vec![1000, 800, 500, 200, 190, 185, 180, 178];
        let knee = detect_knee(&windows, &tuples);
        assert!((100.0..=500.0).contains(&knee), "knee {knee}");
    }

    #[test]
    #[should_panic(expected = "at least 4 points")]
    fn knee_needs_points() {
        let _ = detect_knee(&[1.0, 2.0], &[10, 5]);
    }

    #[test]
    #[should_panic(expected = "window bounds")]
    fn sweep_guards_bounds() {
        let _ = SensitivityCurve::sweep(&[], 10.0, 5.0, 10);
    }
}
