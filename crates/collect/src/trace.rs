//! Portable failure-trace export/import (JSON Lines).
//!
//! The paper published its unclassified failure reports on the project
//! web site; this module is the equivalent data-publication path: a
//! campaign's repository serializes to a line-per-record JSONL trace
//! that external tooling (or a later `btpan` session) can re-import and
//! re-analyze without re-simulating.
//!
//! Import comes in two strictness levels:
//!
//! * [`import_trace`] — all-or-nothing, for traces that are supposed to
//!   be pristine. It distinguishes a line that is *truncated* (the file
//!   was cut mid-write — [`TraceError::TruncatedLine`]) from one that is
//!   *malformed* (garbled content — [`TraceError::Malformed`]), because
//!   the remedies differ: a truncated tail means re-shipping the end of
//!   the log; a garbled middle means the transport corrupted data.
//! * [`import_trace_lenient`] — skip-and-count, for traces that crossed
//!   an unreliable collection pipeline (see [`crate::chaos`]). Bad
//!   lines are quarantined with their line number and reason in a
//!   [`QuarantineReport`] and the survivors are re-sorted into
//!   canonical `(timestamp, seq)` order, so out-of-order delivery and
//!   a bounded amount of corruption degrade coverage instead of
//!   aborting analysis.

use crate::entry::LogRecord;
use crate::repository::Repository;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors from strict trace parsing.
#[derive(Debug)]
pub enum TraceError {
    /// A line failed to parse as a record.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// The underlying serde error.
        source: serde_json::Error,
    },
    /// A line ended mid-value: the trace was cut off while being
    /// written or shipped (distinct from garbled content).
    TruncatedLine {
        /// 1-based line number.
        line: usize,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Malformed { line, source } => {
                write!(f, "malformed trace line {line}: {source}")
            }
            TraceError::TruncatedLine { line } => {
                write!(f, "truncated trace line {line}: record cut off mid-write")
            }
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Malformed { source, .. } => Some(source),
            TraceError::TruncatedLine { .. } => None,
        }
    }
}

/// Serializes every record of a repository (both levels, time-sorted)
/// into a JSONL string.
///
/// Sequence numbers are part of each line, so a re-import through
/// [`Repository::store_record`] and a second export reproduce this
/// output byte for byte — including records of system-only nodes such
/// as the NAP, which carry their original repository sequence numbers
/// rather than synthetic ones.
pub fn export_trace(repo: &Repository) -> String {
    let mut out = String::new();
    export_trace_into(repo, &mut out);
    out
}

/// Buffer-reusing variant of [`export_trace`]: clears `out` and writes
/// the trace into it, so periodic exporters (checkpointing, streaming
/// relays) keep one buffer alive instead of reallocating per export.
pub fn export_trace_into(repo: &Repository, out: &mut String) {
    out.clear();
    for r in repo.records() {
        out.push_str(&serde_json::to_string(&r).expect("records serialize"));
        out.push('\n');
    }
}

/// Parses a JSONL trace back into records, all-or-nothing.
///
/// # Errors
///
/// [`TraceError::TruncatedLine`] if a line ends mid-record, otherwise
/// [`TraceError::Malformed`]; both name the first bad line.
pub fn import_trace(trace: &str) -> Result<Vec<LogRecord>, TraceError> {
    let mut records = Vec::with_capacity(count_lines(trace));
    for (i, line) in trace.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let record: LogRecord = serde_json::from_str(line).map_err(|source| {
            if source.is_eof() {
                TraceError::TruncatedLine { line: i + 1 }
            } else {
                TraceError::Malformed {
                    line: i + 1,
                    source,
                }
            }
        })?;
        records.push(record);
    }
    Ok(records)
}

/// What a lenient import refused to take.
#[derive(Debug, Default, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuarantineReport {
    /// Non-blank lines inspected.
    pub total_lines: usize,
    /// Lines successfully imported.
    pub imported: usize,
    /// `(1-based line, reason)` for every rejected line.
    pub quarantined: Vec<(usize, String)>,
}

impl QuarantineReport {
    /// True when nothing was rejected.
    pub fn is_clean(&self) -> bool {
        self.quarantined.is_empty()
    }

    /// Fraction of inspected lines that imported (1.0 for an empty
    /// trace).
    pub fn yield_fraction(&self) -> f64 {
        if self.total_lines == 0 {
            return 1.0;
        }
        self.imported as f64 / self.total_lines as f64
    }
}

impl fmt::Display for QuarantineReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} lines imported, {} quarantined",
            self.imported,
            self.total_lines,
            self.quarantined.len()
        )
    }
}

/// Parses a JSONL trace, skipping and counting undecodable lines
/// instead of failing, and re-sorting the survivors into canonical
/// `(timestamp, seq)` order.
pub fn import_trace_lenient(trace: &str) -> (Vec<LogRecord>, QuarantineReport) {
    let mut records = Vec::with_capacity(count_lines(trace));
    let mut report = QuarantineReport::default();
    for (i, line) in trace.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        report.total_lines += 1;
        match serde_json::from_str::<LogRecord>(line) {
            Ok(record) => {
                report.imported += 1;
                records.push(record);
            }
            Err(e) => {
                let reason = if e.is_eof() {
                    "truncated record".to_string()
                } else {
                    format!("malformed record: {e}")
                };
                report.quarantined.push((i + 1, reason));
            }
        }
    }
    records.sort();
    (records, report)
}

/// Upper bound on the record count of a trace (one record per line),
/// used to pre-size import vectors and avoid growth reallocations on
/// multi-hundred-thousand-line traces.
fn count_lines(trace: &str) -> usize {
    let newlines = trace.bytes().filter(|&b| b == b'\n').count();
    // A final unterminated line still holds a record.
    if trace.ends_with('\n') || trace.is_empty() {
        newlines
    } else {
        newlines + 1
    }
}

/// Rebuilds a repository from imported records.
///
/// Uses the seq-preserving [`Repository::store_record`] path, so
/// duplicated records collapse to one copy and a re-export reproduces
/// the original trace.
pub fn repository_from_records(records: &[LogRecord]) -> Repository {
    let repo = Repository::new();
    for r in records {
        repo.store_record(r.clone());
    }
    repo
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::{SystemLogEntry, TestLogEntry, WorkloadTag};
    use btpan_faults::{SystemFault, UserFailure};
    use btpan_sim::time::SimTime;

    fn sample_repo() -> Repository {
        let repo = Repository::new();
        repo.store_test(TestLogEntry {
            at: SimTime::from_secs(10),
            node: 1,
            failure: UserFailure::PacketLoss,
            workload: WorkloadTag::Random,
            packet_type: Some("DM1".into()),
            packets_sent_before: Some(42),
            app: None,
            distance_m: 5.0,
            idle_before_s: Some(12.5),
        });
        repo.store_system(SystemLogEntry::new(
            SimTime::from_secs(8),
            1,
            SystemFault::HciCommandTimeout,
        ));
        // NAP entry: node 0 has no test reports.
        repo.store_system(SystemLogEntry::new(
            SimTime::from_secs(9),
            0,
            SystemFault::L2capUnexpectedFrame,
        ));
        repo
    }

    #[test]
    fn export_import_round_trip() {
        let repo = sample_repo();
        let trace = export_trace(&repo);
        assert_eq!(trace.lines().count(), 3);
        let records = import_trace(&trace).expect("valid trace");
        assert_eq!(records.len(), 3);
        let rebuilt = repository_from_records(&records);
        assert_eq!(rebuilt.test_count(), repo.test_count());
        assert_eq!(rebuilt.system_count(), repo.system_count());
        assert_eq!(rebuilt.tests(), repo.tests());
    }

    #[test]
    fn reexport_is_byte_identical() {
        // The system-only NAP node used to be re-exported with a
        // synthetic seq, so export→import→export drifted. It must not.
        let repo = sample_repo();
        let trace = export_trace(&repo);
        let rebuilt = repository_from_records(&import_trace(&trace).unwrap());
        assert_eq!(export_trace(&rebuilt), trace);
    }

    #[test]
    fn export_trace_into_reuses_and_clears_buffer() {
        let repo = sample_repo();
        let mut buf = String::from("stale content from a previous export");
        export_trace_into(&repo, &mut buf);
        assert_eq!(buf, export_trace(&repo));
        let cap = buf.capacity();
        export_trace_into(&repo, &mut buf);
        assert_eq!(buf.capacity(), cap, "re-export must not reallocate");
    }

    #[test]
    fn trace_is_time_sorted() {
        let trace = export_trace(&sample_repo());
        let records = import_trace(&trace).unwrap();
        for w in records.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
    }

    #[test]
    fn malformed_line_reports_position() {
        let repo = sample_repo();
        let mut trace = export_trace(&repo);
        trace.push_str("{not json\n");
        let err = import_trace(&trace).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 4"), "{msg}");
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn truncated_line_distinguished_from_malformed() {
        let repo = sample_repo();
        let full = export_trace(&repo);
        let one_line = full.lines().next().unwrap();
        let cut = &one_line[..one_line.len() / 2];
        match import_trace(cut).unwrap_err() {
            TraceError::TruncatedLine { line } => assert_eq!(line, 1),
            other => panic!("expected TruncatedLine, got {other}"),
        }
        match import_trace("{\"at\": ???}").unwrap_err() {
            TraceError::Malformed { line, .. } => assert_eq!(line, 1),
            other => panic!("expected Malformed, got {other}"),
        }
    }

    #[test]
    fn blank_lines_skipped() {
        let repo = sample_repo();
        let trace = format!("\n{}\n\n", export_trace(&repo));
        assert_eq!(import_trace(&trace).unwrap().len(), 3);
    }

    #[test]
    fn lenient_import_quarantines_and_sorts() {
        let repo = sample_repo();
        let trace = export_trace(&repo);
        let mut lines: Vec<&str> = trace.lines().collect();
        lines.reverse(); // out-of-order delivery
        let mut shuffled = lines.join("\n");
        shuffled.push_str("\ngarbage line\n");
        let (records, report) = import_trace_lenient(&shuffled);
        assert_eq!(records.len(), 3);
        assert_eq!(report.total_lines, 4);
        assert_eq!(report.imported, 3);
        assert_eq!(report.quarantined.len(), 1);
        assert_eq!(report.quarantined[0].0, 4);
        assert!((report.yield_fraction() - 0.75).abs() < 1e-12);
        for w in records.windows(2) {
            assert!((w[0].at, w[0].seq) < (w[1].at, w[1].seq));
        }
        assert!(!report.is_clean());
        assert_eq!(report.to_string(), "3/4 lines imported, 1 quarantined");
    }
}
