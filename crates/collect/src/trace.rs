//! Portable failure-trace export/import (JSON Lines).
//!
//! The paper published its unclassified failure reports on the project
//! web site; this module is the equivalent data-publication path: a
//! campaign's repository serializes to a line-per-record JSONL trace
//! that external tooling (or a later `btpan` session) can re-import and
//! re-analyze without re-simulating.

use crate::entry::{LogRecord, RecordPayload};
use crate::repository::Repository;
use std::fmt;

/// Errors from trace parsing.
#[derive(Debug)]
pub enum TraceError {
    /// A line failed to parse as a record.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// The underlying serde error.
        source: serde_json::Error,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Malformed { line, source } => {
                write!(f, "malformed trace line {line}: {source}")
            }
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Malformed { source, .. } => Some(source),
        }
    }
}

/// Serializes every record of a repository (both levels, time-sorted)
/// into a JSONL string.
pub fn export_trace(repo: &Repository) -> String {
    let mut records: Vec<LogRecord> = Vec::new();
    for node in repo.reporting_nodes() {
        records.extend(repo.records_of(node));
    }
    // System-only nodes (the NAP) are not in reporting_nodes; pick their
    // entries up from the full system dump.
    let known: std::collections::BTreeSet<u64> = repo.reporting_nodes().into_iter().collect();
    for (i, entry) in repo.systems().into_iter().enumerate() {
        if !known.contains(&entry.node) {
            records.push(LogRecord::from_system(u64::MAX - i as u64, entry));
        }
    }
    records.sort();
    let mut out = String::new();
    for r in &records {
        out.push_str(&serde_json::to_string(r).expect("records serialize"));
        out.push('\n');
    }
    out
}

/// Parses a JSONL trace back into records.
///
/// # Errors
///
/// [`TraceError::Malformed`] naming the first bad line.
pub fn import_trace(trace: &str) -> Result<Vec<LogRecord>, TraceError> {
    let mut records = Vec::new();
    for (i, line) in trace.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let record: LogRecord = serde_json::from_str(line).map_err(|source| {
            TraceError::Malformed {
                line: i + 1,
                source,
            }
        })?;
        records.push(record);
    }
    Ok(records)
}

/// Rebuilds a repository from imported records.
pub fn repository_from_records(records: &[LogRecord]) -> Repository {
    let repo = Repository::new();
    for r in records {
        match &r.payload {
            RecordPayload::Test(t) => repo.store_test(t.clone()),
            RecordPayload::System(s) => repo.store_system(s.clone()),
        }
    }
    repo
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::{SystemLogEntry, TestLogEntry, WorkloadTag};
    use btpan_faults::{SystemFault, UserFailure};
    use btpan_sim::time::SimTime;

    fn sample_repo() -> Repository {
        let repo = Repository::new();
        repo.store_test(TestLogEntry {
            at: SimTime::from_secs(10),
            node: 1,
            failure: UserFailure::PacketLoss,
            workload: WorkloadTag::Random,
            packet_type: Some("DM1".into()),
            packets_sent_before: Some(42),
            app: None,
            distance_m: 5.0,
            idle_before_s: Some(12.5),
        });
        repo.store_system(SystemLogEntry::new(
            SimTime::from_secs(8),
            1,
            SystemFault::HciCommandTimeout,
        ));
        // NAP entry: node 0 has no test reports.
        repo.store_system(SystemLogEntry::new(
            SimTime::from_secs(9),
            0,
            SystemFault::L2capUnexpectedFrame,
        ));
        repo
    }

    #[test]
    fn export_import_round_trip() {
        let repo = sample_repo();
        let trace = export_trace(&repo);
        assert_eq!(trace.lines().count(), 3);
        let records = import_trace(&trace).expect("valid trace");
        assert_eq!(records.len(), 3);
        let rebuilt = repository_from_records(&records);
        assert_eq!(rebuilt.test_count(), repo.test_count());
        assert_eq!(rebuilt.system_count(), repo.system_count());
        assert_eq!(rebuilt.tests(), repo.tests());
    }

    #[test]
    fn trace_is_time_sorted() {
        let trace = export_trace(&sample_repo());
        let records = import_trace(&trace).unwrap();
        for w in records.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
    }

    #[test]
    fn malformed_line_reports_position() {
        let repo = sample_repo();
        let mut trace = export_trace(&repo);
        trace.push_str("{not json\n");
        let err = import_trace(&trace).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 4"), "{msg}");
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn blank_lines_skipped() {
        let repo = sample_repo();
        let trace = format!("\n{}\n\n", export_trace(&repo));
        assert_eq!(import_trace(&trace).unwrap().len(), 3);
    }
}
