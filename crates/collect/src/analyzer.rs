//! The `LogAnalyzer` daemon: extract, filter, ship.
//!
//! "Failure data on each BT node is collected by a LogAnalyzer daemon,
//! and is sent to a central repository. The LogAnalyzer periodically
//! (i) extracts failure data from both the logs, (ii) filters them, and
//! (iii) sends them to the repository. Filtering is used to send only
//! significant data."
//!
//! Filtering here means: duplicate suppression (a chattering component
//! repeating the identical message within a short window contributes one
//! record) and corruption rejection (records with impossible timestamps
//! are dropped). Shipping is idempotent — re-sending an already-shipped
//! range cannot double-count, exactly what a crash-recovering daemon
//! needs.

use crate::entry::{NodeId, SystemLogEntry, TestLogEntry};
use crate::logs::{SystemLog, TestLog};
use crate::repository::Repository;
use btpan_sim::time::SimDuration;

/// Duplicate-suppression window for identical consecutive system
/// messages from one component.
pub const DEDUP_WINDOW: SimDuration = SimDuration::from_secs(5);

/// The per-node collection daemon.
#[derive(Debug, Clone)]
pub struct LogAnalyzer {
    node: NodeId,
    /// High-water marks of what has been shipped already.
    shipped_test: usize,
    shipped_system: usize,
    /// Statistics: records dropped by the filter.
    filtered_out: u64,
}

impl LogAnalyzer {
    /// Creates the analyzer daemon for `node`.
    pub fn new(node: NodeId) -> Self {
        LogAnalyzer {
            node,
            shipped_test: 0,
            shipped_system: 0,
            filtered_out: 0,
        }
    }

    /// The node this daemon serves.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Records dropped by filtering so far.
    pub fn filtered_out(&self) -> u64 {
        self.filtered_out
    }

    /// Filter predicate for test entries (user failure reports are
    /// always significant; only corrupted ones are dropped).
    fn keep_test(entry: &TestLogEntry, node: NodeId) -> bool {
        entry.node == node && entry.distance_m.is_finite()
    }

    /// Filter for system entries: reject foreign/corrupt lines and
    /// suppress identical messages repeated within [`DEDUP_WINDOW`].
    fn keep_system(prev: Option<&SystemLogEntry>, entry: &SystemLogEntry, node: NodeId) -> bool {
        if entry.node != node || entry.message.is_empty() {
            return false;
        }
        match prev {
            Some(p) if p.fault == entry.fault => entry.at.saturating_since(p.at) > DEDUP_WINDOW,
            _ => true,
        }
    }

    /// One periodic run: extract everything new from both logs, filter,
    /// and ship to `repo`. Returns `(test_shipped, system_shipped)`.
    ///
    /// Calling this twice without new log content ships nothing the
    /// second time (idempotence).
    pub fn run_once(
        &mut self,
        test_log: &TestLog,
        system_log: &SystemLog,
        repo: &Repository,
    ) -> (usize, usize) {
        let mut test_shipped = 0;
        for entry in &test_log.entries()[self.shipped_test.min(test_log.len())..] {
            if Self::keep_test(entry, self.node) {
                repo.store_test(entry.clone());
                test_shipped += 1;
            } else {
                self.filtered_out += 1;
            }
        }
        self.shipped_test = test_log.len();

        let mut system_shipped = 0;
        let entries = system_log.entries();
        let start = self.shipped_system.min(entries.len());
        let mut last_kept: Option<SystemLogEntry> = if start > 0 {
            Some(entries[start - 1].clone())
        } else {
            None
        };
        for entry in &entries[start..] {
            if Self::keep_system(last_kept.as_ref(), entry, self.node) {
                repo.store_system(entry.clone());
                system_shipped += 1;
                last_kept = Some(entry.clone());
            } else {
                self.filtered_out += 1;
            }
        }
        self.shipped_system = entries.len();
        (test_shipped, system_shipped)
    }

    /// The period at which the testbeds ran their analyzer daemons.
    pub fn period() -> SimDuration {
        SimDuration::from_secs(300)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::WorkloadTag;
    use btpan_faults::{SystemFault, UserFailure};
    use btpan_sim::time::SimTime;

    fn test_entry(node: NodeId, at_s: u64) -> TestLogEntry {
        TestLogEntry {
            at: SimTime::from_secs(at_s),
            node,
            failure: UserFailure::PacketLoss,
            workload: WorkloadTag::Random,
            packet_type: Some("DH3".into()),
            packets_sent_before: Some(7),
            app: None,
            distance_m: 7.0,
            idle_before_s: None,
        }
    }

    fn sys(node: NodeId, at_s: u64, fault: SystemFault) -> SystemLogEntry {
        SystemLogEntry::new(SimTime::from_secs(at_s), node, fault)
    }

    #[test]
    fn ships_everything_once() {
        let mut tl = TestLog::new(1);
        let mut sl = SystemLog::new(1);
        tl.append(test_entry(1, 10));
        sl.append(sys(1, 9, SystemFault::HciCommandTimeout));
        let repo = Repository::new();
        let mut an = LogAnalyzer::new(1);
        assert_eq!(an.run_once(&tl, &sl, &repo), (1, 1));
        // idempotent second run
        assert_eq!(an.run_once(&tl, &sl, &repo), (0, 0));
        assert_eq!(repo.test_count(), 1);
        assert_eq!(repo.system_count(), 1);
        // new content ships incrementally
        tl.append(test_entry(1, 20));
        assert_eq!(an.run_once(&tl, &sl, &repo), (1, 0));
        assert_eq!(repo.test_count(), 2);
    }

    #[test]
    fn duplicate_system_messages_suppressed() {
        let mut sl = SystemLog::new(1);
        // chatter: same fault at 1s intervals
        for s in 0..10 {
            sl.append(sys(1, 100 + s, SystemFault::BcspOutOfOrder));
        }
        // a different fault interleaved stays
        sl.append(sys(1, 105, SystemFault::HciCommandTimeout));
        let tl = TestLog::new(1);
        let repo = Repository::new();
        let mut an = LogAnalyzer::new(1);
        let (_, shipped) = an.run_once(&tl, &sl, &repo);
        // first BCSP + the HCI + first BCSP after the HCI resets nothing:
        // dedup keys on consecutive same-fault within window.
        assert!(shipped < 11, "dedup did nothing: {shipped}");
        assert!(an.filtered_out() > 0);
    }

    #[test]
    fn spaced_repeats_kept() {
        let mut sl = SystemLog::new(1);
        sl.append(sys(1, 100, SystemFault::HotplugTimeout));
        sl.append(sys(1, 200, SystemFault::HotplugTimeout)); // 100 s apart
        let tl = TestLog::new(1);
        let repo = Repository::new();
        let mut an = LogAnalyzer::new(1);
        let (_, shipped) = an.run_once(&tl, &sl, &repo);
        assert_eq!(shipped, 2);
    }

    #[test]
    fn corrupt_entries_filtered() {
        let mut tl = TestLog::new(1);
        let mut bad = test_entry(1, 10);
        bad.distance_m = f64::NAN;
        tl.append(bad);
        tl.append(test_entry(1, 11));
        let sl = SystemLog::new(1);
        let repo = Repository::new();
        let mut an = LogAnalyzer::new(1);
        let (shipped, _) = an.run_once(&tl, &sl, &repo);
        assert_eq!(shipped, 1);
        assert_eq!(an.filtered_out(), 1);
    }

    #[test]
    fn period_is_minutes() {
        assert!(LogAnalyzer::period() >= SimDuration::from_secs(60));
    }
}
