//! Step 1 of the scheme: time-based merging.
//!
//! "For each node a log file is produced by merging its Test Log and
//! System Log files, on a time-based criteria (entries are ordered
//! according to their timestamps)." For the NAP-propagation analysis the
//! NAP's System Log is merged in as well.

use crate::entry::LogRecord;

/// Merges any number of record streams into one time-ordered stream
/// (stable on ties via the records' sequence numbers).
pub fn merge_records<I>(streams: I) -> Vec<LogRecord>
where
    I: IntoIterator<Item = Vec<LogRecord>>,
{
    let mut all: Vec<LogRecord> = streams.into_iter().flatten().collect();
    all.sort();
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::{SystemLogEntry, TestLogEntry, WorkloadTag};
    use btpan_faults::{SystemFault, UserFailure};
    use btpan_sim::time::SimTime;

    fn test_rec(seq: u64, at_s: u64) -> LogRecord {
        LogRecord::from_test(
            seq,
            TestLogEntry {
                at: SimTime::from_secs(at_s),
                node: 1,
                failure: UserFailure::PacketLoss,
                workload: WorkloadTag::Random,
                packet_type: None,
                packets_sent_before: None,
                app: None,
                distance_m: 5.0,
                idle_before_s: None,
            },
        )
    }

    fn sys_rec(seq: u64, at_s: u64) -> LogRecord {
        LogRecord::from_system(
            seq,
            SystemLogEntry::new(SimTime::from_secs(at_s), 1, SystemFault::HciCommandTimeout),
        )
    }

    #[test]
    fn merge_orders_by_time() {
        let merged = merge_records([
            vec![test_rec(0, 30), test_rec(1, 10)],
            vec![sys_rec(2, 20), sys_rec(3, 5)],
        ]);
        let times: Vec<u64> = merged
            .iter()
            .map(|r| r.at.as_micros() / 1_000_000)
            .collect();
        assert_eq!(times, vec![5, 10, 20, 30]);
    }

    #[test]
    fn merge_is_stable_on_ties() {
        let merged = merge_records([vec![test_rec(5, 10)], vec![sys_rec(2, 10)]]);
        assert_eq!(merged[0].seq, 2);
        assert_eq!(merged[1].seq, 5);
    }

    #[test]
    fn merge_preserves_multiset() {
        let a = vec![test_rec(0, 3), test_rec(1, 1)];
        let b = vec![sys_rec(2, 2)];
        let merged = merge_records([a.clone(), b.clone()]);
        assert_eq!(merged.len(), a.len() + b.len());
        for r in a.iter().chain(b.iter()) {
            assert!(merged.contains(r));
        }
    }

    #[test]
    fn empty_streams_ok() {
        assert!(merge_records(Vec::<Vec<LogRecord>>::new()).is_empty());
        assert_eq!(merge_records([vec![], vec![test_rec(0, 1)]]).len(), 1);
    }
}
