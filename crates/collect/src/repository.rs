//! The central failure-data repository.
//!
//! All LogAnalyzer daemons ship into one repository, "where data are
//! then analyzed by means of a statistical analysis software" (the paper
//! used SAS; our `btpan-analysis` plays that role). The repository is
//! thread-safe — the multi-seed campaign runner ships from worker
//! threads — and hands out time-ordered merged views per node.

use crate::entry::{LogRecord, NodeId, RecordPayload, SystemLogEntry, TestLogEntry};
use parking_lot::Mutex;
use std::collections::HashSet;

#[derive(Debug, Default)]
struct Inner {
    tests: Vec<TestLogEntry>,
    systems: Vec<SystemLogEntry>,
    next_seq: u64,
    test_records: Vec<LogRecord>,
    system_records: Vec<LogRecord>,
    /// Content fingerprints of records stored via [`Repository::store_record`]
    /// (the shipment/import path), making re-delivery idempotent.
    shipped_fingerprints: HashSet<String>,
}

/// The central repository of both failure-data levels.
#[derive(Debug, Default)]
pub struct Repository {
    inner: Mutex<Inner>,
}

impl Repository {
    /// Creates an empty repository.
    pub fn new() -> Self {
        Repository::default()
    }

    /// Stores one user-level failure report.
    pub fn store_test(&self, entry: TestLogEntry) {
        let mut inner = self.inner.lock();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner
            .test_records
            .push(LogRecord::from_test(seq, entry.clone()));
        inner.tests.push(entry);
    }

    /// Stores one system-level error entry.
    pub fn store_system(&self, entry: SystemLogEntry) {
        let mut inner = self.inner.lock();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner
            .system_records
            .push(LogRecord::from_system(seq, entry.clone()));
        inner.systems.push(entry);
    }

    /// Stores a complete record as shipped/imported, preserving its
    /// sequence number, so `export → import → export` reproduces the
    /// trace byte for byte.
    ///
    /// Idempotent: re-delivering a record whose content (including
    /// `seq`) was already stored through this path is a no-op, which
    /// makes duplicated shipments harmless. Returns whether the record
    /// was new. Records born in this repository via
    /// [`store_test`](Repository::store_test) /
    /// [`store_system`](Repository::store_system) are not affected —
    /// two genuinely distinct events always have distinct sequence
    /// numbers.
    pub fn store_record(&self, record: LogRecord) -> bool {
        let fingerprint = serde_json::to_string(&record).expect("record serializes");
        let mut inner = self.inner.lock();
        if !inner.shipped_fingerprints.insert(fingerprint) {
            return false;
        }
        inner.next_seq = inner.next_seq.max(record.seq.saturating_add(1));
        match &record.payload {
            RecordPayload::Test(t) => {
                inner.tests.push(t.clone());
                inner.test_records.push(record);
            }
            RecordPayload::System(s) => {
                inner.systems.push(s.clone());
                inner.system_records.push(record);
            }
        }
        true
    }

    /// Number of user-level reports stored.
    pub fn test_count(&self) -> usize {
        self.inner.lock().tests.len()
    }

    /// Number of system-level entries stored.
    pub fn system_count(&self) -> usize {
        self.inner.lock().systems.len()
    }

    /// Total failure data items (the paper collected 356 551).
    pub fn total_count(&self) -> usize {
        let inner = self.inner.lock();
        inner.tests.len() + inner.systems.len()
    }

    /// Clones all user-level reports.
    pub fn tests(&self) -> Vec<TestLogEntry> {
        self.inner.lock().tests.clone()
    }

    /// Clones all system-level entries.
    pub fn systems(&self) -> Vec<SystemLogEntry> {
        self.inner.lock().systems.clone()
    }

    /// Every record of every node (both levels), sorted by
    /// `(timestamp, seq)` — the canonical export order.
    pub fn records(&self) -> Vec<LogRecord> {
        let inner = self.inner.lock();
        let mut all: Vec<LogRecord> = inner
            .test_records
            .iter()
            .chain(inner.system_records.iter())
            .cloned()
            .collect();
        all.sort();
        all
    }

    /// All records of `node` (both levels), unsorted.
    pub fn records_of(&self, node: NodeId) -> Vec<LogRecord> {
        let inner = self.inner.lock();
        inner
            .test_records
            .iter()
            .chain(inner.system_records.iter())
            .filter(|r| r.node == node)
            .cloned()
            .collect()
    }

    /// All system records of `node` (for NAP-propagation analysis).
    pub fn system_records_of(&self, node: NodeId) -> Vec<LogRecord> {
        let inner = self.inner.lock();
        inner
            .system_records
            .iter()
            .filter(|r| r.node == node)
            .cloned()
            .collect()
    }

    /// The distinct nodes that shipped test reports.
    pub fn reporting_nodes(&self) -> Vec<NodeId> {
        let inner = self.inner.lock();
        let mut nodes: Vec<NodeId> = inner.tests.iter().map(|t| t.node).collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }

    /// Absorbs all content of `other` (merging per-seed repositories).
    pub fn absorb(&self, other: Repository) {
        let other = other.inner.into_inner();
        for t in other.tests {
            self.store_test(t);
        }
        for s in other.systems {
            self.store_system(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::WorkloadTag;
    use btpan_faults::{SystemFault, UserFailure};
    use btpan_sim::time::SimTime;
    use std::sync::Arc;

    fn t(node: NodeId, at_s: u64) -> TestLogEntry {
        TestLogEntry {
            at: SimTime::from_secs(at_s),
            node,
            failure: UserFailure::BindFailed,
            workload: WorkloadTag::Realistic,
            packet_type: None,
            packets_sent_before: None,
            app: None,
            distance_m: 5.0,
            idle_before_s: None,
        }
    }

    #[test]
    fn store_and_count() {
        let repo = Repository::new();
        repo.store_test(t(1, 10));
        repo.store_system(SystemLogEntry::new(
            SimTime::from_secs(9),
            1,
            SystemFault::HotplugTimeout,
        ));
        assert_eq!(repo.test_count(), 1);
        assert_eq!(repo.system_count(), 1);
        assert_eq!(repo.total_count(), 2);
        assert_eq!(repo.reporting_nodes(), vec![1]);
    }

    #[test]
    fn per_node_views() {
        let repo = Repository::new();
        repo.store_test(t(1, 10));
        repo.store_test(t(2, 11));
        repo.store_system(SystemLogEntry::new(
            SimTime::from_secs(9),
            2,
            SystemFault::HciCommandTimeout,
        ));
        assert_eq!(repo.records_of(1).len(), 1);
        assert_eq!(repo.records_of(2).len(), 2);
        assert_eq!(repo.system_records_of(2).len(), 1);
        assert_eq!(repo.system_records_of(1).len(), 0);
    }

    #[test]
    fn sequence_numbers_unique() {
        let repo = Repository::new();
        for i in 0..10 {
            repo.store_test(t(1, i));
        }
        let mut seqs: Vec<u64> = repo.records_of(1).iter().map(|r| r.seq).collect();
        seqs.sort_unstable();
        seqs.dedup();
        assert_eq!(seqs.len(), 10);
    }

    #[test]
    fn concurrent_shipping() {
        let repo = Arc::new(Repository::new());
        let handles: Vec<_> = (0..4)
            .map(|n| {
                let repo = Arc::clone(&repo);
                std::thread::spawn(move || {
                    for i in 0..250 {
                        repo.store_test(t(n, i));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(repo.test_count(), 1000);
        assert_eq!(repo.reporting_nodes().len(), 4);
    }

    #[test]
    fn records_sorted_and_complete() {
        let repo = Repository::new();
        repo.store_test(t(1, 10));
        repo.store_system(SystemLogEntry::new(
            SimTime::from_secs(2),
            0,
            SystemFault::HciCommandTimeout,
        ));
        repo.store_test(t(2, 5));
        let all = repo.records();
        assert_eq!(all.len(), 3);
        for w in all.windows(2) {
            assert!((w[0].at, w[0].seq) < (w[1].at, w[1].seq));
        }
    }

    #[test]
    fn store_record_preserves_seq_and_dedups() {
        let repo = Repository::new();
        let record = crate::entry::LogRecord::from_test(7, t(1, 10));
        assert!(repo.store_record(record.clone()));
        assert!(
            !repo.store_record(record.clone()),
            "re-delivery must be a no-op"
        );
        assert_eq!(repo.test_count(), 1);
        assert_eq!(repo.records()[0].seq, 7);
        // Subsequent locally born records continue past the imported seq.
        repo.store_test(t(2, 11));
        assert_eq!(repo.records_of(2)[0].seq, 8);
        // Same content under a different seq is a distinct record.
        let mut other = record;
        other.seq = 9;
        assert!(repo.store_record(other));
        assert_eq!(repo.test_count(), 3);
    }

    #[test]
    fn absorb_merges() {
        let a = Repository::new();
        a.store_test(t(1, 1));
        let b = Repository::new();
        b.store_test(t(2, 2));
        b.store_system(SystemLogEntry::new(
            SimTime::from_secs(2),
            2,
            SystemFault::BnepOccupied,
        ));
        a.absorb(b);
        assert_eq!(a.test_count(), 2);
        assert_eq!(a.system_count(), 1);
    }
}
