//! Step 2: tupling coalescence (Buckley & Siewiorek, FTCS'96).
//!
//! "If two or more events are clustered in time, they are grouped into a
//! tuple, according to a coalescence window." An event joins the current
//! tuple when it falls within the window of the tuple's *last* event
//! (gap-based clustering); otherwise it starts a new tuple.
//!
//! The window trades **truncation** (too small: events of one error
//! split over several tuples) against **collapse** (too large: events of
//! independent errors merge) — the trade-off the sensitivity analysis of
//! Fig. 2 navigates.

use crate::entry::LogRecord;
use btpan_sim::time::SimDuration;

/// One tuple: a maximal run of records whose consecutive gaps are all
/// within the coalescence window.
#[derive(Debug, Clone, PartialEq)]
pub struct Tuple {
    /// The records, in time order.
    pub records: Vec<LogRecord>,
}

impl Tuple {
    /// Number of records in the tuple.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Tuples are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The user failures contained in the tuple.
    pub fn failures(&self) -> impl Iterator<Item = &crate::entry::TestLogEntry> {
        self.records.iter().filter_map(LogRecord::as_failure)
    }

    /// The system entries contained in the tuple.
    pub fn system_entries(&self) -> impl Iterator<Item = &crate::entry::SystemLogEntry> {
        self.records.iter().filter_map(LogRecord::as_system)
    }

    /// Time span covered by the tuple.
    pub fn span(&self) -> SimDuration {
        let first = self.records.first().expect("non-empty").at;
        let last = self.records.last().expect("non-empty").at;
        last.since(first)
    }
}

/// Coalesces a **time-sorted** record stream with the given window,
/// using the *sliding* (gap-based) rule: an event joins the tuple if it
/// is within `window` of the tuple's **last** event. This is the scheme
/// the paper adopts.
///
/// # Panics
///
/// Panics (debug) if the input is not sorted by time.
pub fn coalesce(records: &[LogRecord], window: SimDuration) -> Vec<Tuple> {
    let mut tuples: Vec<Tuple> = Vec::new();
    let mut current: Vec<LogRecord> = Vec::new();
    let mut last_at = None;
    for rec in records {
        if let Some(last) = last_at {
            debug_assert!(rec.at >= last, "coalesce input not time-sorted");
            if rec.at.saturating_since(last) > window {
                tuples.push(Tuple {
                    records: std::mem::take(&mut current),
                });
            }
        }
        last_at = Some(rec.at);
        current.push(rec.clone());
    }
    if !current.is_empty() {
        tuples.push(Tuple { records: current });
    }
    tuples
}

/// The *fixed-window* variant (Tsao's original tupling, one of the
/// schemes Buckley & Siewiorek compare): an event joins the tuple only
/// if it is within `window` of the tuple's **first** event. Long error
/// cascades therefore get truncated into several tuples — the behaviour
/// the sliding rule was invented to fix.
///
/// # Panics
///
/// Panics (debug) if the input is not sorted by time.
pub fn coalesce_fixed_window(records: &[LogRecord], window: SimDuration) -> Vec<Tuple> {
    let mut tuples: Vec<Tuple> = Vec::new();
    let mut current: Vec<LogRecord> = Vec::new();
    let mut tuple_start = None;
    let mut last_at: Option<btpan_sim::time::SimTime> = None;
    for rec in records {
        if let Some(last) = last_at {
            debug_assert!(rec.at >= last, "coalesce input not time-sorted");
        }
        last_at = Some(rec.at);
        match tuple_start {
            Some(start) if rec.at.saturating_since(start) <= window => {
                current.push(rec.clone());
            }
            _ => {
                if !current.is_empty() {
                    tuples.push(Tuple {
                        records: std::mem::take(&mut current),
                    });
                }
                tuple_start = Some(rec.at);
                current.push(rec.clone());
            }
        }
    }
    if !current.is_empty() {
        tuples.push(Tuple { records: current });
    }
    tuples
}

/// Truncation comparison of the two schemes against a ground-truth
/// clustering: the fraction of true clusters split across more than one
/// tuple. `truth` gives, for each record index, its true cluster id.
///
/// # Panics
///
/// Panics if `truth` and the tuples do not cover the same records.
pub fn truncation_rate(tuples: &[Tuple], truth: &[usize]) -> f64 {
    let total: usize = tuples.iter().map(Tuple::len).sum();
    assert_eq!(total, truth.len(), "truth must label every record");
    let n_clusters = truth.iter().copied().max().map_or(0, |m| m + 1);
    if n_clusters == 0 {
        return 0.0;
    }
    // For each true cluster, count how many tuples its records land in.
    let mut first_tuple: Vec<Option<usize>> = vec![None; n_clusters];
    let mut split = vec![false; n_clusters];
    let mut idx = 0;
    for (tuple_i, tuple) in tuples.iter().enumerate() {
        for _ in 0..tuple.len() {
            let cluster = truth[idx];
            match first_tuple[cluster] {
                None => first_tuple[cluster] = Some(tuple_i),
                Some(t) if t != tuple_i => split[cluster] = true,
                _ => {}
            }
            idx += 1;
        }
    }
    split.iter().filter(|&&s| s).count() as f64 / n_clusters as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::{SystemLogEntry, TestLogEntry, WorkloadTag};
    use btpan_faults::{SystemFault, UserFailure};
    use btpan_sim::time::SimTime;

    fn rec(seq: u64, at_s: u64) -> LogRecord {
        LogRecord::from_system(
            seq,
            SystemLogEntry::new(SimTime::from_secs(at_s), 1, SystemFault::HciCommandTimeout),
        )
    }

    fn fail_rec(seq: u64, at_s: u64) -> LogRecord {
        LogRecord::from_test(
            seq,
            TestLogEntry {
                at: SimTime::from_secs(at_s),
                node: 1,
                failure: UserFailure::ConnectFailed,
                workload: WorkloadTag::Random,
                packet_type: None,
                packets_sent_before: None,
                app: None,
                distance_m: 5.0,
                idle_before_s: None,
            },
        )
    }

    #[test]
    fn gap_splits_tuples() {
        let records = vec![rec(0, 0), rec(1, 10), rec(2, 1000), rec(3, 1005)];
        let tuples = coalesce(&records, SimDuration::from_secs(30));
        assert_eq!(tuples.len(), 2);
        assert_eq!(tuples[0].len(), 2);
        assert_eq!(tuples[1].len(), 2);
    }

    #[test]
    fn window_is_gap_based_not_span_based() {
        // Chains longer than the window stay together if each gap fits.
        let records = vec![rec(0, 0), rec(1, 25), rec(2, 50), rec(3, 75)];
        let tuples = coalesce(&records, SimDuration::from_secs(30));
        assert_eq!(tuples.len(), 1);
        assert_eq!(tuples[0].span(), SimDuration::from_secs(75));
    }

    #[test]
    fn zero_window_isolates_distinct_times() {
        let records = vec![rec(0, 1), rec(1, 1), rec(2, 2)];
        let tuples = coalesce(&records, SimDuration::ZERO);
        assert_eq!(tuples.len(), 2);
        assert_eq!(tuples[0].len(), 2, "simultaneous events share a tuple");
    }

    #[test]
    fn huge_window_collapses_everything() {
        let records: Vec<LogRecord> = (0..20).map(|i| rec(i, i * 100)).collect();
        let tuples = coalesce(&records, SimDuration::from_secs(100_000));
        assert_eq!(tuples.len(), 1);
        assert_eq!(tuples[0].len(), 20);
    }

    #[test]
    fn monotone_in_window() {
        // Property: more window never means more tuples.
        let records: Vec<LogRecord> = [0u64, 3, 9, 11, 40, 41, 90, 300, 301, 302]
            .iter()
            .enumerate()
            .map(|(i, &s)| rec(i as u64, s))
            .collect();
        let mut prev = usize::MAX;
        for w in [0u64, 1, 2, 5, 10, 30, 50, 100, 500] {
            let n = coalesce(&records, SimDuration::from_secs(w)).len();
            assert!(n <= prev, "window {w}: {n} > {prev}");
            prev = n;
        }
    }

    #[test]
    fn tuple_accessors() {
        let records = vec![rec(0, 0), fail_rec(1, 5), rec(2, 9)];
        let tuples = coalesce(&records, SimDuration::from_secs(30));
        assert_eq!(tuples.len(), 1);
        let t = &tuples[0];
        assert_eq!(t.failures().count(), 1);
        assert_eq!(t.system_entries().count(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn empty_input_empty_output() {
        assert!(coalesce(&[], SimDuration::from_secs(10)).is_empty());
    }

    #[test]
    fn coverage_preserved() {
        // Every record lands in exactly one tuple.
        let records: Vec<LogRecord> = (0..50).map(|i| rec(i, i * i)).collect();
        let tuples = coalesce(&records, SimDuration::from_secs(17));
        let total: usize = tuples.iter().map(Tuple::len).sum();
        assert_eq!(total, records.len());
    }
}

#[cfg(test)]
mod scheme_tests {
    use super::*;
    use crate::entry::SystemLogEntry;
    use btpan_faults::SystemFault;
    use btpan_sim::time::SimTime;

    fn rec(seq: u64, at_s: u64) -> LogRecord {
        LogRecord::from_system(
            seq,
            SystemLogEntry::new(SimTime::from_secs(at_s), 1, SystemFault::HciCommandTimeout),
        )
    }

    #[test]
    fn fixed_window_truncates_long_cascades() {
        // A cascade of events 20 s apart, spanning 80 s, window 30 s:
        // the sliding rule keeps one tuple; the fixed rule splits.
        let records: Vec<LogRecord> = (0..5).map(|i| rec(i, i * 20)).collect();
        let w = SimDuration::from_secs(30);
        assert_eq!(coalesce(&records, w).len(), 1);
        assert_eq!(coalesce_fixed_window(&records, w).len(), 3);
    }

    #[test]
    fn schemes_agree_on_tight_clusters() {
        let records = vec![rec(0, 0), rec(1, 2), rec(2, 500), rec(3, 501)];
        let w = SimDuration::from_secs(30);
        assert_eq!(
            coalesce(&records, w).len(),
            coalesce_fixed_window(&records, w).len()
        );
    }

    #[test]
    fn truncation_rate_quantifies_the_difference() {
        // Two true clusters: a long cascade (records 0..5, 20 s apart)
        // and a tight pair far away.
        let mut records: Vec<LogRecord> = (0..5).map(|i| rec(i, i * 20)).collect();
        records.push(rec(5, 10_000));
        records.push(rec(6, 10_001));
        let truth = vec![0, 0, 0, 0, 0, 1, 1];
        let w = SimDuration::from_secs(30);
        let sliding = truncation_rate(&coalesce(&records, w), &truth);
        let fixed = truncation_rate(&coalesce_fixed_window(&records, w), &truth);
        assert_eq!(sliding, 0.0, "sliding rule must not truncate");
        assert_eq!(fixed, 0.5, "fixed rule truncates the cascade");
    }

    #[test]
    fn fixed_window_preserves_every_record() {
        let records: Vec<LogRecord> = (0..40).map(|i| rec(i, i * 13)).collect();
        let tuples = coalesce_fixed_window(&records, SimDuration::from_secs(17));
        let total: usize = tuples.iter().map(Tuple::len).sum();
        assert_eq!(total, records.len());
    }

    #[test]
    #[should_panic(expected = "truth must label")]
    fn truncation_rate_guards_coverage() {
        let records = vec![rec(0, 0)];
        let tuples = coalesce(&records, SimDuration::from_secs(1));
        let _ = truncation_rate(&tuples, &[0, 0]);
    }
}
