//! # btpan-collect
//!
//! The failure-data collection infrastructure and the paper's novel
//! "merge and coalesce" analysis scheme (Fig. 2).
//!
//! Each BT node produces two files: the **Test Log** (user-level failure
//! reports with node status) and the **System Log** (error entries from
//! BT stack modules and OS daemons). A [`analyzer::LogAnalyzer`] daemon
//! periodically extracts both, filters them, and ships them to a central
//! [`repository::Repository`].
//!
//! The analysis pipeline then:
//!
//! 1. [`merge`]s each node's Test and System logs (and the NAP's System
//!    log) on a time basis;
//! 2. [`coalesce()`](coalesce::coalesce)s the merged stream with the tupling scheme of Buckley
//!    & Siewiorek — events clustered in time join one tuple, governed by
//!    the *coalescence window*;
//! 3. tunes the window with a [`sensitivity`] sweep: too small truncates
//!    (events of one error split across tuples), too large collapses
//!    (independent errors merge); the knee of the tuples-vs-window curve
//!    — 330 s in the paper — is the operating point;
//! 4. [`relate`]s user failures to the system errors sharing their
//!    tuples, producing the error–failure relationship matrix (Table 2)
//!    including NAP→PANU propagation evidence.
//!
//! Because the daemons ship over the same unreliable PAN they measure,
//! the pipeline itself is a fault domain: [`trace`] provides the JSONL
//! export/import path with both strict and lenient (skip-and-count)
//! importers, and [`chaos`] deterministically injects transport faults
//! (truncated/garbled lines, duplicated shipments, out-of-order
//! delivery, clock skew) to exercise those defenses.

pub mod analyzer;
pub mod chaos;
pub mod coalesce;
pub mod entry;
pub mod logs;
pub mod merge;
pub mod relate;
pub mod repository;
pub mod sensitivity;
pub mod trace;

pub use analyzer::LogAnalyzer;
pub use chaos::{inject, ship_through_chaos, ChaosConfig, ChaosStats};
pub use coalesce::{coalesce, coalesce_fixed_window, truncation_rate, Tuple};
pub use entry::{LogRecord, RecordPayload, SystemLogEntry, TestLogEntry};
pub use logs::{SystemLog, TestLog};
pub use merge::merge_records;
pub use relate::{RelationshipMatrix, RelationshipObservation};
pub use repository::Repository;
pub use sensitivity::{detect_knee, SensitivityCurve};
pub use trace::{
    export_trace, import_trace, import_trace_lenient, repository_from_records, QuarantineReport,
    TraceError,
};
