//! Step 3: inferring error–failure relationships from tuple contents.
//!
//! "If a tuple contains both a *Connect failed* high-level message and
//! HCI low-level messages, an evidence of a HCI–connect relationship is
//! found. Counting all the HCI–connect evidences gives a mean to weight
//! the relationship." Relating each Test Log with the NAP's System Log
//! as well exposes NAP→PANU error propagation — the `local` vs `NAP`
//! columns of Table 2.

use crate::coalesce::{coalesce, Tuple};
use crate::entry::{LogRecord, NodeId};
use crate::merge::merge_records;
use btpan_faults::{CauseSite, SystemComponent, UserFailure};
use btpan_sim::time::SimDuration;
use std::collections::BTreeMap;

/// One observation: a user failure co-tupled with system evidence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RelationshipObservation {
    /// The user-level failure.
    pub failure: UserFailure,
    /// The strongest co-tupled system evidence, if any.
    pub cause: Option<(SystemComponent, CauseSite)>,
}

/// One flattened matrix cell: the failure, its optional related system
/// cause, and the observation count (see [`RelationshipMatrix::cells`]).
pub type CellCount = (UserFailure, Option<(SystemComponent, CauseSite)>, u64);

/// The Table 2 matrix: per user failure, evidence counts per
/// (component, site) plus the no-evidence count.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RelationshipMatrix {
    counts: BTreeMap<(UserFailure, SystemComponent, CauseSite), u64>,
    none_counts: BTreeMap<UserFailure, u64>,
    totals: BTreeMap<UserFailure, u64>,
}

impl RelationshipMatrix {
    /// An empty matrix.
    pub fn new() -> Self {
        RelationshipMatrix::default()
    }

    /// Builds the matrix from per-node record streams.
    ///
    /// For each PANU node: merge its Test records, its local System
    /// records, and the NAP's System records (tagged by node id), then
    /// coalesce with `window` and extract one observation per user
    /// failure in each tuple.
    pub fn from_node_logs(
        node_streams: &[(NodeId, Vec<LogRecord>)],
        nap_system: &[LogRecord],
        nap_node: NodeId,
        window: SimDuration,
    ) -> Self {
        let mut matrix = RelationshipMatrix::new();
        for (node, records) in node_streams {
            let merged = merge_records([records.clone(), nap_system.to_vec()]);
            for tuple in coalesce(&merged, window) {
                for obs in observations_in(&tuple, *node, nap_node) {
                    matrix.record(obs);
                }
            }
        }
        matrix
    }

    /// Multi-piconet variant of [`RelationshipMatrix::from_node_logs`]:
    /// each node stream carries the set of master node-ids whose System
    /// Logs can propagate errors to it — its home NAP, plus the masters
    /// of every piconet it bridges into (scatternet). Evidence from any
    /// of those masters counts as `CauseSite::Nap`.
    pub fn from_node_logs_multi(
        node_streams: &[(NodeId, Vec<u64>, Vec<LogRecord>)],
        master_systems: &[(NodeId, Vec<LogRecord>)],
        window: SimDuration,
    ) -> Self {
        let mut matrix = RelationshipMatrix::new();
        for (node, masters, records) in node_streams {
            let mut streams = vec![records.clone()];
            for (m, recs) in master_systems {
                if masters.contains(m) {
                    streams.push(recs.clone());
                }
            }
            let merged = merge_records(streams);
            for tuple in coalesce(&merged, window) {
                for obs in observations_in_multi(&tuple, *node, masters) {
                    matrix.record(obs);
                }
            }
        }
        matrix
    }

    /// Merges another matrix's counts into this one (pooling testbeds
    /// or seeds).
    pub fn absorb(&mut self, other: &RelationshipMatrix) {
        for (&key, &v) in &other.counts {
            *self.counts.entry(key).or_insert(0) += v;
        }
        for (&f, &v) in &other.none_counts {
            *self.none_counts.entry(f).or_insert(0) += v;
        }
        for (&f, &v) in &other.totals {
            *self.totals.entry(f).or_insert(0) += v;
        }
    }

    /// Adds one observation.
    pub fn record(&mut self, obs: RelationshipObservation) {
        *self.totals.entry(obs.failure).or_insert(0) += 1;
        match obs.cause {
            Some((component, site)) => {
                *self
                    .counts
                    .entry((obs.failure, component, site))
                    .or_insert(0) += 1;
            }
            None => {
                *self.none_counts.entry(obs.failure).or_insert(0) += 1;
            }
        }
    }

    /// Total observations of `failure`.
    pub fn total(&self, failure: UserFailure) -> u64 {
        self.totals.get(&failure).copied().unwrap_or(0)
    }

    /// Grand total over all failures.
    pub fn grand_total(&self) -> u64 {
        self.totals.values().sum()
    }

    /// Row percentage for (`failure`, `component`, `site`).
    pub fn percent(
        &self,
        failure: UserFailure,
        component: SystemComponent,
        site: CauseSite,
    ) -> f64 {
        let total = self.total(failure);
        if total == 0 {
            return 0.0;
        }
        let n = self
            .counts
            .get(&(failure, component, site))
            .copied()
            .unwrap_or(0);
        100.0 * n as f64 / total as f64
    }

    /// Row percentage with no system evidence.
    pub fn percent_none(&self, failure: UserFailure) -> f64 {
        let total = self.total(failure);
        if total == 0 {
            return 0.0;
        }
        100.0 * self.none_counts.get(&failure).copied().unwrap_or(0) as f64 / total as f64
    }

    /// Column total: percentage of *all* failures showing evidence from
    /// `component` (local + NAP) — the paper's "49.9 % of user failures
    /// are due to HCI".
    pub fn column_total_percent(&self, component: SystemComponent) -> f64 {
        let grand = self.grand_total();
        if grand == 0 {
            return 0.0;
        }
        let n: u64 = self
            .counts
            .iter()
            .filter(|((_, c, _), _)| *c == component)
            .map(|(_, v)| *v)
            .sum();
        100.0 * n as f64 / grand as f64
    }

    /// Share of `failure` among all observed failures (the TOT column).
    pub fn mix_percent(&self, failure: UserFailure) -> f64 {
        let grand = self.grand_total();
        if grand == 0 {
            return 0.0;
        }
        100.0 * self.total(failure) as f64 / grand as f64
    }

    /// Flat, deterministically ordered dump of every cell: evidence
    /// cells first (cause `Some`), then the no-evidence cells. Together
    /// with [`RelationshipMatrix::add_count`] this allows lossless
    /// round-tripping through a serialized snapshot.
    pub fn cells(&self) -> Vec<CellCount> {
        let mut out: Vec<_> = self
            .counts
            .iter()
            .map(|(&(f, c, s), &n)| (f, Some((c, s)), n))
            .collect();
        out.extend(self.none_counts.iter().map(|(&f, &n)| (f, None, n)));
        out
    }

    /// Adds `n` pre-aggregated observations of (`failure`, `cause`) —
    /// the bulk inverse of [`RelationshipMatrix::record`].
    pub fn add_count(
        &mut self,
        failure: UserFailure,
        cause: Option<(SystemComponent, CauseSite)>,
        n: u64,
    ) {
        if n == 0 {
            return;
        }
        *self.totals.entry(failure).or_insert(0) += n;
        match cause {
            Some((component, site)) => {
                *self.counts.entry((failure, component, site)).or_insert(0) += n;
            }
            None => {
                *self.none_counts.entry(failure).or_insert(0) += n;
            }
        }
    }
}

/// Extracts the observations of one tuple: each user failure of `node`
/// pairs with the dominant co-tupled system evidence (local beats NAP on
/// ties; the component physically closest in time wins).
///
/// Public so the streaming engine (`btpan-stream`) applies the exact
/// same evidence-ranking rule to its incrementally closed tuples.
pub fn observations_in(
    tuple: &Tuple,
    node: NodeId,
    nap_node: NodeId,
) -> Vec<RelationshipObservation> {
    observations_in_multi(tuple, node, &[nap_node])
}

/// [`observations_in`] generalized to several masters: system evidence
/// from any node in `masters` counts as NAP-side (propagated) evidence.
/// A single-piconet node passes its one NAP; a scatternet bridge passes
/// the masters of every piconet it time-shares.
pub fn observations_in_multi(
    tuple: &Tuple,
    node: NodeId,
    masters: &[NodeId],
) -> Vec<RelationshipObservation> {
    let mut out = Vec::new();
    for failure in tuple.failures() {
        if failure.node != node {
            continue;
        }
        // Find the system entry nearest in time to the failure.
        let mut best: Option<(u64, SystemComponent, CauseSite)> = None;
        for sys in tuple.system_entries() {
            let site = if sys.node == node {
                CauseSite::Local
            } else if masters.contains(&sys.node) {
                CauseSite::Nap
            } else {
                continue;
            };
            let gap = if sys.at >= failure.at {
                sys.at.since(failure.at).as_micros()
            } else {
                failure.at.since(sys.at).as_micros()
            };
            // Local entries win ties against NAP ones (propagation is
            // claimed only when the NAP evidence is strictly closer).
            let rank = gap * 2 + u64::from(site == CauseSite::Nap);
            if best.is_none_or(|(r, _, _)| rank < r) {
                best = Some((rank, sys.fault.component(), site));
            }
        }
        out.push(RelationshipObservation {
            failure: failure.failure,
            cause: best.map(|(_, c, s)| (c, s)),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::{SystemLogEntry, TestLogEntry, WorkloadTag};
    use btpan_faults::SystemFault;
    use btpan_sim::time::SimTime;

    const NAP: NodeId = 100;

    fn fail(seq: u64, node: NodeId, at_s: u64, failure: UserFailure) -> LogRecord {
        LogRecord::from_test(
            seq,
            TestLogEntry {
                at: SimTime::from_secs(at_s),
                node,
                failure,
                workload: WorkloadTag::Random,
                packet_type: None,
                packets_sent_before: None,
                app: None,
                distance_m: 5.0,
                idle_before_s: None,
            },
        )
    }

    fn sys(seq: u64, node: NodeId, at_s: u64, fault: SystemFault) -> LogRecord {
        LogRecord::from_system(
            seq,
            SystemLogEntry::new(SimTime::from_secs(at_s), node, fault),
        )
    }

    #[test]
    fn local_evidence_found() {
        let node_records = vec![
            sys(0, 1, 95, SystemFault::HciCommandTimeout),
            fail(1, 1, 100, UserFailure::ConnectFailed),
        ];
        let m = RelationshipMatrix::from_node_logs(
            &[(1, node_records)],
            &[],
            NAP,
            SimDuration::from_secs(330),
        );
        assert_eq!(m.total(UserFailure::ConnectFailed), 1);
        assert_eq!(
            m.percent(
                UserFailure::ConnectFailed,
                SystemComponent::Hci,
                CauseSite::Local
            ),
            100.0
        );
    }

    #[test]
    fn nap_propagation_detected() {
        let node_records = vec![fail(0, 1, 100, UserFailure::PacketLoss)];
        let nap_records = vec![sys(1, NAP, 98, SystemFault::L2capUnexpectedFrame)];
        let m = RelationshipMatrix::from_node_logs(
            &[(1, node_records)],
            &nap_records,
            NAP,
            SimDuration::from_secs(330),
        );
        assert_eq!(
            m.percent(
                UserFailure::PacketLoss,
                SystemComponent::L2cap,
                CauseSite::Nap
            ),
            100.0
        );
    }

    #[test]
    fn local_beats_nap_on_equal_distance() {
        let node_records = vec![
            fail(0, 1, 100, UserFailure::ConnectFailed),
            sys(1, 1, 102, SystemFault::HciCommandTimeout),
        ];
        let nap_records = vec![sys(2, NAP, 98, SystemFault::HciCommandTimeout)];
        let m = RelationshipMatrix::from_node_logs(
            &[(1, node_records)],
            &nap_records,
            NAP,
            SimDuration::from_secs(330),
        );
        assert_eq!(
            m.percent(
                UserFailure::ConnectFailed,
                SystemComponent::Hci,
                CauseSite::Local
            ),
            100.0
        );
    }

    #[test]
    fn no_evidence_counted_as_none() {
        let node_records = vec![fail(0, 1, 100, UserFailure::InquiryScanFailed)];
        let m = RelationshipMatrix::from_node_logs(
            &[(1, node_records)],
            &[],
            NAP,
            SimDuration::from_secs(330),
        );
        assert_eq!(m.percent_none(UserFailure::InquiryScanFailed), 100.0);
    }

    #[test]
    fn far_away_evidence_not_related() {
        // System entry 1000 s before the failure: different tuple.
        let node_records = vec![
            sys(0, 1, 100, SystemFault::HciCommandTimeout),
            fail(1, 1, 1100, UserFailure::ConnectFailed),
        ];
        let m = RelationshipMatrix::from_node_logs(
            &[(1, node_records)],
            &[],
            NAP,
            SimDuration::from_secs(330),
        );
        assert_eq!(m.percent_none(UserFailure::ConnectFailed), 100.0);
    }

    #[test]
    fn column_and_mix_totals() {
        let mut m = RelationshipMatrix::new();
        for _ in 0..3 {
            m.record(RelationshipObservation {
                failure: UserFailure::ConnectFailed,
                cause: Some((SystemComponent::Hci, CauseSite::Local)),
            });
        }
        m.record(RelationshipObservation {
            failure: UserFailure::PacketLoss,
            cause: Some((SystemComponent::L2cap, CauseSite::Nap)),
        });
        assert_eq!(m.grand_total(), 4);
        assert_eq!(m.column_total_percent(SystemComponent::Hci), 75.0);
        assert_eq!(m.column_total_percent(SystemComponent::L2cap), 25.0);
        assert_eq!(m.mix_percent(UserFailure::ConnectFailed), 75.0);
        assert_eq!(m.mix_percent(UserFailure::BindFailed), 0.0);
        assert_eq!(m.percent_none(UserFailure::BindFailed), 0.0);
    }

    #[test]
    fn cells_round_trip() {
        let mut m = RelationshipMatrix::new();
        for _ in 0..3 {
            m.record(RelationshipObservation {
                failure: UserFailure::ConnectFailed,
                cause: Some((SystemComponent::Hci, CauseSite::Local)),
            });
        }
        m.record(RelationshipObservation {
            failure: UserFailure::PacketLoss,
            cause: None,
        });
        let mut rebuilt = RelationshipMatrix::new();
        for (failure, cause, n) in m.cells() {
            rebuilt.add_count(failure, cause, n);
        }
        assert_eq!(rebuilt, m);
        assert_eq!(rebuilt.grand_total(), 4);
    }

    #[test]
    fn multi_master_propagation_from_remote_piconet() {
        // A bridge node relates to evidence from either of its masters;
        // an unrelated third master stays invisible.
        let node_records = vec![fail(0, 1, 100, UserFailure::PacketLoss)];
        let masters = vec![
            (
                200u64,
                vec![sys(1, 200, 98, SystemFault::L2capUnexpectedFrame)],
            ),
            (
                300u64,
                vec![sys(2, 300, 99, SystemFault::HciCommandTimeout)],
            ),
            (
                400u64,
                vec![sys(3, 400, 100, SystemFault::HciCommandTimeout)],
            ),
        ];
        let m = RelationshipMatrix::from_node_logs_multi(
            &[(1, vec![200, 300], node_records)],
            &masters,
            SimDuration::from_secs(330),
        );
        // The node-300 entry is closest (gap 1 s beats 2 s) and counts
        // as NAP-site; node 400 is not one of this node's masters.
        assert_eq!(
            m.percent(
                UserFailure::PacketLoss,
                SystemComponent::Hci,
                CauseSite::Nap
            ),
            100.0
        );
        assert_eq!(m.grand_total(), 1);
    }

    #[test]
    fn multi_with_single_master_matches_from_node_logs() {
        let node_records = vec![
            sys(0, 1, 95, SystemFault::HciCommandTimeout),
            fail(1, 1, 100, UserFailure::ConnectFailed),
        ];
        let nap_records = vec![sys(2, NAP, 98, SystemFault::L2capUnexpectedFrame)];
        let single = RelationshipMatrix::from_node_logs(
            &[(1, node_records.clone())],
            &nap_records,
            NAP,
            SimDuration::from_secs(330),
        );
        let multi = RelationshipMatrix::from_node_logs_multi(
            &[(1, vec![NAP], node_records)],
            &[(NAP, nap_records)],
            SimDuration::from_secs(330),
        );
        assert_eq!(single, multi);
    }

    #[test]
    fn foreign_node_entries_ignored() {
        // A system entry from an unrelated PANU must not count.
        let node_records = vec![
            fail(0, 1, 100, UserFailure::ConnectFailed),
            sys(1, 2, 99, SystemFault::HciCommandTimeout), // node 2!
        ];
        let m = RelationshipMatrix::from_node_logs(
            &[(1, node_records)],
            &[],
            NAP,
            SimDuration::from_secs(330),
        );
        assert_eq!(m.percent_none(UserFailure::ConnectFailed), 100.0);
    }
}
