//! Per-node Test and System log files.
//!
//! Append-only stores with monotone sequence numbers, mirroring the two
//! files every BT node keeps: the Test Log (user failure reports) and
//! the System Log (all error information from applications and system
//! daemons).

use crate::entry::{LogRecord, NodeId, SystemLogEntry, TestLogEntry};
use btpan_sim::time::SimTime;

/// The Test Log of one node.
#[derive(Debug, Clone, Default)]
pub struct TestLog {
    node: NodeId,
    entries: Vec<TestLogEntry>,
    next_seq: u64,
}

impl TestLog {
    /// Creates the Test Log of `node`.
    pub fn new(node: NodeId) -> Self {
        TestLog {
            node,
            entries: Vec::new(),
            next_seq: 0,
        }
    }

    /// The owning node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Appends a failure report.
    ///
    /// # Panics
    ///
    /// Panics if the entry belongs to a different node.
    pub fn append(&mut self, entry: TestLogEntry) -> u64 {
        assert_eq!(entry.node, self.node, "entry written to wrong Test Log");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.push(entry);
        seq
    }

    /// All entries in append order.
    pub fn entries(&self) -> &[TestLogEntry] {
        &self.entries
    }

    /// Number of reports.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no reports were written.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries written at or after `since` (incremental extraction).
    pub fn since(&self, since: SimTime) -> impl Iterator<Item = &TestLogEntry> {
        self.entries.iter().filter(move |e| e.at >= since)
    }

    /// Converts to merged records, numbering with the given offset.
    pub fn to_records(&self, seq_offset: u64) -> Vec<LogRecord> {
        let mut out = Vec::new();
        self.to_records_into(seq_offset, &mut out);
        out
    }

    /// Appends this log's records to `out` (pre-reserving), so a merger
    /// draining several logs fills one vector instead of collecting and
    /// re-copying per log.
    pub fn to_records_into(&self, seq_offset: u64, out: &mut Vec<LogRecord>) {
        out.reserve(self.entries.len());
        out.extend(
            self.entries
                .iter()
                .enumerate()
                .map(|(i, e)| LogRecord::from_test(seq_offset + i as u64, e.clone())),
        );
    }
}

/// The System Log of one node.
#[derive(Debug, Clone, Default)]
pub struct SystemLog {
    node: NodeId,
    entries: Vec<SystemLogEntry>,
    next_seq: u64,
}

impl SystemLog {
    /// Creates the System Log of `node`.
    pub fn new(node: NodeId) -> Self {
        SystemLog {
            node,
            entries: Vec::new(),
            next_seq: 0,
        }
    }

    /// The owning node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Appends an error entry.
    ///
    /// # Panics
    ///
    /// Panics if the entry belongs to a different node.
    pub fn append(&mut self, entry: SystemLogEntry) -> u64 {
        assert_eq!(entry.node, self.node, "entry written to wrong System Log");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.push(entry);
        seq
    }

    /// All entries in append order.
    pub fn entries(&self) -> &[SystemLogEntry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries written at or after `since`.
    pub fn since(&self, since: SimTime) -> impl Iterator<Item = &SystemLogEntry> {
        self.entries.iter().filter(move |e| e.at >= since)
    }

    /// Converts to merged records, numbering with the given offset.
    pub fn to_records(&self, seq_offset: u64) -> Vec<LogRecord> {
        let mut out = Vec::new();
        self.to_records_into(seq_offset, &mut out);
        out
    }

    /// Appends this log's records to `out` (pre-reserving), so a merger
    /// draining several logs fills one vector instead of collecting and
    /// re-copying per log.
    pub fn to_records_into(&self, seq_offset: u64, out: &mut Vec<LogRecord>) {
        out.reserve(self.entries.len());
        out.extend(
            self.entries
                .iter()
                .enumerate()
                .map(|(i, e)| LogRecord::from_system(seq_offset + i as u64, e.clone())),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::WorkloadTag;
    use btpan_faults::{SystemFault, UserFailure};

    fn test_entry(node: NodeId, at_s: u64) -> TestLogEntry {
        TestLogEntry {
            at: SimTime::from_secs(at_s),
            node,
            failure: UserFailure::ConnectFailed,
            workload: WorkloadTag::Realistic,
            packet_type: None,
            packets_sent_before: None,
            app: Some("Web".into()),
            distance_m: 0.5,
            idle_before_s: Some(12.0),
        }
    }

    #[test]
    fn append_and_read_back() {
        let mut log = TestLog::new(4);
        assert!(log.is_empty());
        let s0 = log.append(test_entry(4, 10));
        let s1 = log.append(test_entry(4, 20));
        assert_eq!((s0, s1), (0, 1));
        assert_eq!(log.len(), 2);
        assert_eq!(log.node(), 4);
    }

    #[test]
    #[should_panic(expected = "wrong Test Log")]
    fn wrong_node_rejected() {
        let mut log = TestLog::new(4);
        log.append(test_entry(5, 10));
    }

    #[test]
    fn incremental_extraction() {
        let mut log = TestLog::new(1);
        log.append(test_entry(1, 10));
        log.append(test_entry(1, 20));
        log.append(test_entry(1, 30));
        let fresh: Vec<_> = log.since(SimTime::from_secs(20)).collect();
        assert_eq!(fresh.len(), 2);
    }

    #[test]
    fn system_log_round_trip() {
        let mut log = SystemLog::new(2);
        log.append(SystemLogEntry::new(
            SimTime::from_secs(5),
            2,
            SystemFault::HotplugTimeout,
        ));
        assert_eq!(log.len(), 1);
        assert!(!log.is_empty());
        let records = log.to_records(100);
        assert_eq!(records[0].seq, 100);
        assert!(records[0].as_system().is_some());
    }

    #[test]
    fn to_records_into_appends_after_existing() {
        let mut test_log = TestLog::new(1);
        test_log.append(test_entry(1, 10));
        let mut sys_log = SystemLog::new(1);
        sys_log.append(SystemLogEntry::new(
            SimTime::from_secs(5),
            1,
            SystemFault::HotplugTimeout,
        ));
        let mut merged = Vec::new();
        test_log.to_records_into(0, &mut merged);
        sys_log.to_records_into(1, &mut merged);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].seq, 0);
        assert_eq!(merged[1].seq, 1);
        assert!(merged[0].as_failure().is_some());
        assert!(merged[1].as_system().is_some());
    }

    #[test]
    fn record_conversion_preserves_order() {
        let mut log = TestLog::new(1);
        log.append(test_entry(1, 10));
        log.append(test_entry(1, 5)); // out-of-order timestamps allowed
        let recs = log.to_records(0);
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].seq, 0);
        assert_eq!(recs[1].seq, 1);
    }
}
