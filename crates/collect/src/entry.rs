//! Log entry types: the two levels of failure data.
//!
//! A Test Log entry is the user-level failure report, carrying "details
//! about the BT node status during the failure (e.g. the WL type, the
//! packet type, the number of sent/received packets)" — exactly the
//! status the failure-distribution analyses (Fig. 3a–c, Fig. 4) slice
//! on. A System Log entry is one error record from a stack module or OS
//! daemon.

use btpan_faults::{SystemFault, UserFailure};
use btpan_sim::time::SimTime;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;

/// Node identifier within a testbed.
pub type NodeId = u64;

/// Which workload the node was running (mirrors
/// `btpan_workload::WorkloadKind` without a dependency cycle).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadTag {
    /// The Random WL testbed.
    Random,
    /// The Realistic WL testbed.
    Realistic,
}

/// Baseband packet type tag recorded in failure reports (stringly enum
/// kept log-friendly).
pub type PacketTypeTag = &'static str;

/// A user-level failure report (Test Log).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TestLogEntry {
    /// When the failure manifested.
    pub at: SimTime,
    /// The reporting node.
    pub node: NodeId,
    /// The failure as the user perceives it.
    pub failure: UserFailure,
    /// Which workload was running.
    pub workload: WorkloadTag,
    /// Baseband packet type in use (`"DH5"` etc.), if a transfer was
    /// active.
    pub packet_type: Option<String>,
    /// Packets sent on the connection before the failure (the Fig. 3b
    /// "connection length").
    pub packets_sent_before: Option<u64>,
    /// The emulated application, if the Realistic WL was running.
    pub app: Option<String>,
    /// Antenna distance from the NAP in metres.
    pub distance_m: f64,
    /// Idle time (`T_W`) that preceded this cycle, if the cycle reused a
    /// connection (the paper's idle-time analysis).
    pub idle_before_s: Option<f64>,
}

/// A system-level error record (System Log).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemLogEntry {
    /// When the component logged the error.
    pub at: SimTime,
    /// The node whose system log holds the entry.
    pub node: NodeId,
    /// The fault the component signalled.
    pub fault: SystemFault,
    /// The raw log line.
    pub message: String,
}

impl SystemLogEntry {
    /// Builds an entry with the fault's canonical message.
    pub fn new(at: SimTime, node: NodeId, fault: SystemFault) -> Self {
        SystemLogEntry {
            at,
            node,
            fault,
            message: fault.log_message().to_string(),
        }
    }
}

/// The payload of a merged record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RecordPayload {
    /// A user-level failure report.
    Test(TestLogEntry),
    /// A system-level error entry.
    System(SystemLogEntry),
}

/// One record in a merged, time-ordered stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogRecord {
    /// Timestamp of the underlying entry.
    pub at: SimTime,
    /// The node that produced the entry.
    pub node: NodeId,
    /// Monotone sequence number breaking timestamp ties deterministically.
    pub seq: u64,
    /// The entry itself.
    pub payload: RecordPayload,
}

impl LogRecord {
    /// Wraps a test entry.
    pub fn from_test(seq: u64, entry: TestLogEntry) -> Self {
        LogRecord {
            at: entry.at,
            node: entry.node,
            seq,
            payload: RecordPayload::Test(entry),
        }
    }

    /// Wraps a system entry.
    pub fn from_system(seq: u64, entry: SystemLogEntry) -> Self {
        LogRecord {
            at: entry.at,
            node: entry.node,
            seq,
            payload: RecordPayload::System(entry),
        }
    }

    /// The user failure, if this is a test record.
    pub fn as_failure(&self) -> Option<&TestLogEntry> {
        match &self.payload {
            RecordPayload::Test(t) => Some(t),
            RecordPayload::System(_) => None,
        }
    }

    /// The system fault, if this is a system record.
    pub fn as_system(&self) -> Option<&SystemLogEntry> {
        match &self.payload {
            RecordPayload::System(s) => Some(s),
            RecordPayload::Test(_) => None,
        }
    }
}

impl Eq for LogRecord {}

impl PartialOrd for LogRecord {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for LogRecord {
    fn cmp(&self, other: &Self) -> Ordering {
        self.at
            .cmp(&other.at)
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btpan_faults::SystemFault;

    fn test_entry(at_s: u64) -> TestLogEntry {
        TestLogEntry {
            at: SimTime::from_secs(at_s),
            node: 3,
            failure: UserFailure::PacketLoss,
            workload: WorkloadTag::Random,
            packet_type: Some("DM1".into()),
            packets_sent_before: Some(42),
            app: None,
            distance_m: 5.0,
            idle_before_s: None,
        }
    }

    #[test]
    fn record_accessors() {
        let t = LogRecord::from_test(1, test_entry(10));
        assert!(t.as_failure().is_some());
        assert!(t.as_system().is_none());
        let s = LogRecord::from_system(
            2,
            SystemLogEntry::new(SimTime::from_secs(9), 3, SystemFault::HciCommandTimeout),
        );
        assert!(s.as_system().is_some());
        assert!(s.as_failure().is_none());
        assert_eq!(s.as_system().unwrap().message, "HCI command timeout");
    }

    #[test]
    fn ordering_by_time_then_seq() {
        let a = LogRecord::from_test(5, test_entry(10));
        let b = LogRecord::from_test(2, test_entry(10));
        let c = LogRecord::from_test(1, test_entry(11));
        assert!(b < a, "same time orders by seq");
        assert!(a < c, "earlier time first");
    }

    #[test]
    fn serde_round_trip() {
        let r = LogRecord::from_system(
            7,
            SystemLogEntry::new(SimTime::from_millis(1500), 2, SystemFault::BnepOccupied),
        );
        let json = serde_json::to_string(&r).unwrap();
        let back: LogRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn status_fields_survive() {
        let e = test_entry(1);
        assert_eq!(e.packet_type.as_deref(), Some("DM1"));
        assert_eq!(e.packets_sent_before, Some(42));
        assert_eq!(e.distance_m, 5.0);
    }
}
