//! Deterministic fault injection for the collection pipeline itself.
//!
//! The paper's LogAnalyzer daemons shipped log files over the very PAN
//! being measured, so the collection path saw the same unreliable
//! transport as the workload: interrupted transfers truncate a log
//! mid-record, retransmissions deliver the same shipment twice, nodes
//! flush out of order, and unsynchronized clocks skew timestamps across
//! nodes. This module reproduces those pipeline faults *on the exported
//! trace*, so the importer's defenses ([`import_trace_lenient`],
//! [`Repository::store_record`] idempotency) can be exercised
//! deterministically: the same [`ChaosConfig`] (including its seed)
//! always yields the same corrupted byte stream.
//!
//! The injector is text-level on purpose — it garbles the JSONL wire
//! format the way a real transport would, rather than politely mutating
//! parsed records.

use crate::entry::LogRecord;
use crate::repository::Repository;
use crate::trace::{export_trace, import_trace_lenient, repository_from_records, QuarantineReport};
use btpan_sim::rng::SimRng;
use btpan_sim::time::SimTime;

/// Per-line fault probabilities and shaping for the pipeline injector.
///
/// All rates are probabilities in `[0, 1]`, applied independently per
/// trace line. The default injects nothing.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosConfig {
    /// Probability a line is garbled (random junk spliced in, making it
    /// unparseable).
    pub corrupt_line_rate: f64,
    /// Probability a line is cut off mid-record (interrupted transfer).
    pub truncate_line_rate: f64,
    /// Probability a line is delivered twice (retransmission).
    pub duplicate_rate: f64,
    /// Maximum displacement, in lines, of out-of-order delivery
    /// (0 = in-order).
    pub reorder_window: usize,
    /// Half-width, in seconds, of the uniform clock skew applied to each
    /// record's timestamp (0.0 = synchronized clocks).
    pub clock_skew_s: f64,
    /// Seed of the injector's own RNG stream.
    pub seed: u64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            corrupt_line_rate: 0.0,
            truncate_line_rate: 0.0,
            duplicate_rate: 0.0,
            reorder_window: 0,
            clock_skew_s: 0.0,
            seed: 0,
        }
    }
}

impl ChaosConfig {
    /// A config that injects nothing — the identity pipeline.
    pub fn none(seed: u64) -> Self {
        ChaosConfig {
            seed,
            ..ChaosConfig::default()
        }
    }

    /// True when every fault kind is disabled.
    pub fn is_noop(&self) -> bool {
        self.corrupt_line_rate <= 0.0
            && self.truncate_line_rate <= 0.0
            && self.duplicate_rate <= 0.0
            && self.reorder_window == 0
            && self.clock_skew_s <= 0.0
    }
}

/// What the injector actually did to a trace.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ChaosStats {
    /// Lines in the pristine trace.
    pub lines_in: usize,
    /// Lines in the corrupted trace (after duplication).
    pub lines_out: usize,
    /// Lines garbled into unparseable junk.
    pub corrupted: usize,
    /// Lines cut off mid-record.
    pub truncated: usize,
    /// Lines delivered twice.
    pub duplicated: usize,
    /// Records whose timestamp was skewed.
    pub skewed: usize,
}

impl ChaosStats {
    /// Lines damaged beyond parsing (corrupted + truncated).
    pub fn damaged(&self) -> usize {
        self.corrupted + self.truncated
    }
}

/// Applies the configured pipeline faults to an exported trace,
/// returning the corrupted trace and a tally of the injected faults.
///
/// Deterministic: the fault pattern depends only on `config` (including
/// `config.seed`) and the input line count, never on wall-clock state.
pub fn inject(trace: &str, config: &ChaosConfig) -> (String, ChaosStats) {
    let mut stats = ChaosStats::default();
    let mut rng = SimRng::seed_from(config.seed).fork("collect/chaos");
    let mut lines: Vec<String> = Vec::new();

    for line in trace.lines() {
        if line.trim().is_empty() {
            continue;
        }
        stats.lines_in += 1;
        let line = maybe_skew_clock(line, config, &mut rng, &mut stats);
        let copies = if config.duplicate_rate > 0.0 && rng.chance(config.duplicate_rate) {
            stats.duplicated += 1;
            2
        } else {
            1
        };
        for _ in 0..copies {
            lines.push(damage_line(&line, config, &mut rng, &mut stats));
        }
    }

    if config.reorder_window > 0 {
        reorder(&mut lines, config.reorder_window, &mut rng);
    }

    stats.lines_out = lines.len();
    let mut out = lines.join("\n");
    if !out.is_empty() {
        out.push('\n');
    }
    (out, stats)
}

/// End-to-end shipment of a repository through a faulty pipeline:
/// export, inject, lenient re-import, rebuild.
///
/// The rebuilt repository contains every record that survived the
/// transport (duplicates collapsed by
/// [`Repository::store_record`]); the [`QuarantineReport`] counts what
/// the importer had to discard and the [`ChaosStats`] what the injector
/// actually broke.
pub fn ship_through_chaos(
    repo: &Repository,
    config: &ChaosConfig,
) -> (Repository, QuarantineReport, ChaosStats) {
    let trace = export_trace(repo);
    let (noisy, stats) = inject(&trace, config);
    let (records, report) = import_trace_lenient(&noisy);
    (repository_from_records(&records), report, stats)
}

/// Re-serializes a record line with its timestamp shifted by a uniform
/// skew in `±clock_skew_s`, saturating at the epoch. Unparseable lines
/// pass through untouched.
fn maybe_skew_clock(
    line: &str,
    config: &ChaosConfig,
    rng: &mut SimRng,
    stats: &mut ChaosStats,
) -> String {
    if config.clock_skew_s <= 0.0 {
        return line.to_string();
    }
    let Ok(mut record) = serde_json::from_str::<LogRecord>(line) else {
        return line.to_string();
    };
    let skew_us = (config.clock_skew_s * 1e6) as i64;
    let delta = rng.uniform_u64(0, 2 * skew_us as u64) as i64 - skew_us;
    if delta == 0 {
        return line.to_string();
    }
    stats.skewed += 1;
    let at = record.at.as_micros() as i64;
    record.at = SimTime::from_micros(at.saturating_add(delta).max(0) as u64);
    serde_json::to_string(&record).expect("record re-serializes")
}

/// Garbles or truncates a line per the configured rates (garbling wins
/// when both fire).
fn damage_line(
    line: &str,
    config: &ChaosConfig,
    rng: &mut SimRng,
    stats: &mut ChaosStats,
) -> String {
    if config.corrupt_line_rate > 0.0 && rng.chance(config.corrupt_line_rate) {
        stats.corrupted += 1;
        return garble(line, rng);
    }
    if config.truncate_line_rate > 0.0 && rng.chance(config.truncate_line_rate) {
        stats.truncated += 1;
        return truncate(line, rng);
    }
    line.to_string()
}

/// Splices junk into a line right after its opening brace, guaranteeing
/// a syntax error (not a bare EOF) at a position that still varies junk
/// content by line.
fn garble(line: &str, rng: &mut SimRng) -> String {
    let junk: String = (0..4)
        .map(|_| (b'#' + rng.uniform_u64(0, 20) as u8) as char)
        .collect();
    match line.find('{') {
        Some(pos) => format!("{}{}{}", &line[..pos + 1], junk, &line[pos + 1..]),
        None => junk,
    }
}

/// Cuts a line at a random interior character boundary, leaving an
/// unterminated record (mid-write interruption).
fn truncate(line: &str, rng: &mut SimRng) -> String {
    let boundaries: Vec<usize> = line
        .char_indices()
        .map(|(i, _)| i)
        .filter(|&i| i > 0)
        .collect();
    if boundaries.is_empty() {
        return String::new();
    }
    let cut = boundaries[rng.uniform_u64(0, boundaries.len() as u64 - 1) as usize];
    line[..cut].to_string()
}

/// Bounded out-of-order delivery: each line may swap forward by at most
/// `window` positions, so displacement stays local the way real
/// interleaved shipments are.
fn reorder(lines: &mut [String], window: usize, rng: &mut SimRng) {
    for i in 0..lines.len() {
        let hi = (i + window).min(lines.len().saturating_sub(1));
        if hi > i {
            let j = rng.uniform_u64(i as u64, hi as u64) as usize;
            lines.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::{SystemLogEntry, TestLogEntry, WorkloadTag};
    use crate::trace::import_trace;
    use btpan_faults::{SystemFault, UserFailure};

    fn sample_repo(n: u64) -> Repository {
        let repo = Repository::new();
        for i in 0..n {
            repo.store_test(TestLogEntry {
                at: SimTime::from_secs(10 + i),
                node: 1 + i % 6,
                failure: UserFailure::PacketLoss,
                workload: WorkloadTag::Random,
                packet_type: Some("DM1".into()),
                packets_sent_before: Some(i),
                app: None,
                distance_m: 5.0,
                idle_before_s: None,
            });
            repo.store_system(SystemLogEntry::new(
                SimTime::from_secs(10 + i),
                0,
                SystemFault::HciCommandTimeout,
            ));
        }
        repo
    }

    #[test]
    fn noop_config_is_identity() {
        let repo = sample_repo(20);
        let trace = export_trace(&repo);
        let (out, stats) = inject(&trace, &ChaosConfig::none(7));
        assert_eq!(out, trace);
        assert_eq!(stats.damaged(), 0);
        assert_eq!(stats.lines_in, stats.lines_out);
        assert!(ChaosConfig::none(7).is_noop());
    }

    #[test]
    fn injection_is_deterministic() {
        let trace = export_trace(&sample_repo(50));
        let config = ChaosConfig {
            corrupt_line_rate: 0.1,
            truncate_line_rate: 0.1,
            duplicate_rate: 0.1,
            reorder_window: 3,
            clock_skew_s: 2.0,
            seed: 99,
        };
        let (a, sa) = inject(&trace, &config);
        let (b, sb) = inject(&trace, &config);
        assert_eq!(a, b);
        assert_eq!(sa, sb);
        let (c, _) = inject(
            &trace,
            &ChaosConfig {
                seed: 100,
                ..config
            },
        );
        assert_ne!(a, c, "different seeds must change the fault pattern");
    }

    #[test]
    fn damaged_lines_fail_strict_and_quarantine_lenient() {
        let trace = export_trace(&sample_repo(100));
        let config = ChaosConfig {
            corrupt_line_rate: 0.05,
            truncate_line_rate: 0.05,
            seed: 3,
            ..ChaosConfig::default()
        };
        let (noisy, stats) = inject(&trace, &config);
        assert!(stats.damaged() > 0, "200 lines at 10% must damage some");
        assert!(import_trace(&noisy).is_err());
        let (records, report) = import_trace_lenient(&noisy);
        assert_eq!(report.quarantined.len(), stats.damaged());
        assert_eq!(records.len() + report.quarantined.len(), stats.lines_out);
    }

    #[test]
    fn duplicates_collapse_on_import() {
        let repo = sample_repo(40);
        let config = ChaosConfig {
            duplicate_rate: 0.5,
            seed: 11,
            ..ChaosConfig::default()
        };
        let (rebuilt, report, stats) = ship_through_chaos(&repo, &config);
        assert!(stats.duplicated > 0);
        assert!(report.is_clean(), "duplication alone loses nothing");
        assert_eq!(rebuilt.total_count(), repo.total_count());
        assert_eq!(export_trace(&rebuilt), export_trace(&repo));
    }

    #[test]
    fn reordering_is_repaired_by_lenient_import() {
        let repo = sample_repo(40);
        let config = ChaosConfig {
            reorder_window: 5,
            seed: 21,
            ..ChaosConfig::default()
        };
        let trace = export_trace(&repo);
        let (noisy, _) = inject(&trace, &config);
        assert_ne!(noisy, trace, "window 5 over 80 lines must move something");
        let (rebuilt, report, _) = ship_through_chaos(&repo, &config);
        assert!(report.is_clean());
        assert_eq!(export_trace(&rebuilt), trace);
    }

    #[test]
    fn clock_skew_moves_timestamps_but_loses_nothing() {
        let repo = sample_repo(30);
        let config = ChaosConfig {
            clock_skew_s: 3.0,
            seed: 5,
            ..ChaosConfig::default()
        };
        let (rebuilt, report, stats) = ship_through_chaos(&repo, &config);
        assert!(stats.skewed > 0);
        assert!(report.is_clean(), "skew changes values, not framing");
        assert_eq!(rebuilt.total_count(), repo.total_count());
        assert_ne!(export_trace(&rebuilt), export_trace(&repo));
    }

    #[test]
    fn full_chaos_end_to_end_keeps_most_data() {
        let repo = sample_repo(200);
        let config = ChaosConfig {
            corrupt_line_rate: 0.03,
            truncate_line_rate: 0.02,
            duplicate_rate: 0.1,
            reorder_window: 4,
            clock_skew_s: 1.0,
            seed: 77,
        };
        let (rebuilt, report, stats) = ship_through_chaos(&repo, &config);
        assert!(!report.is_clean());
        assert_eq!(report.quarantined.len(), stats.damaged());
        assert!(rebuilt.total_count() <= repo.total_count());
        // 5% damage on 400 lines leaves the vast majority intact.
        assert!(rebuilt.total_count() >= repo.total_count() * 8 / 10);
        assert!(report.yield_fraction() > 0.8);
    }
}
