//! Property-based tests over merge and coalescence.

use btpan_collect::coalesce::coalesce;
use btpan_collect::entry::{LogRecord, SystemLogEntry};
use btpan_collect::merge::merge_records;
use btpan_faults::SystemFault;
use btpan_sim::time::{SimDuration, SimTime};
use proptest::prelude::*;

fn records_from(times: &[u64]) -> Vec<LogRecord> {
    let mut sorted: Vec<u64> = times.to_vec();
    sorted.sort_unstable();
    sorted
        .iter()
        .enumerate()
        .map(|(i, &t)| {
            LogRecord::from_system(
                i as u64,
                SystemLogEntry::new(SimTime::from_secs(t), 1, SystemFault::HciCommandTimeout),
            )
        })
        .collect()
}

proptest! {
    #[test]
    fn coalesce_partitions_input(times in prop::collection::vec(0u64..100_000, 0..300), w in 0u64..5_000) {
        let records = records_from(&times);
        let tuples = coalesce(&records, SimDuration::from_secs(w));
        let total: usize = tuples.iter().map(|t| t.len()).sum();
        prop_assert_eq!(total, records.len());
        // Tuples are in time order and non-overlapping beyond the window.
        for pair in tuples.windows(2) {
            let last = pair[0].records.last().unwrap().at;
            let first = pair[1].records.first().unwrap().at;
            prop_assert!(first.saturating_since(last) > SimDuration::from_secs(w));
        }
    }

    #[test]
    fn coalesce_monotone(times in prop::collection::vec(0u64..100_000, 0..300), w1 in 0u64..5_000, w2 in 0u64..5_000) {
        let (lo, hi) = (w1.min(w2), w1.max(w2));
        let records = records_from(&times);
        let a = coalesce(&records, SimDuration::from_secs(lo)).len();
        let b = coalesce(&records, SimDuration::from_secs(hi)).len();
        prop_assert!(b <= a);
    }

    #[test]
    fn intra_tuple_gaps_bounded(times in prop::collection::vec(0u64..50_000, 0..200), w in 1u64..2_000) {
        let records = records_from(&times);
        for tuple in coalesce(&records, SimDuration::from_secs(w)) {
            for pair in tuple.records.windows(2) {
                prop_assert!(pair[1].at.saturating_since(pair[0].at) <= SimDuration::from_secs(w));
            }
        }
    }

    #[test]
    fn merge_sorted_and_complete(a in prop::collection::vec(0u64..10_000, 0..100),
                                 b in prop::collection::vec(0u64..10_000, 0..100)) {
        let ra = records_from(&a);
        let rb = records_from(&b);
        let merged = merge_records([ra.clone(), rb.clone()]);
        prop_assert_eq!(merged.len(), ra.len() + rb.len());
        for w in merged.windows(2) {
            prop_assert!(w[0].at <= w[1].at);
        }
    }
}
