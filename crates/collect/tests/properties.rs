//! Property-based tests over merge, coalescence and the shipment
//! pipeline (duplicate idempotency, out-of-order repair).

use btpan_collect::coalesce::coalesce;
use btpan_collect::entry::{LogRecord, SystemLogEntry};
use btpan_collect::merge::merge_records;
use btpan_collect::trace::{export_trace, import_trace_lenient, repository_from_records};
use btpan_collect::Repository;
use btpan_faults::SystemFault;
use btpan_sim::time::{SimDuration, SimTime};
use proptest::prelude::*;

fn records_from(times: &[u64]) -> Vec<LogRecord> {
    let mut sorted: Vec<u64> = times.to_vec();
    sorted.sort_unstable();
    sorted
        .iter()
        .enumerate()
        .map(|(i, &t)| {
            LogRecord::from_system(
                i as u64,
                SystemLogEntry::new(SimTime::from_secs(t), 1, SystemFault::HciCommandTimeout),
            )
        })
        .collect()
}

proptest! {
    #[test]
    fn coalesce_partitions_input(times in prop::collection::vec(0u64..100_000, 0..300), w in 0u64..5_000) {
        let records = records_from(&times);
        let tuples = coalesce(&records, SimDuration::from_secs(w));
        let total: usize = tuples.iter().map(|t| t.len()).sum();
        prop_assert_eq!(total, records.len());
        // Tuples are in time order and non-overlapping beyond the window.
        for pair in tuples.windows(2) {
            let last = pair[0].records.last().unwrap().at;
            let first = pair[1].records.first().unwrap().at;
            prop_assert!(first.saturating_since(last) > SimDuration::from_secs(w));
        }
    }

    #[test]
    fn coalesce_monotone(times in prop::collection::vec(0u64..100_000, 0..300), w1 in 0u64..5_000, w2 in 0u64..5_000) {
        let (lo, hi) = (w1.min(w2), w1.max(w2));
        let records = records_from(&times);
        let a = coalesce(&records, SimDuration::from_secs(lo)).len();
        let b = coalesce(&records, SimDuration::from_secs(hi)).len();
        prop_assert!(b <= a);
    }

    #[test]
    fn intra_tuple_gaps_bounded(times in prop::collection::vec(0u64..50_000, 0..200), w in 1u64..2_000) {
        let records = records_from(&times);
        for tuple in coalesce(&records, SimDuration::from_secs(w)) {
            for pair in tuple.records.windows(2) {
                prop_assert!(pair[1].at.saturating_since(pair[0].at) <= SimDuration::from_secs(w));
            }
        }
    }

    #[test]
    fn merge_sorted_and_complete(a in prop::collection::vec(0u64..10_000, 0..100),
                                 b in prop::collection::vec(0u64..10_000, 0..100)) {
        let ra = records_from(&a);
        let rb = records_from(&b);
        let merged = merge_records([ra.clone(), rb.clone()]);
        prop_assert_eq!(merged.len(), ra.len() + rb.len());
        for w in merged.windows(2) {
            prop_assert!(w[0].at <= w[1].at);
        }
    }

    /// Shipping every record 1 + k times leaves the repository exactly
    /// as if each had arrived once: re-delivery is idempotent.
    #[test]
    fn duplicate_shipment_is_idempotent(times in prop::collection::vec(0u64..10_000, 1..120),
                                        extra in 1usize..4) {
        let records = records_from(&times);
        let once = repository_from_records(&records);
        let noisy = Repository::new();
        for r in &records {
            for _ in 0..=extra {
                noisy.store_record(r.clone());
            }
        }
        prop_assert_eq!(noisy.total_count(), records.len());
        prop_assert_eq!(export_trace(&noisy), export_trace(&once));
    }

    /// Lenient import of an arbitrarily permuted trace restores the
    /// canonical `(timestamp, seq)` order with nothing lost.
    #[test]
    fn out_of_order_delivery_is_resorted(times in prop::collection::vec(0u64..10_000, 1..120),
                                         perm_seed in 0u64..1_000) {
        let records = records_from(&times);
        let trace = export_trace(&repository_from_records(&records));
        let mut lines: Vec<&str> = trace.lines().collect();
        // Deterministic permutation from perm_seed (Fisher–Yates with a
        // multiplicative hash — no RNG dependency in this test crate).
        let mut state = perm_seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        for i in (1..lines.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            lines.swap(i, j);
        }
        let shuffled = lines.join("\n");
        let (imported, report) = import_trace_lenient(&shuffled);
        prop_assert!(report.is_clean());
        prop_assert_eq!(imported.len(), records.len());
        for w in imported.windows(2) {
            prop_assert!((w[0].at, w[0].seq) < (w[1].at, w[1].seq));
        }
        prop_assert_eq!(export_trace(&repository_from_records(&imported)), trace);
    }
}
