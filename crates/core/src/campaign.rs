//! The 24/7 campaign simulator.
//!
//! A campaign runs a [`Topology`] — one or more piconets, each with its
//! own NAP, PANUs and workload, optionally stitched into a scatternet
//! by bridge nodes — for a simulated duration under a recovery policy.
//! Each PANU executes `BlueTest` connection plans; every phase consults
//! the mechanistic stack models (the bind race, baseband loss, latent
//! setup faults, channel stress) and the calibrated fault injector.
//! Failures write Test-Log reports and cause-correlated System-Log
//! entries (locally and, for propagated causes, on a master — bridges
//! spread propagated evidence across every piconet they serve), which
//! LogAnalyzers ship to the repository. Recovery runs under the
//! configured policy, and the resulting failure/recovery episodes feed
//! the TTF/TTR analysis.
//!
//! Determinism is per piconet: piconet `P` draws from the RNG root
//! `seed ⊕ P.seed_salt` and each node forks the stream named by its
//! `stream_key`, so adding a piconet (or running one alone) never
//! perturbs another's streams. The single-testbed
//! [`Topology::paper`] campaign replays the legacy byte streams
//! exactly.
//!
//! ## Packet-loss model
//!
//! A full 18-month campaign cannot run at slot fidelity (≈ 10¹⁰ slots),
//! so transfer outcomes use a two-tier model ([`LossModel`]):
//!
//! * the **relative** per-payload drop factors across the six packet
//!   types come from the slot-fidelity [`btpan_baseband`] simulation
//!   (`DropProfile::calibrate`) under a burst-boosted channel — relative
//!   factors are insensitive to the burst *frequency*, which scales all
//!   types alike;
//! * the **absolute** base rate is calibrated to the field failure mix
//!   (packet loss ≈ 33 % of failures at MTTF ≈ 630–845 s), exactly the
//!   quantity the paper measured rather than derived.

use crate::topology::Topology;
use btpan_analysis::ttf::{FailureEpisode, NodeTimeline};
use btpan_baseband::channel::GilbertElliott;
use btpan_baseband::hop::HopSequence;
use btpan_baseband::link::{DropProfile, LinkConfig};
use btpan_baseband::packet::PacketType;
use btpan_collect::analyzer::LogAnalyzer;
use btpan_collect::entry::{SystemLogEntry, TestLogEntry, WorkloadTag};
use btpan_collect::logs::{SystemLog, TestLog};
use btpan_collect::repository::Repository;
use btpan_faults::injector::{FaultInjector, InjectionConfig, Phase};
use btpan_faults::latent::{ConnectionLatency, LatentFaultModel};
use btpan_faults::stress::StressModel;
use btpan_faults::types::{CauseSite, SystemComponent, UserFailure};
use btpan_recovery::policy::RecoveryPolicy;
use btpan_recovery::sira::SiraCosts;
use btpan_sim::config::ConfigError;
use btpan_sim::prelude::*;
use btpan_sim::time::{SimDuration, SimTime};
use btpan_stack::socket::BindError;
use btpan_workload::{CycleParams, RandomWorkload, RealisticWorkload, WorkloadKind, WorkloadModel};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

mod metrics {
    use btpan_obs::{Counter, Registry};
    use std::sync::OnceLock;

    pub(super) struct CampaignMetrics {
        /// `btpan_campaign_failures_total` — manifested user failures.
        pub failures: Counter,
        /// `btpan_campaign_masked_total` — failures prevented by masking.
        pub masked: Counter,
        /// `btpan_campaign_cycles_total` — workload cycles completed or
        /// aborted.
        pub cycles: Counter,
    }

    pub(super) fn handles() -> &'static CampaignMetrics {
        static HANDLES: OnceLock<CampaignMetrics> = OnceLock::new();
        HANDLES.get_or_init(|| {
            let registry = Registry::global();
            CampaignMetrics {
                failures: registry.counter("btpan_campaign_failures_total"),
                masked: registry.counter("btpan_campaign_masked_total"),
                cycles: registry.counter("btpan_campaign_cycles_total"),
            }
        })
    }
}

/// Per-payload loss/mismatch rates by packet type.
#[derive(Debug, Clone, PartialEq)]
pub struct LossModel {
    /// Base per-payload drop probability (binomial-weighted mean over
    /// packet types = this value).
    pub base_drop: f64,
    /// Relative drop factor per packet type (indexed like
    /// [`PacketType::ALL`]).
    pub type_factor: [f64; 6],
    /// Per-payload probability of CRC-escaping corruption relative to a
    /// drop (bursts long enough to escape are a fixed fraction of bursts
    /// long enough to flush).
    pub undetected_ratio: f64,
}

impl LossModel {
    /// Calibrates the relative type factors by slot-fidelity simulation
    /// under a burst-boosted Gilbert–Elliott channel, then normalizes to
    /// the field-calibrated `base_drop`.
    ///
    /// Memoized process-wide: calibration only *forks* from `rng` (it
    /// never draws, so `rng`'s own stream is untouched either way),
    /// which makes the result a pure function of the fork-lineage seed
    /// and `base_drop`. Every Table-4 policy column and every
    /// supervisor retry re-calibrates with the same key, and each
    /// uncached run simulates 720 000 payloads at slot fidelity.
    pub fn calibrate(base_drop: f64, rng: &mut SimRng) -> Self {
        static CACHE: OnceLock<Mutex<HashMap<(u64, u64), LossModel>>> = OnceLock::new();
        let key = (rng.seed(), base_drop.to_bits());
        let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        if let Some(hit) = cache.lock().expect("calibration cache").get(&key) {
            return hit.clone();
        }
        let model = Self::calibrate_uncached(base_drop, rng);
        cache
            .lock()
            .expect("calibration cache")
            .insert(key, model.clone());
        model
    }

    /// The calibration itself, bypassing the memo (for benchmarks and
    /// for callers that mutate channel constants between runs).
    pub fn calibrate_uncached(base_drop: f64, rng: &mut SimRng) -> Self {
        let mut raw = [0.0f64; 6];
        for (i, pt) in PacketType::ALL.iter().enumerate() {
            // Deep-fade bursts (BER ~0.12): severe enough that FEC
            // cannot save a codeword stream, which is the regime the
            // paper's Fig. 3a ordering (every packet type suffers; the
            // per-byte exposure of small-payload types dominates) and
            // its CRC-weakness discussion describe.
            let channel = GilbertElliott::new(1e-2, 0.08, 5e-6, 0.12);
            let mut r = rng.fork_indexed("loss-calibration", i as u64);
            let prof = DropProfile::calibrate(
                LinkConfig::new(*pt).retry_limit(4),
                channel,
                HopSequence::new(0xCA11B),
                120_000,
                &mut r,
            );
            raw[i] = prof.p_drop.max(1e-9);
        }
        // Binomial(5, 1/2) weights of the Random WL packet-type pick.
        let weights = [1.0, 5.0, 10.0, 10.0, 5.0, 1.0];
        let wsum: f64 = weights.iter().sum();
        let mean: f64 = raw.iter().zip(&weights).map(|(r, w)| r * w).sum::<f64>() / wsum;
        let mut type_factor = [0.0; 6];
        for i in 0..6 {
            type_factor[i] = raw[i] / mean;
        }
        LossModel {
            base_drop,
            type_factor,
            undetected_ratio: 0.02,
        }
    }

    /// Per-payload drop probability for `pt`.
    pub fn p_drop(&self, pt: PacketType) -> f64 {
        let idx = PacketType::ALL
            .iter()
            .position(|&p| p == pt)
            .expect("known type");
        (self.base_drop * self.type_factor[idx]).clamp(0.0, 1.0)
    }

    /// Per-payload undetected-corruption probability for `pt`.
    pub fn p_undetected(&self, pt: PacketType) -> f64 {
        self.p_drop(pt) * self.undetected_ratio
    }
}

/// Campaign configuration.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Deterministic seed: same seed, same campaign.
    pub seed: u64,
    /// Simulated wall-clock duration.
    pub duration: SimDuration,
    /// The testbed topology this campaign runs: piconets, machines and
    /// scatternet bridges. Shared by `Arc` so multi-seed drivers clone
    /// configs cheaply.
    pub topology: Arc<Topology>,
    /// Convenience mirror of the **first** piconet's workload (legacy
    /// single-testbed callers; per-piconet workloads live in
    /// [`CampaignConfig::topology`]).
    pub workload: WorkloadKind,
    /// The recovery policy (Table 4 column).
    pub policy: RecoveryPolicy,
    /// Control-plane fault rates.
    pub injection: InjectionConfig,
    /// Latent connection-setup fault model.
    pub latent: LatentFaultModel,
    /// Channel-stress model.
    pub stress: StressModel,
    /// SIRA cost model.
    pub costs: SiraCosts,
    /// Field-calibrated base per-payload drop rate.
    pub base_drop: f64,
    /// Mean gap of unrelated background System-Log entries per node,
    /// seconds (they exercise the coalescence trade-off).
    pub noise_gap_s: f64,
    /// Replace the workload with the paper's special Fig. 3b variant
    /// (`N` = 10 000, `LS = LR` = 1691 B, hosts Verde and Win only).
    pub fig3b_variant: bool,
}

impl CampaignConfig {
    /// The paper-calibrated defaults for the single-testbed `workload`
    /// campaign under `policy`.
    pub fn paper(seed: u64, workload: WorkloadKind, policy: RecoveryPolicy) -> Self {
        Self::with_topology(seed, Topology::paper(workload), policy)
    }

    /// The paper's actual deployment: both testbeds in one campaign.
    pub fn paper_both(seed: u64, policy: RecoveryPolicy) -> Self {
        Self::with_topology(seed, Topology::paper_both(), policy)
    }

    /// Paper-calibrated defaults over an arbitrary `topology`.
    pub fn with_topology(
        seed: u64,
        topology: impl Into<Arc<Topology>>,
        policy: RecoveryPolicy,
    ) -> Self {
        let topology = topology.into();
        let workload = topology
            .piconets
            .first()
            .map_or(WorkloadKind::Random, |p| p.workload);
        CampaignConfig {
            seed,
            duration: SimDuration::from_secs(24 * 3600),
            topology,
            workload,
            policy,
            injection: InjectionConfig::paper_calibrated(),
            latent: LatentFaultModel::typical(),
            stress: StressModel::typical(),
            costs: SiraCosts::default(),
            base_drop: 1.68e-6,
            noise_gap_s: 11_000.0,
            fig3b_variant: false,
        }
    }

    /// Sets the duration.
    pub fn duration(mut self, d: SimDuration) -> Self {
        self.duration = d;
        self
    }

    /// Starts a validating builder from the paper-calibrated defaults.
    /// Struct literals remain supported; the builder front-loads checks
    /// on the fields whose bad values otherwise surface as panics deep
    /// in the run (a zero noise gap hangs `emit_noise`, a drop rate of
    /// 1 fails every payload).
    pub fn builder(
        seed: u64,
        workload: WorkloadKind,
        policy: RecoveryPolicy,
    ) -> CampaignConfigBuilder {
        CampaignConfigBuilder {
            config: CampaignConfig::paper(seed, workload, policy),
        }
    }
}

/// Validating builder for [`CampaignConfig`].
///
/// ```
/// use btpan_core::campaign::CampaignConfig;
/// use btpan_recovery::RecoveryPolicy;
/// use btpan_sim::time::SimDuration;
/// use btpan_workload::WorkloadKind;
///
/// let config = CampaignConfig::builder(7, WorkloadKind::Random, RecoveryPolicy::Siras)
///     .duration(SimDuration::from_secs(3600))
///     .build()
///     .unwrap();
/// assert_eq!(config.seed, 7);
///
/// let err = CampaignConfig::builder(7, WorkloadKind::Random, RecoveryPolicy::Siras)
///     .base_drop(1.5)
///     .build()
///     .unwrap_err();
/// assert_eq!(err.field, "base_drop");
/// ```
#[derive(Debug, Clone)]
pub struct CampaignConfigBuilder {
    config: CampaignConfig,
}

impl CampaignConfigBuilder {
    /// Simulated wall-clock duration.
    pub fn duration(mut self, duration: SimDuration) -> Self {
        self.config.duration = duration;
        self
    }

    /// Field-calibrated base per-payload drop rate.
    pub fn base_drop(mut self, rate: f64) -> Self {
        self.config.base_drop = rate;
        self
    }

    /// Mean gap of background System-Log noise entries, seconds.
    pub fn noise_gap_s(mut self, gap_s: f64) -> Self {
        self.config.noise_gap_s = gap_s;
        self
    }

    /// Switch to the paper's special Fig. 3b workload variant.
    pub fn fig3b_variant(mut self, on: bool) -> Self {
        self.config.fig3b_variant = on;
        self
    }

    /// The testbed topology to run (validated at [`build`]). Also
    /// refreshes the legacy `workload` mirror from its first piconet.
    ///
    /// [`build`]: CampaignConfigBuilder::build
    pub fn topology(mut self, topology: impl Into<Arc<Topology>>) -> Self {
        let topology = topology.into();
        if let Some(first) = topology.piconets.first() {
            self.config.workload = first.workload;
        }
        self.config.topology = topology;
        self
    }

    /// Control-plane fault rates.
    pub fn injection(mut self, injection: InjectionConfig) -> Self {
        self.config.injection = injection;
        self
    }

    /// SIRA cost model.
    pub fn costs(mut self, costs: SiraCosts) -> Self {
        self.config.costs = costs;
        self
    }

    /// Validates and returns the config, failing at construction time.
    pub fn build(self) -> Result<CampaignConfig, ConfigError> {
        if self.config.duration.as_micros() == 0 {
            return Err(ConfigError::new("duration", "must be positive"));
        }
        if !(0.0..1.0).contains(&self.config.base_drop) {
            return Err(ConfigError::new(
                "base_drop",
                format!(
                    "must be in [0, 1), got {}; a rate of 1 drops every payload",
                    self.config.base_drop
                ),
            ));
        }
        if self.config.noise_gap_s <= 0.0 || self.config.noise_gap_s.is_nan() {
            return Err(ConfigError::new(
                "noise_gap_s",
                "must be positive; the noise process needs a finite mean gap",
            ));
        }
        self.config.topology.validate()?;
        Ok(self.config)
    }
}

/// Per-piconet slice of a campaign: membership plus the counters that
/// [`CampaignResult`] pools across the whole topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PiconetOutcome {
    /// The spec's piconet id.
    pub piconet_id: u64,
    /// The spec's display label.
    pub label: String,
    /// The workload this piconet ran.
    pub workload: WorkloadKind,
    /// The master's node id.
    pub master: u64,
    /// PANU node ids, in declaration order (bridges listed in their
    /// home piconet).
    pub panus: Vec<u64>,
    /// Manifested failures in this piconet.
    pub failure_count: u64,
    /// Failures prevented by masking.
    pub masked_count: u64,
    /// Manifested failures recovered by SIRAs 1–3.
    pub covered_count: u64,
    /// Workload cycles completed or aborted.
    pub cycles_run: u64,
}

/// Everything a campaign produces.
#[derive(Debug)]
pub struct CampaignResult {
    /// The central repository with all shipped failure data.
    pub repository: Repository,
    /// Per-PANU failure timelines.
    pub timelines: Vec<NodeTimeline>,
    /// Failures prevented by masking.
    pub masked_count: u64,
    /// Manifested failures recovered by SIRAs 1–3.
    pub covered_count: u64,
    /// Manifested failures.
    pub failure_count: u64,
    /// Idle times (`T_W`, seconds) preceding *clean* reused-connection
    /// cycles (for the idle-time finding).
    pub clean_idles_s: Vec<f64>,
    /// Total workload cycles completed or aborted.
    pub cycles_run: u64,
    /// The simulated duration.
    pub simulated: SimDuration,
    /// The first piconet's workload (see [`CampaignResult::piconets`]
    /// for per-piconet workloads).
    pub workload: WorkloadKind,
    /// Per-piconet membership and counters, in topology order.
    pub piconets: Vec<PiconetOutcome>,
    /// Per-node system logs (master logs first, in topology order) for
    /// coalescence studies.
    pub system_logs: Vec<SystemLog>,
    /// Per-failure recovery record: `(failure, severity)` with `None`
    /// for unrecoverable failures (Table 3 machinery).
    pub recoveries: Vec<(UserFailure, Option<u8>)>,
}

impl CampaignResult {
    /// Pools every node's TTF/TTR series (per-node semantics).
    pub fn pooled_series(&self) -> btpan_analysis::ttf::TtfTtrSeries {
        let mut s = btpan_analysis::ttf::TtfTtrSeries::default();
        for tl in &self.timelines {
            s.extend(&tl.series());
        }
        s
    }

    /// The **piconet-level** TTF/TTR series the paper's Table 4 uses:
    /// failures of all PANUs merged onto one timeline ("each 30 minutes
    /// on average *a node in the piconet* fails"). TTF_i is the gap
    /// between the piconet returning to full service and the next
    /// failure anywhere in it (clamped at zero for overlapping
    /// downtimes); TTR stays per-failure.
    ///
    /// With a multi-piconet topology this merges **every** piconet onto
    /// one timeline; for the per-testbed view use
    /// [`CampaignResult::piconet_series_of`].
    pub fn piconet_series(&self) -> btpan_analysis::ttf::TtfTtrSeries {
        Self::merged_series(self.timelines.iter())
    }

    /// The piconet-level series of topology piconet `index` alone.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn piconet_series_of(&self, index: usize) -> btpan_analysis::ttf::TtfTtrSeries {
        let members = &self.piconets[index].panus;
        Self::merged_series(
            self.timelines
                .iter()
                .filter(|tl| members.contains(&tl.node)),
        )
    }

    fn merged_series<'a>(
        timelines: impl Iterator<Item = &'a NodeTimeline>,
    ) -> btpan_analysis::ttf::TtfTtrSeries {
        let mut episodes: Vec<&FailureEpisode> =
            timelines.flat_map(|tl| tl.episodes.iter()).collect();
        episodes.sort_by_key(|e| e.failed_at);
        let mut s = btpan_analysis::ttf::TtfTtrSeries::default();
        let mut prev_end = SimTime::ZERO;
        for e in episodes {
            s.ttf.push(e.failed_at.saturating_since(prev_end));
            s.ttr.push(e.ttr());
            prev_end = prev_end.max(e.recovered_at);
        }
        s
    }
}

/// The campaign driver.
///
/// The config is held behind an [`Arc`], so multi-seed drivers that
/// hand the same configuration to a worker pool (or retry a seed)
/// share one allocation instead of deep-cloning the config per run.
#[derive(Debug)]
pub struct Campaign {
    config: Arc<CampaignConfig>,
}

/// Mutable per-node simulation state.
struct NodeRun<'a> {
    node: u64,
    name: String,
    quirks: btpan_faults::HostQuirks,
    distance_m: f64,
    rng: SimRng,
    test_log: TestLog,
    system_log: SystemLog,
    /// One System Log per topology piconet, indexed like
    /// `topology.piconets`; propagated causes land on a master here.
    master_logs: &'a mut [SystemLog],
    /// Index of this node's home piconet in `master_logs`.
    home: usize,
    /// Indices of the piconets this node bridges into (empty for a
    /// plain PANU). A bridge's propagated causes spread over its home
    /// and every bridged piconet's master.
    remote_piconets: Vec<usize>,
    /// The workload of this node's piconet.
    workload: WorkloadKind,
    /// Per-link drop-probability multiplier (topology override).
    link_scale: f64,
    /// Fraction of slots this node's piconets grant it (1.0 for a
    /// plain PANU, 1/k for a bridge time-sharing k piconets).
    time_share: f64,
    injector: &'a FaultInjector,
    loss: &'a LossModel,
    cfg: &'a CampaignConfig,
    masking: btpan_recovery::masking::Masking,
    episodes: Vec<FailureEpisode>,
    masked: u64,
    covered: u64,
    clean_idles_s: Vec<f64>,
    cycles: u64,
    recoveries: Vec<(UserFailure, Option<u8>)>,
    /// Post-recovery hazard multiplier and remaining cycles.
    post: (f64, u32),
}

/// What a phase produced.
enum PhaseOutcome {
    /// Phase done, time advanced by the duration.
    Ok(SimDuration),
    /// A user failure manifested after the duration; the sampled cause.
    Failed {
        after: SimDuration,
        failure: UserFailure,
        cause: Option<(SystemComponent, CauseSite)>,
        packets_before: Option<u64>,
    },
}

impl Campaign {
    /// Creates a campaign. Accepts a plain config or an already-shared
    /// `Arc<CampaignConfig>`.
    pub fn new(config: impl Into<Arc<CampaignConfig>>) -> Self {
        Campaign {
            config: config.into(),
        }
    }

    /// The configuration this campaign runs.
    pub fn config(&self) -> &CampaignConfig {
        &self.config
    }

    /// Runs the campaign to completion: every piconet of the topology
    /// in declaration order, each from its own salted RNG root.
    pub fn run(&self) -> CampaignResult {
        let cfg: &CampaignConfig = &self.config;
        let topo: &Topology = &cfg.topology;
        let injector = FaultInjector::new(cfg.injection);
        // Loss calibration forks off the unsalted campaign seed so every
        // piconet (and the process-wide memo) shares one model.
        let mut calib_rng = SimRng::seed_from(cfg.seed).fork("loss-model");
        let loss = LossModel::calibrate(cfg.base_drop, &mut calib_rng);
        let scatternet = topo.to_scatternet();
        let repository = Repository::new();

        let mut master_logs: Vec<SystemLog> = topo
            .piconets
            .iter()
            .map(|p| SystemLog::new(p.master_id()))
            .collect();

        let mut timelines = Vec::with_capacity(topo.machine_count());
        let mut masked_count = 0;
        let mut covered_count = 0;
        let mut failure_count = 0;
        let mut clean_idles_s = Vec::new();
        let mut cycles_run = 0;
        let mut system_logs = Vec::with_capacity(topo.machine_count());
        let mut recoveries = Vec::new();
        let mut piconets = Vec::with_capacity(topo.piconets.len());

        for (pi, pico) in topo.piconets.iter().enumerate() {
            let root = SimRng::seed_from(cfg.seed ^ pico.seed_salt);
            let mut outcome = PiconetOutcome {
                piconet_id: pico.id,
                label: pico.label.clone(),
                workload: pico.workload,
                master: pico.master_id(),
                panus: Vec::new(),
                failure_count: 0,
                masked_count: 0,
                covered_count: 0,
                cycles_run: 0,
            };
            for spec in pico.panus() {
                outcome.panus.push(spec.node_id);
                // The Fig. 3b experiment ran on its target hosts only.
                if cfg.fig3b_variant && !spec.is_fig3b_target() {
                    continue;
                }
                let mut run = NodeRun {
                    node: spec.node_id,
                    name: spec.name.clone(),
                    quirks: spec.quirks,
                    distance_m: spec.distance_m,
                    rng: root.fork_indexed("node", spec.stream_key()),
                    test_log: TestLog::new(spec.node_id),
                    system_log: SystemLog::new(spec.node_id),
                    master_logs: &mut master_logs,
                    home: pi,
                    remote_piconets: topo.bridge_joins_of(spec.node_id),
                    workload: pico.workload,
                    link_scale: spec.drop_scale(),
                    time_share: scatternet.time_share(spec.node_id),
                    injector: &injector,
                    loss: &loss,
                    cfg,
                    masking: cfg.policy.masking(),
                    episodes: Vec::new(),
                    masked: 0,
                    covered: 0,
                    clean_idles_s: Vec::new(),
                    cycles: 0,
                    recoveries: Vec::new(),
                    post: (1.0, 0),
                };
                run.simulate();
                // Background noise entries exercise the coalescence window.
                run.emit_noise();
                // Ship through the LogAnalyzer daemon.
                let mut analyzer = LogAnalyzer::new(run.node);
                analyzer.run_once(&run.test_log, &run.system_log, &repository);
                timelines.push(NodeTimeline::new(
                    run.node,
                    run.episodes,
                    SimTime::ZERO,
                    SimTime::ZERO + cfg.duration,
                ));
                outcome.masked_count += run.masked;
                outcome.covered_count += run.covered;
                outcome.failure_count += run.test_log.len() as u64;
                outcome.cycles_run += run.cycles;
                clean_idles_s.extend(run.clean_idles_s);
                recoveries.append(&mut run.recoveries);
                system_logs.push(run.system_log);
            }
            masked_count += outcome.masked_count;
            covered_count += outcome.covered_count;
            failure_count += outcome.failure_count;
            cycles_run += outcome.cycles_run;
            piconets.push(outcome);
        }

        // Ship every master's System Log too (masters have no Test
        // Log), then front-load them so `system_logs` reads
        // `[masters.., panus..]` in topology order.
        for (i, log) in master_logs.into_iter().enumerate() {
            let mut analyzer = LogAnalyzer::new(log.node());
            let empty_test = TestLog::new(log.node());
            analyzer.run_once(&empty_test, &log, &repository);
            system_logs.insert(i, log);
        }

        let obs = metrics::handles();
        obs.failures.add(failure_count);
        obs.masked.add(masked_count);
        obs.cycles.add(cycles_run);

        CampaignResult {
            repository,
            timelines,
            masked_count,
            covered_count,
            failure_count,
            clean_idles_s,
            cycles_run,
            simulated: cfg.duration,
            workload: cfg.workload,
            piconets,
            system_logs,
            recoveries,
        }
    }
}

impl NodeRun<'_> {
    fn hazard(&self) -> f64 {
        if self.post.1 > 0 {
            self.post.0
        } else {
            1.0
        }
    }

    fn tick_post_recovery(&mut self) {
        if self.post.1 > 0 {
            self.post.1 -= 1;
        }
    }

    fn check(&mut self, phase: Phase) -> Option<btpan_faults::InjectedFailure> {
        // Post-recovery hazard: an extra activation chance of
        // (m - 1) x p on top of the base check.
        let base = self.injector.check_phase(phase, self.quirks, &mut self.rng);
        if base.is_some() {
            return base;
        }
        let m = self.hazard();
        if m > 1.0 {
            // Re-roll the phase with the residual probability mass.
            let extra = self.injector.check_phase(phase, self.quirks, &mut self.rng);
            if extra.is_some() && self.rng.chance(m - 1.0) {
                return extra;
            }
        }
        None
    }

    fn simulate(&mut self) {
        let end = SimTime::ZERO + self.cfg.duration;
        let mut now = SimTime::ZERO;
        let random_wl = if self.cfg.fig3b_variant {
            RandomWorkload::fig3b_fixed()
        } else {
            RandomWorkload::paper()
        };
        let realistic_wl = RealisticWorkload::paper();

        'campaign: while now < end {
            let plan = match self.workload {
                WorkloadKind::Random => random_wl.next_connection(&mut self.rng),
                WorkloadKind::Realistic => realistic_wl.next_connection(&mut self.rng),
            };
            let mut latent = ConnectionLatency::healthy();
            let mut prev_off: Option<f64> = None;

            for (i, cycle) in plan.cycles.iter().enumerate() {
                if now >= end {
                    break 'campaign;
                }
                self.cycles += 1;
                self.tick_post_recovery();
                let first = i == 0;
                match self.run_cycle(now, cycle, first, &mut latent) {
                    PhaseOutcome::Ok(dur) => {
                        if !first {
                            if let Some(idle) = prev_off {
                                self.clean_idles_s.push(idle);
                            }
                        }
                        now = now + dur + cycle.off_time;
                        if now > end {
                            now = end;
                        }
                        prev_off = Some(cycle.off_time.as_secs_f64());
                    }
                    PhaseOutcome::Failed {
                        after,
                        failure,
                        cause,
                        packets_before,
                    } => {
                        let failed_at = now + after;
                        if failed_at >= end {
                            break 'campaign;
                        }
                        let idle_before = if first { None } else { prev_off };
                        now = self.handle_failure(
                            failed_at,
                            failure,
                            cause,
                            packets_before,
                            cycle,
                            idle_before,
                            end,
                        );
                        // The connection is gone; start a new plan.
                        continue 'campaign;
                    }
                }
            }
        }
    }

    /// Runs one cycle; returns its outcome.
    fn run_cycle(
        &mut self,
        now: SimTime,
        cycle: &CycleParams,
        establishing: bool,
        latent: &mut ConnectionLatency,
    ) -> PhaseOutcome {
        let mut elapsed = SimDuration::ZERO;

        // --- inquiry/scan -------------------------------------------------
        if cycle.scan {
            elapsed += SimDuration::from_millis(1_280) * self.rng.uniform_u64(1, 3);
            if let Some(f) = self.check(Phase::Inquiry) {
                return PhaseOutcome::Failed {
                    after: elapsed,
                    failure: f.failure,
                    cause: f.cause,
                    packets_before: None,
                };
            }
        }

        // --- SDP search ----------------------------------------------------
        let sdp_requested = cycle.sdp || (self.masking.sdp_first && establishing);
        let mut sdp_done = false;
        if sdp_requested {
            elapsed += SimDuration::from_millis(700);
            if let Some(f) = self.check(Phase::SdpSearch) {
                // NAP-not-found is retry-maskable. Only searches the
                // workload itself requested count as masked failures —
                // extra SDP-first searches would not have run unmasked.
                match self.masking.try_mask(f.failure, &mut self.rng) {
                    btpan_recovery::masking::MaskOutcome::Masked { delay, .. } => {
                        if cycle.sdp {
                            self.masked += 1;
                        }
                        elapsed += delay;
                        sdp_done = true;
                    }
                    btpan_recovery::masking::MaskOutcome::NotMasked => {
                        return PhaseOutcome::Failed {
                            after: elapsed,
                            failure: f.failure,
                            cause: f.cause,
                            packets_before: None,
                        };
                    }
                }
            } else {
                sdp_done = true;
            }
        }

        // --- connection establishment ---------------------------------------
        if establishing {
            // L2CAP connect (paging + handshake).
            elapsed += SimDuration::from_millis(self.rng.uniform_u64(640, 2_560));
            if let Some(f) = self.check(Phase::L2capConnect) {
                return PhaseOutcome::Failed {
                    after: elapsed,
                    failure: f.failure,
                    cause: f.cause,
                    packets_before: None,
                };
            }

            // PAN connect. SDP-first masking shifts no-SDP attempts into
            // the with-SDP regime; count the avoided mass as masked.
            if self.masking.sdp_first && !cycle.sdp {
                let avoided = (self.cfg.injection.pan_fail_no_sdp
                    - self.cfg.injection.pan_fail_with_sdp)
                    .max(0.0)
                    * self.cfg.injection.hazard_scale;
                if self.rng.chance(avoided) {
                    self.masked += 1;
                }
            }
            if let Some(f) = self.check(Phase::PanConnect { sdp_done }) {
                return PhaseOutcome::Failed {
                    after: elapsed,
                    failure: f.failure,
                    cause: f.cause,
                    packets_before: None,
                };
            }

            // Bind: mechanistic T_C/T_H race via the hotplug model.
            let hotplug = if self.quirks.bind_prone {
                btpan_stack::hotplug::HotplugDaemon::hal_bug()
            } else {
                btpan_stack::hotplug::HotplugDaemon::healthy()
            };
            let timing = hotplug.sample(now + elapsed, &mut self.rng);
            let immediate_bind_at = now + elapsed + SimDuration::from_millis(200);
            let mut would_fail = immediate_bind_at < timing.iface_up_at;
            // Post-recovery hazard also covers the hotplug path: a
            // freshly rebooted HAL takes its slow paths more often.
            let m_now = self.hazard();
            if !would_fail && m_now > 1.0 && self.quirks.bind_prone {
                let p_bind = btpan_stack::hotplug::HotplugDaemon::hal_bug()
                    .p_immediate_bind_failure(SimDuration::from_millis(200));
                would_fail = self.rng.chance((m_now - 1.0) * p_bind);
            }
            if self.masking.bind_wait {
                // Masked bind: wait for readiness; never fails.
                if would_fail {
                    self.masked += 1;
                }
                elapsed = timing.iface_up_at.since(now).max(elapsed);
            } else {
                elapsed += SimDuration::from_millis(200);
                if would_fail {
                    let err = if immediate_bind_at < timing.l2cap_usable_at {
                        BindError::HciInvalidHandle
                    } else if immediate_bind_at < timing.iface_created_at {
                        BindError::InterfaceMissing
                    } else {
                        BindError::InterfaceNotConfigured
                    };
                    let cause = match err {
                        BindError::HciInvalidHandle => (SystemComponent::Hci, CauseSite::Local),
                        BindError::InterfaceMissing => (SystemComponent::Bnep, CauseSite::Local),
                        BindError::InterfaceNotConfigured => {
                            // BNEP created but unconfigured: hotplug and
                            // BNEP evidence in the 18.5/21.9 ratio.
                            if self.rng.chance(18.5 / (18.5 + 21.9)) {
                                (SystemComponent::Hotplug, CauseSite::Local)
                            } else {
                                (SystemComponent::Bnep, CauseSite::Local)
                            }
                        }
                    };
                    return PhaseOutcome::Failed {
                        after: elapsed,
                        failure: UserFailure::BindFailed,
                        cause: Some(cause),
                        packets_before: None,
                    };
                }
            }

            // Role switch: request then command, command retry-maskable.
            elapsed += SimDuration::from_millis(self.rng.uniform_u64(20, 80));
            if let Some(f) = self.check(Phase::SwitchRoleRequest) {
                return PhaseOutcome::Failed {
                    after: elapsed,
                    failure: f.failure,
                    cause: f.cause,
                    packets_before: None,
                };
            }
            if let Some(f) = self.check(Phase::SwitchRoleCommand) {
                match self.masking.try_mask(f.failure, &mut self.rng) {
                    btpan_recovery::masking::MaskOutcome::Masked { delay, .. } => {
                        self.masked += 1;
                        elapsed += delay;
                    }
                    btpan_recovery::masking::MaskOutcome::NotMasked => {
                        return PhaseOutcome::Failed {
                            after: elapsed,
                            failure: f.failure,
                            cause: f.cause,
                            packets_before: None,
                        };
                    }
                }
            }

            // Fresh connection: roll its latent state (post-recovery
            // hazard raises the defect probability of fresh setups).
            let mut latent_model = self.cfg.latent;
            latent_model.p_latent = (latent_model.p_latent * self.hazard()).min(1.0);
            *latent = ConnectionLatency::roll(&latent_model, &mut self.rng);
        }

        // --- data transfer ---------------------------------------------------
        let pt = cycle.effective_packet_type();
        let payloads = cycle.baseband_payloads();
        let m = self.hazard();
        let stress_mult = self.cfg.stress.multiplier(cycle.duty_factor());
        let p_drop = (self.loss.p_drop(pt) * stress_mult * m * self.link_scale).clamp(0.0, 1.0);

        // Air time per payload, inflated by the application duty factor
        // (intermittent applications spread their payloads out).
        let mut per_payload =
            SimDuration::from_slots(pt.slots() + 1).mul_f64(1.0 / cycle.duty_factor().max(0.05));
        // A bridge only holds each piconet's channel for its share of
        // the scatternet epoch, stretching its transfers accordingly.
        if self.time_share < 1.0 {
            per_payload = per_payload.mul_f64(1.0 / self.time_share);
        }

        // Candidate failure points in *workload packets* (SDUs) —
        // Fig. 3b's "number of sent packets" axis — earliest wins.
        let sdus = cycle.n_packets.max(1);
        let payloads_per_sdu = (payloads as f64 / sdus as f64).max(1e-9);
        let packets_before_cycle = latent.packets_sent();
        let mut first_event: Option<(u64, UserFailure)> = None;
        if let Some(age) = latent.advance(sdus) {
            // Latent defect manifests as a broken link -> packet loss.
            let offset = age.saturating_sub(packets_before_cycle);
            first_event = Some((offset.min(sdus), UserFailure::PacketLoss));
        }
        if p_drop > 0.0 {
            let g = Geometric::new(p_drop).expect("p_drop in (0,1]");
            let at_payload = g.sample(&mut self.rng);
            if at_payload < payloads {
                let at = (at_payload as f64 / payloads_per_sdu) as u64;
                if first_event.is_none_or(|(e, _)| at < e) {
                    first_event = Some((at, UserFailure::PacketLoss));
                }
            }
        }
        // Residual injected link breaks.
        if self
            .rng
            .chance((self.injector.link_break_probability(payloads) * m).min(1.0))
        {
            let at = self.rng.uniform_u64(0, sdus - 1);
            if first_event.is_none_or(|(e, _)| at < e) {
                first_event = Some((at, UserFailure::PacketLoss));
            }
        }

        if let Some((at, failure)) = first_event {
            let cause = self
                .injector
                .materialize(failure, self.quirks, &mut self.rng)
                .cause;
            let packets_before = packets_before_cycle + at;
            let air = per_payload.mul_f64(at as f64 * payloads_per_sdu);
            return PhaseOutcome::Failed {
                after: elapsed + air,
                failure,
                cause,
                packets_before: Some(packets_before),
            };
        }

        // Data mismatch: CRC-escaping corruption plus stack corruption.
        let p_mismatch = (self.loss.p_undetected(pt) * payloads as f64
            + self.injector.mismatch_probability())
            * m;
        if self.rng.chance(p_mismatch.min(1.0)) {
            let cause = self
                .injector
                .materialize(UserFailure::DataMismatch, self.quirks, &mut self.rng)
                .cause;
            return PhaseOutcome::Failed {
                after: elapsed + per_payload * payloads,
                failure: UserFailure::DataMismatch,
                cause,
                packets_before: Some(latent.packets_sent()),
            };
        }

        elapsed += per_payload * payloads;
        PhaseOutcome::Ok(elapsed)
    }

    /// Records a failure, emits its log entries, runs recovery, and
    /// returns the instant the node is back in service.
    #[allow(clippy::too_many_arguments)]
    fn handle_failure(
        &mut self,
        failed_at: SimTime,
        failure: UserFailure,
        cause: Option<(SystemComponent, CauseSite)>,
        packets_before: Option<u64>,
        cycle: &CycleParams,
        idle_before: Option<f64>,
        end: SimTime,
    ) -> SimTime {
        // Test-Log report with node status.
        self.test_log.append(TestLogEntry {
            at: failed_at,
            node: self.node,
            failure,
            workload: match self.workload {
                WorkloadKind::Random => WorkloadTag::Random,
                WorkloadKind::Realistic => WorkloadTag::Realistic,
            },
            packet_type: Some(cycle.effective_packet_type().to_string()),
            packets_sent_before: packets_before,
            app: cycle.app.map(|a| a.label().to_string()),
            distance_m: self.distance_m,
            idle_before_s: idle_before,
        });

        // System-Log evidence. Real system logs chatter: the paper
        // collected ~16 system entries per user report (including
        // background noise). Error entries trickle in over the minutes
        // leading up to the manifestation (driver retries, daemon
        // respawns); their spread sets where the Fig. 2 coalescence
        // knee lands (the paper chose 330 s).
        if let Some((component, site)) = cause {
            let n_entries = 9 + self.rng.uniform_u64(0, 6);
            for _ in 0..n_entries {
                let back_s = self.rng.uniform_f64(0.0, 420.0);
                let back = SimDuration::from_secs_f64(back_s);
                let at = if SimTime::ZERO + back < failed_at {
                    failed_at - back
                } else {
                    failed_at
                };
                let fault = self
                    .injector
                    .system_fault_for(component, failure, &mut self.rng);
                match site {
                    CauseSite::Local => {
                        self.system_log
                            .append(SystemLogEntry::new(at, self.node, fault));
                    }
                    CauseSite::Nap => {
                        // A plain PANU propagates to its home master; a
                        // bridge spreads propagated evidence uniformly
                        // over every piconet it serves (the fault lives
                        // in the shared baseband/BNEP path). The extra
                        // draw happens only on bridge nodes, so plain
                        // campaigns replay legacy streams exactly.
                        let target = if self.remote_piconets.is_empty() {
                            self.home
                        } else {
                            let k = 1 + self.remote_piconets.len() as u64;
                            match self.rng.uniform_u64(0, k - 1) {
                                0 => self.home,
                                i => self.remote_piconets[(i - 1) as usize],
                            }
                        };
                        let master = self.master_logs[target].node();
                        self.master_logs[target].append(SystemLogEntry::new(at, master, fault));
                    }
                }
            }
        }

        // Recovery under the active policy.
        let outcome =
            self.cfg
                .policy
                .recover(failure, &self.cfg.costs, self.quirks.is_pda, &mut self.rng);
        if outcome.counts_for_coverage() {
            self.covered += 1;
        }
        self.recoveries.push((failure, outcome.severity));
        if let Some(severity) = outcome.severity.or(Some(1)) {
            self.post = (
                self.cfg.latent.post_recovery_multiplier(severity),
                self.cfg.latent.post_recovery_window(),
            );
        }
        let mut recovered_at = failed_at + outcome.duration;
        if recovered_at > end {
            recovered_at = end;
        }
        self.episodes.push(FailureEpisode {
            failed_at,
            recovered_at,
            failure,
        });
        recovered_at
    }

    /// Emits unrelated background System-Log entries over the campaign.
    fn emit_noise(&mut self) {
        let gap = Exponential::from_mean(self.cfg.noise_gap_s).expect("positive noise gap");
        let benign = [
            btpan_faults::SystemFault::HciCommandTimeout,
            btpan_faults::SystemFault::SdpConnectionRefused,
            btpan_faults::SystemFault::L2capUnexpectedFrame,
            btpan_faults::SystemFault::UsbAddressRejected,
        ];
        let mut t = SimTime::ZERO + SimDuration::from_secs_f64(gap.sample(&mut self.rng));
        let end = SimTime::ZERO + self.cfg.duration;
        while t < end {
            let fault = *self.rng.pick(&benign);
            self.system_log
                .append(SystemLogEntry::new(t, self.node, fault));
            t += SimDuration::from_secs_f64(gap.sample(&mut self.rng).max(1.0));
        }
        let _ = &self.name;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(seed: u64, workload: WorkloadKind, policy: RecoveryPolicy) -> CampaignResult {
        Campaign::new(
            CampaignConfig::paper(seed, workload, policy)
                .duration(SimDuration::from_secs(4 * 3600)),
        )
        .run()
    }

    #[test]
    fn campaign_is_deterministic() {
        let a = quick(42, WorkloadKind::Random, RecoveryPolicy::Siras);
        let b = quick(42, WorkloadKind::Random, RecoveryPolicy::Siras);
        assert_eq!(a.failure_count, b.failure_count);
        assert_eq!(a.cycles_run, b.cycles_run);
        assert_eq!(a.repository.total_count(), b.repository.total_count());
        assert_eq!(a.masked_count, b.masked_count);
    }

    #[test]
    fn different_seeds_differ() {
        let a = quick(1, WorkloadKind::Random, RecoveryPolicy::Siras);
        let b = quick(2, WorkloadKind::Random, RecoveryPolicy::Siras);
        assert_ne!(
            (a.failure_count, a.cycles_run),
            (b.failure_count, b.cycles_run)
        );
    }

    #[test]
    fn campaign_produces_failures_and_logs() {
        let r = quick(7, WorkloadKind::Random, RecoveryPolicy::Siras);
        assert!(r.failure_count > 20, "failures {}", r.failure_count);
        assert!(r.repository.test_count() as u64 == r.failure_count);
        assert!(r.repository.system_count() > 0);
        assert_eq!(r.timelines.len(), 6);
        assert!(r.cycles_run > 500);
    }

    #[test]
    fn masking_eliminates_bind_failures() {
        let masked = quick(11, WorkloadKind::Random, RecoveryPolicy::SirasAndMasking);
        let binds = masked
            .repository
            .tests()
            .iter()
            .filter(|t| t.failure == UserFailure::BindFailed)
            .count();
        assert_eq!(binds, 0, "masked run still shows bind failures");
        assert!(masked.masked_count > 0);
        let unmasked = quick(11, WorkloadKind::Random, RecoveryPolicy::Siras);
        let binds = unmasked
            .repository
            .tests()
            .iter()
            .filter(|t| t.failure == UserFailure::BindFailed)
            .count();
        assert!(binds > 0, "unmasked run shows no bind failures");
    }

    #[test]
    fn masking_raises_mttf() {
        let long = |policy| {
            Campaign::new(
                CampaignConfig::paper(13, WorkloadKind::Random, policy)
                    .duration(SimDuration::from_secs(30 * 3600)),
            )
            .run()
        };
        let base = long(RecoveryPolicy::Siras);
        let masked = long(RecoveryPolicy::SirasAndMasking);
        let mttf = |r: &CampaignResult| r.piconet_series().ttf_stats().mean().unwrap_or(f64::MAX);
        assert!(
            mttf(&masked) > mttf(&base) * 1.4,
            "masked {} base {}",
            mttf(&masked),
            mttf(&base)
        );
    }

    #[test]
    fn realistic_fails_less_than_random() {
        let random = quick(17, WorkloadKind::Random, RecoveryPolicy::Siras);
        let realistic = quick(17, WorkloadKind::Realistic, RecoveryPolicy::Siras);
        assert!(
            random.failure_count > realistic.failure_count * 2,
            "random {} realistic {}",
            random.failure_count,
            realistic.failure_count
        );
        assert!(!realistic.clean_idles_s.is_empty());
    }

    #[test]
    fn timelines_are_consistent() {
        let r = quick(23, WorkloadKind::Random, RecoveryPolicy::RebootOnly);
        for tl in &r.timelines {
            // NodeTimeline::new validated ordering; check uptime split.
            assert_eq!(tl.uptime() + tl.downtime(), tl.span());
        }
    }

    #[test]
    fn calibration_memo_matches_uncached() {
        let mut a = SimRng::seed_from(1234).fork("loss-model");
        let mut b = SimRng::seed_from(1234).fork("loss-model");
        let uncached = LossModel::calibrate_uncached(2e-6, &mut a);
        let first = LossModel::calibrate(2e-6, &mut b);
        let second = LossModel::calibrate(2e-6, &mut b); // memo hit
        assert_eq!(first, uncached);
        assert_eq!(second, uncached);
        // A different base_drop is a different key, not a stale hit.
        let other = LossModel::calibrate(3e-6, &mut b);
        assert_eq!(other.base_drop, 3e-6);
        assert_eq!(other.type_factor, uncached.type_factor);
    }

    #[test]
    fn loss_model_shape_matches_fig3a() {
        let mut rng = SimRng::seed_from(99);
        let lm = LossModel::calibrate(1.55e-5, &mut rng);
        // Per-byte loss must order DM1 worst ... DH5 best once payload
        // counts are included; per-payload factors must make 1-slot
        // types at least as bad as their 5-slot siblings.
        let per_byte = |pt: PacketType| lm.p_drop(pt) / f64::from(pt.max_payload_bytes());
        assert!(per_byte(PacketType::Dm1) > per_byte(PacketType::Dh5));
        assert!(per_byte(PacketType::Dh1) > per_byte(PacketType::Dh3));
        assert!(per_byte(PacketType::Dm3) > per_byte(PacketType::Dm5) * 0.8);
        assert!(lm.p_undetected(PacketType::Dh5) < lm.p_drop(PacketType::Dh5));
    }
}

#[cfg(test)]
mod hazard_tests {
    use super::*;

    /// The post-recovery hazard must be visible: a reboot-heavy policy
    /// shortens inter-failure gaps relative to shallow SIRAs.
    #[test]
    fn rejuvenation_penalty_shortens_reboot_policy_mttf() {
        let run = |policy| {
            Campaign::new(
                CampaignConfig::paper(21, WorkloadKind::Random, policy)
                    .duration(SimDuration::from_secs(40 * 3600)),
            )
            .run()
        };
        let reboot = run(RecoveryPolicy::RebootOnly);
        let siras = run(RecoveryPolicy::Siras);
        let mttf = |r: &CampaignResult| r.piconet_series().ttf_stats().mean().unwrap_or(f64::MAX);
        assert!(
            mttf(&reboot) < mttf(&siras),
            "reboot {} !< siras {}",
            mttf(&reboot),
            mttf(&siras)
        );
    }

    /// Disabling the rejuvenation model closes most of that gap.
    #[test]
    fn disabling_post_penalty_closes_the_gap() {
        let run = |policy, post_scale: f64| {
            let mut cfg = CampaignConfig::paper(22, WorkloadKind::Random, policy)
                .duration(SimDuration::from_secs(40 * 3600));
            cfg.latent.post_scale = post_scale;
            Campaign::new(cfg).run()
        };
        let mttf = |r: &CampaignResult| r.piconet_series().ttf_stats().mean().unwrap_or(f64::MAX);
        let with = mttf(&run(RecoveryPolicy::RebootOnly, 1.0));
        let without = mttf(&run(RecoveryPolicy::RebootOnly, 0.0));
        assert!(without > with * 1.15, "penalty off {without} vs on {with}");
    }

    /// The piconet-level series interleaves all six PANUs: it must hold
    /// every episode and its MTTF must sit well below any single node's.
    #[test]
    fn piconet_series_merges_all_nodes() {
        let r = Campaign::new(
            CampaignConfig::paper(23, WorkloadKind::Random, RecoveryPolicy::Siras)
                .duration(SimDuration::from_secs(30 * 3600)),
        )
        .run();
        let piconet = r.piconet_series();
        let per_node: usize = r.timelines.iter().map(|tl| tl.episodes.len()).sum();
        assert_eq!(piconet.len(), per_node);
        let pooled = r.pooled_series();
        let pico_mttf = piconet.ttf_stats().mean().unwrap();
        let node_mttf = pooled.ttf_stats().mean().unwrap();
        assert!(
            pico_mttf < node_mttf / 2.0,
            "piconet {pico_mttf} vs per-node {node_mttf}"
        );
    }
}
