//! Testbed assembly: one NAP plus six PANUs in a piconet.

use crate::machine::{paper_machines, Machine, MachineRole};
use btpan_baseband::piconet::Piconet;
use btpan_stack::host::BtHost;
use btpan_stack::sdp::SdpDatabase;
use btpan_workload::WorkloadKind;

/// A fully assembled testbed.
#[derive(Debug)]
pub struct Testbed {
    /// Which workload this testbed runs (the paper deployed one per WL).
    pub workload: WorkloadKind,
    /// The NAP host (`Giallo`).
    pub nap: BtHost,
    /// The six PANU hosts.
    pub panus: Vec<BtHost>,
    /// The piconet, mastered by the NAP.
    pub piconet: Piconet,
}

impl Testbed {
    /// Builds the paper testbed for `workload`.
    pub fn paper(workload: WorkloadKind) -> Self {
        Self::from_machines(workload, paper_machines())
    }

    /// Builds a testbed from one piconet of a [`crate::topology::Topology`].
    pub fn from_spec(spec: &crate::topology::PiconetSpec) -> Self {
        Self::from_machines(
            spec.workload,
            spec.machines.iter().map(|m| m.to_machine()).collect(),
        )
    }

    /// Builds a testbed from an explicit machine list.
    ///
    /// # Panics
    ///
    /// Panics unless exactly one machine has the NAP role and at most 7
    /// PANUs exist.
    pub fn from_machines(workload: WorkloadKind, machines: Vec<Machine>) -> Self {
        let mut nap = None;
        let mut panus = Vec::new();
        for m in machines {
            match m.role {
                MachineRole::Nap => {
                    assert!(nap.is_none(), "exactly one NAP expected");
                    nap = Some(BtHost::new(m.config));
                }
                MachineRole::Panu => panus.push(BtHost::new(m.config)),
            }
        }
        let mut nap = nap.expect("testbed needs a NAP");
        assert!(panus.len() <= 7, "a piconet holds at most 7 active slaves");
        // The NAP advertises its service and knows every PANU in range.
        nap.sdp = SdpDatabase::nap_server(nap.node_id());
        let mut piconet = Piconet::new(nap.node_id());
        for p in &mut panus {
            p.link_manager.add_neighbour(nap.node_id());
            nap.link_manager.add_neighbour(p.node_id());
            piconet
                .join(p.node_id())
                .expect("six PANUs fit the piconet");
        }
        Testbed {
            workload,
            nap,
            panus,
            piconet,
        }
    }

    /// The PANU with the given node id.
    pub fn panu(&self, node_id: u64) -> Option<&BtHost> {
        self.panus.iter().find(|p| p.node_id() == node_id)
    }

    /// Number of PANUs.
    pub fn panu_count(&self) -> usize {
        self.panus.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::NAP_NODE_ID;
    use btpan_stack::sdp::UUID_NAP;

    #[test]
    fn paper_testbed_assembles() {
        let tb = Testbed::paper(WorkloadKind::Random);
        assert_eq!(tb.panu_count(), 6);
        assert_eq!(tb.piconet.master(), NAP_NODE_ID);
        assert_eq!(tb.piconet.slave_count(), 6);
        assert!(tb.nap.sdp.lookup(UUID_NAP).is_some());
        assert!(tb.panu(1).is_some());
        assert!(tb.panu(99).is_none());
    }

    #[test]
    fn panus_know_the_nap() {
        let tb = Testbed::paper(WorkloadKind::Realistic);
        for p in &tb.panus {
            // neighbour lists are set (inquiry can find the NAP)
            let mut lm = p.link_manager.clone();
            let mut rng = btpan_sim::prelude::SimRng::seed_from(1);
            let res = lm.inquiry(8, 1.0, &mut rng);
            assert!(res.devices.contains(&NAP_NODE_ID), "{}", p.name());
        }
    }

    #[test]
    fn from_spec_matches_paper_builder() {
        let topo = crate::topology::Topology::paper_both();
        let tb = Testbed::from_spec(&topo.piconets[0]);
        assert_eq!(tb.panu_count(), 6);
        assert_eq!(tb.piconet.master(), NAP_NODE_ID);
        // Testbed B uses the renumbered global ids.
        let tb_b = Testbed::from_spec(&topo.piconets[1]);
        assert_eq!(tb_b.piconet.master(), NAP_NODE_ID + 100);
        assert!(tb_b.panu(104).is_some());
    }

    #[test]
    #[should_panic(expected = "needs a NAP")]
    fn testbed_without_nap_rejected() {
        let machines: Vec<Machine> = paper_machines()
            .into_iter()
            .filter(|m| m.role == MachineRole::Panu)
            .collect();
        let _ = Testbed::from_machines(WorkloadKind::Random, machines);
    }
}
