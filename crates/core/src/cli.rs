//! Command-line interface logic (the `btpan` binary).
//!
//! Subcommands:
//!
//! * `campaign` — run one campaign and print its headline numbers;
//!   `--export PATH` writes the collected logs as a JSONL failure trace;
//! * `analyze PATH` — import a trace and run merge-and-coalesce on it,
//!   printing the error–failure relationship summary; `--lenient-import`
//!   quarantines undecodable lines instead of aborting;
//! * `table4` — the four-policy dependability comparison;
//!   `--max-retries` / `--seed-timeout` run it under the fault-tolerant
//!   supervisor and report coverage-widened confidence intervals;
//! * `stream` — tail a JSONL trace through the `btpan-stream` engine
//!   and print live Table-2/Table-4 snapshots, with optional
//!   checkpoint/resume;
//! * `markov` — fit and print the analytic availability model.
//!
//! All parsing and execution lives here (returning the output as a
//! string) so it is unit-testable; the binary is a thin wrapper.
//!
//! Exit codes: `0` success, `2` usage/I-O/parse error,
//! [`EXIT_QUARANTINE`] (`3`) when the run succeeded but the trace was
//! unhealthy (lenient-import or streaming quarantine non-empty) — so CI
//! scripts can gate on trace health.

use crate::campaign::{Campaign, CampaignConfig};
use crate::experiment::{self, Scale};
use crate::machine::NAP_NODE_ID;
use crate::supervisor::SupervisorConfig;
use btpan_collect::entry::LogRecord;
use btpan_collect::relate::RelationshipMatrix;
use btpan_collect::trace::{
    export_trace, import_trace, import_trace_lenient, repository_from_records, QuarantineReport,
};
use btpan_faults::{CauseSite, SystemComponent, UserFailure};
use btpan_recovery::RecoveryPolicy;
use btpan_sim::time::SimDuration;
use btpan_stream::{Checkpoint, LineFramer, StreamConfig, StreamEngine, StreamSnapshot};
use btpan_workload::WorkloadKind;
use serde::Serialize;
use std::fmt;
use std::io::{Read as _, Seek as _, SeekFrom};

/// Exit code for "the command succeeded, but records were quarantined"
/// (`analyze --lenient-import` or `stream` on an unhealthy trace).
pub const EXIT_QUARANTINE: i32 = 3;

/// CLI errors.
#[derive(Debug)]
pub enum CliError {
    /// Unknown subcommand or flag, or missing value.
    Usage(String),
    /// File I/O failure.
    Io(std::io::Error),
    /// Trace parse failure.
    Trace(btpan_collect::trace::TraceError),
    /// Malformed checkpoint file.
    Checkpoint(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "usage error: {msg}\n\n{USAGE}"),
            CliError::Io(e) => write!(f, "io error: {e}"),
            CliError::Trace(e) => write!(f, "trace error: {e}"),
            CliError::Checkpoint(e) => write!(f, "checkpoint error: {e}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

/// The usage text.
pub const USAGE: &str = "btpan — Bluetooth PAN failure-data toolbench

USAGE:
  btpan campaign [--workload random|realistic] [--policy reboot|app-reboot|siras|siras-masking]
                 [--hours H] [--seed S] [--export PATH]
  btpan analyze PATH [--window SECS] [--lenient-import] [--json]
  btpan stream PATH [--window SECS] [--lag SECS] [--shards N] [--snapshot-every N]
               [--follow] [--poll-ms MS] [--idle-exit POLLS] [--idle-timeout-ms MS]
               [--checkpoint PATH] [--resume PATH] [--json]
  btpan table4 [--seeds N] [--hours H] [--max-retries N] [--seed-timeout SECS]
  btpan markov [--seeds N] [--hours H]
  btpan model
  btpan help";

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

fn parse_u64(args: &[String], flag: &str, default: u64) -> Result<u64, CliError> {
    match flag_value(args, flag) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| CliError::Usage(format!("{flag} expects an integer, got `{v}`"))),
    }
}

fn parse_workload(args: &[String]) -> Result<WorkloadKind, CliError> {
    match flag_value(args, "--workload") {
        None | Some("random") => Ok(WorkloadKind::Random),
        Some("realistic") => Ok(WorkloadKind::Realistic),
        Some(other) => Err(CliError::Usage(format!("unknown workload `{other}`"))),
    }
}

fn parse_policy(args: &[String]) -> Result<RecoveryPolicy, CliError> {
    match flag_value(args, "--policy") {
        None | Some("siras") => Ok(RecoveryPolicy::Siras),
        Some("reboot") => Ok(RecoveryPolicy::RebootOnly),
        Some("app-reboot") => Ok(RecoveryPolicy::AppRestartThenReboot),
        Some("siras-masking") => Ok(RecoveryPolicy::SirasAndMasking),
        Some(other) => Err(CliError::Usage(format!("unknown policy `{other}`"))),
    }
}

fn scale_from(args: &[String]) -> Result<Scale, CliError> {
    let seeds = parse_u64(args, "--seeds", 2)?;
    let hours = parse_u64(args, "--hours", 24)?;
    Ok(Scale {
        seeds: (1..=seeds).map(|k| k * 7).collect(),
        duration: SimDuration::from_secs(hours * 3600),
    })
}

/// A CLI result: the text to print plus the process exit status.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliOutcome {
    /// Text for stdout.
    pub output: String,
    /// Process exit status (`0` ok, [`EXIT_QUARANTINE`] on an unhealthy
    /// trace).
    pub status: i32,
}

impl CliOutcome {
    fn ok(output: String) -> Self {
        CliOutcome { output, status: 0 }
    }
}

/// Runs the CLI and returns its output text and exit status.
///
/// # Errors
///
/// Returns a [`CliError`] for unknown commands, bad flags, or I/O
/// problems.
pub fn run_cli(args: &[String]) -> Result<CliOutcome, CliError> {
    match args.first().map(String::as_str) {
        Some("campaign") => cmd_campaign(&args[1..]).map(CliOutcome::ok),
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("stream") => cmd_stream(&args[1..]),
        Some("table4") => cmd_table4(&args[1..]).map(CliOutcome::ok),
        Some("markov") => cmd_markov(&args[1..]).map(CliOutcome::ok),
        Some("model") => Ok(CliOutcome::ok(render_failure_model())),
        Some("help") | None => Ok(CliOutcome::ok(USAGE.to_string())),
        Some(other) => Err(CliError::Usage(format!("unknown command `{other}`"))),
    }
}

/// Runs the CLI and returns only its output text (exit status
/// discarded); see [`run_cli`].
///
/// # Errors
///
/// Returns a [`CliError`] for unknown commands, bad flags, or I/O
/// problems.
pub fn run(args: &[String]) -> Result<String, CliError> {
    run_cli(args).map(|outcome| outcome.output)
}

fn cmd_campaign(args: &[String]) -> Result<String, CliError> {
    let workload = parse_workload(args)?;
    let policy = parse_policy(args)?;
    let hours = parse_u64(args, "--hours", 12)?;
    let seed = parse_u64(args, "--seed", 42)?;
    let result = Campaign::new(
        CampaignConfig::paper(seed, workload, policy)
            .duration(SimDuration::from_secs(hours * 3600)),
    )
    .run();
    let series = result.piconet_series();
    let mttf = series.ttf_stats().mean().unwrap_or(f64::INFINITY);
    let mttr = series.ttr_stats().mean().unwrap_or(0.0);
    let mut out = String::new();
    out.push_str(&format!(
        "campaign: {workload:?} WL, {policy:?} policy, seed {seed}, {hours} h\n"
    ));
    out.push_str(&format!("cycles:      {}\n", result.cycles_run));
    out.push_str(&format!("failures:    {}\n", result.failure_count));
    out.push_str(&format!("masked:      {}\n", result.masked_count));
    out.push_str(&format!(
        "log items:   {}\n",
        result.repository.total_count()
    ));
    out.push_str(&format!("piconet MTTF: {mttf:.1} s, MTTR: {mttr:.1} s\n"));
    out.push_str(&format!("availability: {:.4}\n", mttf / (mttf + mttr)));
    if let Some(path) = flag_value(args, "--export") {
        let trace = export_trace(&result.repository);
        std::fs::write(path, &trace)?;
        out.push_str(&format!(
            "exported {} records to {path}\n",
            trace.lines().count()
        ));
    }
    Ok(out)
}

/// One row of the analyze report: a failure class with its dominant
/// related system error.
#[derive(Debug, Clone, Serialize)]
struct AnalyzeRow {
    failure: String,
    n: u64,
    dominant: String,
    percent: f64,
}

/// Quarantine counts as they appear in the `--json` report.
#[derive(Debug, Clone, Serialize)]
struct QuarantineCounts {
    total_lines: usize,
    imported: usize,
    quarantined: usize,
}

impl QuarantineCounts {
    fn from_report(report: &QuarantineReport) -> Self {
        QuarantineCounts {
            total_lines: report.total_lines,
            imported: report.imported,
            quarantined: report.quarantined.len(),
        }
    }
}

/// The `analyze --json` report.
#[derive(Debug, Clone, Serialize)]
struct AnalyzeReport {
    records: usize,
    related_failures: u64,
    window_s: u64,
    quarantine: Option<QuarantineCounts>,
    rows: Vec<AnalyzeRow>,
}

fn matrix_rows(m: &RelationshipMatrix) -> Vec<AnalyzeRow> {
    let mut rows = Vec::new();
    for f in UserFailure::ALL {
        if m.total(f) == 0 {
            continue;
        }
        let mut best = ("none".to_string(), m.percent_none(f));
        for c in SystemComponent::ALL {
            for site in [CauseSite::Local, CauseSite::Nap] {
                let p = m.percent(f, c, site);
                if p > best.1 {
                    best = (format!("{c} ({site})"), p);
                }
            }
        }
        rows.push(AnalyzeRow {
            failure: f.label().to_string(),
            n: m.total(f),
            dominant: best.0,
            percent: best.1,
        });
    }
    rows
}

fn render_matrix_rows(m: &RelationshipMatrix, out: &mut String) {
    for row in matrix_rows(m) {
        out.push_str(&format!(
            "{:<24} n={:<5} dominant: {} {:.1}%\n",
            row.failure, row.n, row.dominant, row.percent
        ));
    }
}

fn cmd_analyze(args: &[String]) -> Result<CliOutcome, CliError> {
    let path = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or_else(|| CliError::Usage("analyze needs a trace path".into()))?;
    let window = parse_u64(&args[1..], "--window", 330)?;
    let text = std::fs::read_to_string(path)?;
    let mut quarantine = None;
    let records = if has_flag(args, "--lenient-import") {
        let (records, report) = import_trace_lenient(&text);
        quarantine = Some(report);
        records
    } else {
        import_trace(&text).map_err(CliError::Trace)?
    };
    let repo = repository_from_records(&records);
    let nap_records = repo.system_records_of(NAP_NODE_ID);
    let streams: Vec<_> = repo
        .reporting_nodes()
        .into_iter()
        .map(|n| (n, repo.records_of(n)))
        .collect();
    let m = RelationshipMatrix::from_node_logs(
        &streams,
        &nap_records,
        NAP_NODE_ID,
        SimDuration::from_secs(window),
    );
    let unhealthy = quarantine.as_ref().is_some_and(|r| !r.is_clean());
    let status = if unhealthy { EXIT_QUARANTINE } else { 0 };
    if has_flag(args, "--json") {
        let report = AnalyzeReport {
            records: records.len(),
            related_failures: m.grand_total(),
            window_s: window,
            quarantine: quarantine.as_ref().map(QuarantineCounts::from_report),
            rows: matrix_rows(&m),
        };
        let json = serde_json::to_string(&report).expect("report serializes");
        return Ok(CliOutcome {
            output: format!("{json}\n"),
            status,
        });
    }
    let mut out = format!(
        "{} records, {} related failures (window {window} s)\n",
        records.len(),
        m.grand_total()
    );
    if let Some(report) = quarantine.as_ref().filter(|r| !r.is_clean()) {
        out.push_str(&format!("quarantine: {report}\n"));
        for (line, reason) in &report.quarantined {
            out.push_str(&format!("  line {line}: {reason}\n"));
        }
    }
    render_matrix_rows(&m, &mut out);
    Ok(CliOutcome {
        output: out,
        status,
    })
}

/// Renders a live Table-2/Table-4 view of a streaming snapshot.
fn render_stream_snapshot(snap: &StreamSnapshot, label: &str) -> String {
    let mut out = format!(
        "stream snapshot [{label}]: {} records emitted, watermark {}\n",
        snap.records_emitted,
        snap.watermark_us
            .map_or_else(|| "-".to_string(), |us| format!("{:.1} s", us as f64 / 1e6)),
    );
    out.push_str(&format!(
        "  table4: episodes {}  MTTF {:.1} s  MTTR {:.1} s  availability {:.4}\n",
        snap.episodes, snap.mttf_s, snap.mttr_s, snap.availability
    ));
    out.push_str(&format!(
        "  transport: late quarantined {}, duplicates dropped {}, resident {} (peak {})\n",
        snap.late_quarantined,
        snap.duplicates_dropped,
        snap.resident_records,
        snap.peak_resident_records
    ));
    if !snap.loss_by_packet_type.is_empty() {
        out.push_str("  packet loss:");
        for (packet_type, n) in &snap.loss_by_packet_type {
            out.push_str(&format!(" {packet_type}={n}"));
        }
        out.push('\n');
    }
    let matrix = snap.matrix();
    if matrix.grand_total() > 0 {
        out.push_str("  table2:\n");
        let mut rows = String::new();
        render_matrix_rows(&matrix, &mut rows);
        for line in rows.lines() {
            out.push_str(&format!("    {line}\n"));
        }
    }
    out
}

#[allow(clippy::too_many_lines)]
fn cmd_stream(args: &[String]) -> Result<CliOutcome, CliError> {
    let path = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or_else(|| CliError::Usage("stream needs a trace path".into()))?;
    let flags = &args[1..];
    let window = parse_u64(flags, "--window", 330)?;
    let lag = parse_u64(flags, "--lag", 2 * window)?;
    let shards = parse_u64(flags, "--shards", 4)?.max(1) as usize;
    let snapshot_every = parse_u64(flags, "--snapshot-every", 0)?;
    let idle_timeout_ms = parse_u64(flags, "--idle-timeout-ms", 0)?;
    let follow = has_flag(args, "--follow");
    let poll_ms = parse_u64(flags, "--poll-ms", 200)?;
    let idle_exit = parse_u64(flags, "--idle-exit", 10)?.max(1);
    let json = has_flag(args, "--json");
    let checkpoint_path = flag_value(flags, "--checkpoint");

    let mut engine = match flag_value(flags, "--resume") {
        Some(cp_path) => {
            let text = std::fs::read_to_string(cp_path)?;
            let cp = Checkpoint::from_json(&text)
                .map_err(|e| CliError::Checkpoint(format!("{cp_path}: {e}")))?;
            StreamEngine::resume(cp)
        }
        None => StreamEngine::start(StreamConfig {
            shards,
            channel_capacity: 1024,
            window: SimDuration::from_secs(window),
            watermark_lag: SimDuration::from_secs(lag),
            idle_timeout_ms: (idle_timeout_ms > 0).then_some(idle_timeout_ms),
            nap_node: NAP_NODE_ID,
            keep_tuples: false,
        }),
    };
    let skip = engine.ingested();

    let mut out = String::new();
    let mut parse_errors = 0u64;
    let mut seen = 0u64;
    let mut framer = LineFramer::new();
    let mut file = std::fs::File::open(path)?;
    let mut pos = 0u64;
    let mut idle_polls = 0u64;
    let write_checkpoint = |engine: &mut StreamEngine| -> Result<(), CliError> {
        if let Some(cp_path) = checkpoint_path {
            std::fs::write(cp_path, engine.checkpoint().to_json())?;
        }
        Ok(())
    };
    let mut process =
        |engine: &mut StreamEngine, out: &mut String, line: &str| -> Result<(), CliError> {
            if line.trim().is_empty() {
                return Ok(());
            }
            let Ok(rec) = serde_json::from_str::<LogRecord>(line) else {
                parse_errors += 1;
                return Ok(());
            };
            seen += 1;
            if seen <= skip {
                return Ok(()); // already covered by the resumed checkpoint
            }
            if engine.ingest(rec).is_err() {
                return Err(CliError::Usage("streaming engine shut down".into()));
            }
            if snapshot_every > 0 && engine.ingested().is_multiple_of(snapshot_every) {
                if !json {
                    out.push_str(&render_stream_snapshot(
                        &engine.snapshot(),
                        &format!("{} ingested", engine.ingested()),
                    ));
                }
                if let Some(cp_path) = checkpoint_path {
                    std::fs::write(cp_path, engine.checkpoint().to_json())?;
                }
            }
            Ok(())
        };
    loop {
        file.seek(SeekFrom::Start(pos))?;
        let mut chunk = String::new();
        file.read_to_string(&mut chunk)?;
        pos += chunk.len() as u64;
        if chunk.is_empty() {
            if !follow {
                break;
            }
            idle_polls += 1;
            if idle_polls >= idle_exit {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(poll_ms));
            continue;
        }
        idle_polls = 0;
        for line in framer.push(&chunk) {
            process(&mut engine, &mut out, &line)?;
        }
    }
    if let Some(last) = framer.finish() {
        process(&mut engine, &mut out, &last)?;
    }
    write_checkpoint(&mut engine)?;
    let outcome = engine.finish();
    let snap = &outcome.snapshot;
    if json {
        out.push_str(&serde_json::to_string(snap).expect("snapshot serializes"));
        out.push('\n');
    } else {
        out.push_str(&render_stream_snapshot(snap, "end of stream"));
        if parse_errors > 0 || !outcome.quarantine.is_clean() {
            out.push_str(&format!(
                "trace health: {parse_errors} undecodable lines, {} late records quarantined\n",
                snap.late_quarantined
            ));
        }
    }
    let unhealthy = parse_errors > 0 || snap.late_quarantined > 0;
    Ok(CliOutcome {
        output: out,
        status: if unhealthy { EXIT_QUARANTINE } else { 0 },
    })
}

fn cmd_table4(args: &[String]) -> Result<String, CliError> {
    let scale = scale_from(args)?;
    let max_retries = flag_value(args, "--max-retries")
        .map(|v| {
            v.parse::<u32>().map_err(|_| {
                CliError::Usage(format!("--max-retries expects an integer, got `{v}`"))
            })
        })
        .transpose()?;
    let seed_timeout = flag_value(args, "--seed-timeout")
        .map(|v| {
            v.parse::<u64>()
                .map(std::time::Duration::from_secs)
                .map_err(|_| {
                    CliError::Usage(format!("--seed-timeout expects whole seconds, got `{v}`"))
                })
        })
        .transpose()?;
    if max_retries.is_none() && seed_timeout.is_none() {
        let report = experiment::table4(&scale);
        let mut out = format!(
            "{:<26} {:>9} {:>9} {:>7} {:>7} {:>7}\n",
            "scenario", "MTTF", "MTTR", "avail", "cov%", "mask%"
        );
        for (label, m) in &report.scenarios {
            out.push_str(&format!(
                "{label:<26} {:>9.1} {:>9.1} {:>7.3} {:>7.1} {:>7.1}\n",
                m.mttf_s, m.mttr_s, m.availability, m.coverage_percent, m.masking_percent
            ));
        }
        return Ok(out);
    }
    let supervisor = SupervisorConfig {
        max_retries: max_retries.unwrap_or(0),
        seed_timeout,
        campaign_seed: scale.seeds.first().copied().unwrap_or(0),
        ..SupervisorConfig::default()
    };
    let supervised = experiment::table4_supervised(&scale, &supervisor);
    let mut out = format!(
        "supervised run: {} attempts, min seed coverage {:.2}\n",
        supervised.attempts,
        supervised.min_coverage()
    );
    out.push_str(&format!(
        "{:<26} {:>16} {:>9} {:>7} {:>9}\n",
        "scenario", "MTTF (95% CI)", "MTTR", "avail", "coverage"
    ));
    for s in &supervised.scenarios {
        out.push_str(&format!(
            "{:<26} {:>16} {:>9.1} {:>7.3} {:>9.2}\n",
            s.label,
            s.mttf_ci.to_string(),
            s.measurement.mttr_s,
            s.measurement.availability,
            s.coverage
        ));
    }
    Ok(out)
}

fn cmd_markov(args: &[String]) -> Result<String, CliError> {
    let scale = scale_from(args)?;
    let (model, measured) = experiment::markov_validation(&scale);
    let mut out = format!(
        "analytic availability {:.4} vs measured {measured:.4}\n",
        model.availability()
    );
    for (f, share) in model.downtime_ranking() {
        out.push_str(&format!("{:<24} downtime share {share:.5}\n", f.label()));
    }
    Ok(out)
}

/// Renders the full Bluetooth PAN failure model (paper Table 1 plus the
/// reconstructed Table 2/3 profiles) as Markdown — the reference a
/// downstream dependability engineer would pin to the wall.
pub fn render_failure_model() -> String {
    use btpan_faults::profiles::{cause_profile, SiraProfiles, FAILURE_MIX};
    use btpan_faults::{FailureGroup, Sira, SystemFault};
    let mut out = String::from("# Bluetooth PAN failure model\n");
    for group in [
        FailureGroup::Search,
        FailureGroup::Connect,
        FailureGroup::DataTransfer,
    ] {
        out.push_str(&format!("\n## {group:?} phase\n\n"));
        for f in UserFailure::ALL.iter().filter(|f| f.group() == group) {
            out.push_str(&format!(
                "### {} ({:.1} % of failures)\n\n",
                f.label(),
                FAILURE_MIX[f.index()]
            ));
            let profile = cause_profile(*f);
            if profile.causes().is_empty() {
                out.push_str("- no related system-level evidence (paper: none found)\n");
            } else {
                for c in profile.causes() {
                    out.push_str(&format!(
                        "- {:.1} % related to {} errors ({})\n",
                        c.percent, c.component, c.site
                    ));
                }
                if profile.none_percent() > 0.0 {
                    out.push_str(&format!(
                        "- {:.1} % with no system evidence\n",
                        profile.none_percent()
                    ));
                }
            }
            match SiraProfiles::row(*f) {
                None => out.push_str("- recovery: none defined (unrecoverable)\n"),
                Some(row) => {
                    let (best_i, best) = row
                        .iter()
                        .enumerate()
                        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                        .expect("7 actions");
                    out.push_str(&format!(
                        "- most effective recovery: {} ({best:.1} % of cases); coverage by SIRAs 1-3: {:.1} %\n",
                        Sira::ALL[best_i].label(),
                        SiraProfiles::coverage_1_to_3(*f)
                    ));
                }
            }
        }
    }
    out.push_str("\n## System-level error types\n\n");
    for s in SystemFault::ALL {
        out.push_str(&format!("- `{}` — {}\n", s.component(), s.log_message()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn help_and_empty() {
        assert!(run(&args(&["help"])).unwrap().contains("USAGE"));
        assert!(run(&[]).unwrap().contains("USAGE"));
    }

    #[test]
    fn unknown_command_rejected() {
        let err = run(&args(&["frobnicate"])).unwrap_err();
        assert!(err.to_string().contains("unknown command"));
    }

    #[test]
    fn campaign_runs_and_reports() {
        let out = run(&args(&["campaign", "--hours", "2", "--seed", "3"])).unwrap();
        assert!(out.contains("piconet MTTF"));
        assert!(out.contains("cycles:"));
    }

    #[test]
    fn bad_flag_values_error() {
        let err = run(&args(&["campaign", "--hours", "soon"])).unwrap_err();
        assert!(err.to_string().contains("--hours"));
        let err = run(&args(&["campaign", "--policy", "prayer"])).unwrap_err();
        assert!(err.to_string().contains("unknown policy"));
        let err = run(&args(&["campaign", "--workload", "cats"])).unwrap_err();
        assert!(err.to_string().contains("unknown workload"));
    }

    #[test]
    fn export_then_analyze_round_trip() {
        let path = std::env::temp_dir().join("btpan_cli_trace_test.jsonl");
        let path_s = path.to_str().expect("utf8 temp path");
        let out = run(&args(&[
            "campaign", "--hours", "6", "--seed", "9", "--export", path_s,
        ]))
        .unwrap();
        assert!(out.contains("exported"));
        let out = run(&args(&["analyze", path_s])).unwrap();
        assert!(out.contains("related failures"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn lenient_import_quarantines_corrupt_trace() {
        let path = std::env::temp_dir().join("btpan_cli_lenient_test.jsonl");
        let path_s = path.to_str().expect("utf8 temp path");
        run(&args(&[
            "campaign", "--hours", "6", "--seed", "9", "--export", path_s,
        ]))
        .unwrap();
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.insert_str(0, "!!not a record!!\n");
        std::fs::write(&path, &text).unwrap();
        // Strict import aborts...
        let err = run(&args(&["analyze", path_s])).unwrap_err();
        assert!(matches!(err, CliError::Trace(_)));
        // ...lenient import quarantines and proceeds.
        let out = run(&args(&["analyze", path_s, "--lenient-import"])).unwrap();
        assert!(out.contains("quarantine:"), "{out}");
        assert!(out.contains("line 1:"), "{out}");
        assert!(out.contains("related failures"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn lenient_import_json_report_and_exit_code() {
        let path = std::env::temp_dir().join("btpan_cli_lenient_json_test.jsonl");
        let path_s = path.to_str().expect("utf8 temp path");
        run(&args(&[
            "campaign", "--hours", "6", "--seed", "9", "--export", path_s,
        ]))
        .unwrap();
        // Healthy trace: zero quarantine, exit 0.
        let outcome = run_cli(&args(&["analyze", path_s, "--lenient-import", "--json"])).unwrap();
        assert_eq!(outcome.status, 0);
        assert!(
            outcome.output.contains("\"quarantined\":0"),
            "{}",
            outcome.output
        );
        // Corrupt one line: quarantine counts in the JSON report and the
        // distinct trace-health exit code.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.insert_str(0, "!!not a record!!\n");
        std::fs::write(&path, &text).unwrap();
        let outcome = run_cli(&args(&["analyze", path_s, "--lenient-import", "--json"])).unwrap();
        assert_eq!(outcome.status, EXIT_QUARANTINE);
        assert!(
            outcome.output.contains("\"quarantined\":1"),
            "{}",
            outcome.output
        );
        assert!(
            outcome.output.contains("\"imported\":"),
            "{}",
            outcome.output
        );
        // Prose mode gates the same way.
        let outcome = run_cli(&args(&["analyze", path_s, "--lenient-import"])).unwrap();
        assert_eq!(outcome.status, EXIT_QUARANTINE);
        // Strict import on a clean trace still exits 0.
        std::fs::write(&path, text.lines().skip(1).collect::<Vec<_>>().join("\n")).unwrap();
        let outcome = run_cli(&args(&["analyze", path_s])).unwrap();
        assert_eq!(outcome.status, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stream_matches_analyze_on_exported_trace() {
        let path = std::env::temp_dir().join("btpan_cli_stream_test.jsonl");
        let path_s = path.to_str().expect("utf8 temp path");
        run(&args(&[
            "campaign", "--hours", "6", "--seed", "11", "--export", path_s,
        ]))
        .unwrap();
        let outcome = run_cli(&args(&["stream", path_s])).unwrap();
        assert_eq!(outcome.status, 0, "{}", outcome.output);
        assert!(
            outcome.output.contains("end of stream"),
            "{}",
            outcome.output
        );
        assert!(outcome.output.contains("table4:"), "{}", outcome.output);
        // The streamed Table 2 rows must equal the batch analyze rows.
        let analyze = run(&args(&["analyze", path_s])).unwrap();
        for line in analyze.lines().skip(1) {
            assert!(
                outcome.output.contains(line.trim()),
                "missing batch row `{line}` in streaming output:\n{}",
                outcome.output
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stream_checkpoint_then_resume_skips_covered_prefix() {
        let trace = std::env::temp_dir().join("btpan_cli_stream_cp_trace.jsonl");
        let cp = std::env::temp_dir().join("btpan_cli_stream_cp.json");
        let trace_s = trace.to_str().expect("utf8 temp path");
        let cp_s = cp.to_str().expect("utf8 temp path");
        run(&args(&[
            "campaign", "--hours", "4", "--seed", "5", "--export", trace_s,
        ]))
        .unwrap();
        let first = run_cli(&args(&["stream", trace_s, "--json", "--checkpoint", cp_s])).unwrap();
        assert_eq!(first.status, 0);
        // Resume from the final checkpoint over the same trace: every
        // record is already covered, and the snapshot is unchanged.
        let resumed = run_cli(&args(&["stream", trace_s, "--json", "--resume", cp_s])).unwrap();
        assert_eq!(first.output, resumed.output);
        let err = run_cli(&args(&["stream", trace_s, "--resume", trace_s])).unwrap_err();
        assert!(matches!(err, CliError::Checkpoint(_)));
        std::fs::remove_file(&trace).ok();
        std::fs::remove_file(&cp).ok();
    }

    #[test]
    fn stream_follow_quiesces_and_flags_bad_lines() {
        let path = std::env::temp_dir().join("btpan_cli_stream_follow_test.jsonl");
        let path_s = path.to_str().expect("utf8 temp path");
        run(&args(&[
            "campaign", "--hours", "4", "--seed", "7", "--export", path_s,
        ]))
        .unwrap();
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("%%garbage%%\n");
        std::fs::write(&path, &text).unwrap();
        let outcome = run_cli(&args(&[
            "stream",
            path_s,
            "--follow",
            "--poll-ms",
            "10",
            "--idle-exit",
            "2",
        ]))
        .unwrap();
        assert_eq!(outcome.status, EXIT_QUARANTINE, "{}", outcome.output);
        assert!(
            outcome.output.contains("1 undecodable lines"),
            "{}",
            outcome.output
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stream_requires_path_and_valid_flags() {
        let err = run_cli(&args(&["stream"])).unwrap_err();
        assert!(err.to_string().contains("needs a trace path"));
        let err = run_cli(&args(&["stream", "/nonexistent/trace.jsonl"])).unwrap_err();
        assert!(matches!(err, CliError::Io(_)));
    }

    #[test]
    fn table4_supervised_flags() {
        let out = run(&args(&[
            "table4",
            "--seeds",
            "1",
            "--hours",
            "2",
            "--max-retries",
            "1",
            "--seed-timeout",
            "600",
        ]))
        .unwrap();
        assert!(out.contains("supervised run"), "{out}");
        assert!(out.contains("min seed coverage 1.00"), "{out}");
        assert!(out.contains("95% CI"), "{out}");
        let err = run(&args(&["table4", "--max-retries", "many"])).unwrap_err();
        assert!(err.to_string().contains("--max-retries"));
        let err = run(&args(&["table4", "--seed-timeout", "1.5"])).unwrap_err();
        assert!(err.to_string().contains("--seed-timeout"));
    }

    #[test]
    fn analyze_missing_file_is_io_error() {
        let err = run(&args(&["analyze", "/nonexistent/trace.jsonl"])).unwrap_err();
        assert!(matches!(err, CliError::Io(_)));
    }

    #[test]
    fn model_renders_all_failure_types() {
        let md = run(&args(&["model"])).unwrap();
        for f in UserFailure::ALL {
            assert!(md.contains(f.label()), "missing {f}");
        }
        assert!(md.contains("most effective recovery"));
        assert!(md.contains("unrecoverable"));
        assert!(md.contains("HOTPLUG"));
    }

    #[test]
    fn analyze_requires_path() {
        let err = run(&args(&["analyze"])).unwrap_err();
        assert!(err.to_string().contains("needs a trace path"));
    }
}
