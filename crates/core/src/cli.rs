//! Command-line interface logic (the `btpan` binary).
//!
//! Subcommands:
//!
//! * `campaign` — run one campaign and print its headline numbers;
//!   `--export PATH` writes the collected logs as a JSONL failure trace;
//! * `analyze PATH` — import a trace and run merge-and-coalesce on it,
//!   printing the error–failure relationship summary; `--lenient-import`
//!   quarantines undecodable lines instead of aborting;
//! * `table4` — the four-policy dependability comparison;
//!   `--max-retries` / `--seed-timeout` run it under the fault-tolerant
//!   supervisor and report coverage-widened confidence intervals;
//! * `stream` — tail a JSONL trace through the `btpan-stream` engine
//!   and print live Table-2/Table-4 snapshots, with optional
//!   checkpoint/resume;
//! * `metrics` — render the observability registry ([`btpan_obs`]) as a
//!   JSON envelope or Prometheus text, live or from a `--metrics-out`
//!   file;
//! * `markov` — fit and print the analytic availability model.
//!
//! All parsing and execution lives here (returning the output as a
//! string) so it is unit-testable; the binary is a thin wrapper.
//!
//! Every `--json` output is wrapped in one envelope (schema documented
//! in the README): `{"schema_version":…,"command":…,"data":…,
//! "health":{"status":…,"exit_code":…}}`, so scripts can dispatch on
//! `command` and gate on `health` without per-command parsers.
//!
//! Exit codes: `0` success, `2` usage/I-O/parse error,
//! [`EXIT_QUARANTINE`] (`3`) when the run succeeded but the trace was
//! unhealthy (lenient-import or streaming quarantine non-empty) — so CI
//! scripts can gate on trace health.

use crate::campaign::{Campaign, CampaignConfig};
use crate::experiment::{self, Scale};
use crate::machine::NAP_NODE_ID;
use crate::supervisor::SupervisorConfig;
use crate::topology::Topology;
use btpan_collect::entry::LogRecord;
use btpan_collect::relate::RelationshipMatrix;
use btpan_collect::trace::{
    export_trace, import_trace, import_trace_lenient, repository_from_records, QuarantineReport,
};
use btpan_faults::{CauseSite, SystemComponent, UserFailure};
use btpan_obs::{BucketSnapshot, EventRecord, HistogramSnapshot, Registry, Snapshot};
use btpan_recovery::RecoveryPolicy;
use btpan_sim::time::SimDuration;
use btpan_stream::{Checkpoint, LineFramer, StreamConfig, StreamEngine, StreamSnapshot};
use btpan_workload::WorkloadKind;
use serde::{Number, Serialize, Value};
use std::io::{Read as _, Seek as _, SeekFrom};

/// Exit code for "the command succeeded, but records were quarantined"
/// (`analyze --lenient-import` or `stream` on an unhealthy trace).
pub const EXIT_QUARANTINE: i32 = 3;

/// Version of the `--json` output envelope; bump on breaking changes to
/// the envelope itself (each command's `data` payload evolves with its
/// own compatibility rules).
pub const JSON_SCHEMA_VERSION: u64 = 1;

/// Wraps one command's JSON payload in the uniform envelope. `status`
/// is the process exit status the run will report; it doubles as the
/// machine-readable health verdict (`0` → `"ok"`, [`EXIT_QUARANTINE`] →
/// `"quarantine"`).
fn json_envelope(command: &str, data: Value, status: i32) -> String {
    let health_status = if status == EXIT_QUARANTINE {
        "quarantine"
    } else {
        "ok"
    };
    let envelope = Value::Object(vec![
        (
            "schema_version".into(),
            Value::Number(Number::U64(JSON_SCHEMA_VERSION)),
        ),
        ("command".into(), Value::String(command.into())),
        ("data".into(), data),
        (
            "health".into(),
            Value::Object(vec![
                ("status".into(), Value::String(health_status.into())),
                (
                    "exit_code".into(),
                    Value::Number(Number::I64(status.into())),
                ),
            ]),
        ),
    ]);
    format!("{envelope}\n")
}

/// CLI errors: an alias of the workspace-level [`crate::error::Error`].
/// Historical `CliError::Usage(..)` constructors and patterns keep
/// working; the binary derives its exit status from
/// [`Error::exit_code`](crate::error::Error::exit_code).
pub type CliError = crate::error::Error;

/// The usage text.
pub const USAGE: &str = "btpan — Bluetooth PAN failure-data toolbench

USAGE:
  btpan campaign [--workload random|realistic] [--policy reboot|app-reboot|siras|siras-masking]
                 [--topology paper-a|paper-b|paper-both|scatternet|FILE.json]
                 [--hours H] [--seed S] [--export PATH] [--metrics-out PATH] [--json]
  btpan analyze PATH [--window SECS] [--lenient-import] [--json]
  btpan stream PATH [--window SECS] [--lag SECS] [--shards N] [--snapshot-every N]
               [--follow] [--poll-ms MS] [--idle-exit POLLS] [--idle-timeout-ms MS]
               [--checkpoint PATH] [--resume PATH] [--json]
               [--metrics-out PATH] [--metrics-every SECS]
  btpan table4 [--seeds N] [--hours H] [--max-retries N] [--seed-timeout SECS] [--json]
  btpan metrics [--from PATH] [--prometheus | --json]
  btpan markov [--seeds N] [--hours H]
  btpan model
  btpan help";

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

fn parse_u64(args: &[String], flag: &str, default: u64) -> Result<u64, CliError> {
    match flag_value(args, flag) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| CliError::Usage(format!("{flag} expects an integer, got `{v}`"))),
    }
}

fn parse_workload(args: &[String]) -> Result<WorkloadKind, CliError> {
    match flag_value(args, "--workload") {
        None | Some("random") => Ok(WorkloadKind::Random),
        Some("realistic") => Ok(WorkloadKind::Realistic),
        Some(other) => Err(CliError::Usage(format!("unknown workload `{other}`"))),
    }
}

fn parse_policy(args: &[String]) -> Result<RecoveryPolicy, CliError> {
    match flag_value(args, "--policy") {
        None | Some("siras") => Ok(RecoveryPolicy::Siras),
        Some("reboot") => Ok(RecoveryPolicy::RebootOnly),
        Some("app-reboot") => Ok(RecoveryPolicy::AppRestartThenReboot),
        Some("siras-masking") => Ok(RecoveryPolicy::SirasAndMasking),
        Some(other) => Err(CliError::Usage(format!("unknown policy `{other}`"))),
    }
}

fn scale_from(args: &[String]) -> Result<Scale, CliError> {
    let seeds = parse_u64(args, "--seeds", 2)?;
    let hours = parse_u64(args, "--hours", 24)?;
    Ok(Scale {
        seeds: (1..=seeds).map(|k| k * 7).collect(),
        duration: SimDuration::from_secs(hours * 3600),
    })
}

/// A CLI result: the text to print plus the process exit status.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliOutcome {
    /// Text for stdout.
    pub output: String,
    /// Process exit status (`0` ok, [`EXIT_QUARANTINE`] on an unhealthy
    /// trace).
    pub status: i32,
}

impl CliOutcome {
    fn ok(output: String) -> Self {
        CliOutcome { output, status: 0 }
    }
}

/// Runs the CLI and returns its output text and exit status.
///
/// # Errors
///
/// Returns a [`CliError`] for unknown commands, bad flags, or I/O
/// problems.
pub fn run_cli(args: &[String]) -> Result<CliOutcome, CliError> {
    match args.first().map(String::as_str) {
        Some("campaign") => cmd_campaign(&args[1..]).map(CliOutcome::ok),
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("stream") => cmd_stream(&args[1..]),
        Some("table4") => cmd_table4(&args[1..]).map(CliOutcome::ok),
        Some("metrics") => cmd_metrics(&args[1..]),
        Some("markov") => cmd_markov(&args[1..]).map(CliOutcome::ok),
        Some("model") => Ok(CliOutcome::ok(render_failure_model())),
        Some("help") | None => Ok(CliOutcome::ok(USAGE.to_string())),
        Some(other) => Err(CliError::Usage(format!("unknown command `{other}`"))),
    }
}

/// Runs the CLI and returns only its output text (exit status
/// discarded); see [`run_cli`].
///
/// # Errors
///
/// Returns a [`CliError`] for unknown commands, bad flags, or I/O
/// problems.
pub fn run(args: &[String]) -> Result<String, CliError> {
    run_cli(args).map(|outcome| outcome.output)
}

/// Turns the global registry on (resetting it so the snapshot is scoped
/// to this run) and returns the prior enabled state for [`restore`].
///
/// [`restore`]: restore_metrics
fn activate_metrics() -> bool {
    let prior = Registry::global().set_enabled(true);
    Registry::global().reset();
    prior
}

fn restore_metrics(prior: bool) {
    Registry::global().set_enabled(prior);
}

/// Resolves `--topology`: a preset name or a JSON file path.
fn parse_topology(args: &[String]) -> Result<Option<Topology>, CliError> {
    let Some(spec) = flag_value(args, "--topology") else {
        return Ok(None);
    };
    if let Some(preset) = Topology::preset(spec) {
        return Ok(Some(preset));
    }
    let text = std::fs::read_to_string(spec)?;
    Topology::from_json(&text)
        .map(Some)
        .map_err(|e| CliError::Usage(format!("--topology {spec}: {e}")))
}

fn cmd_campaign(args: &[String]) -> Result<String, CliError> {
    let workload = parse_workload(args)?;
    let policy = parse_policy(args)?;
    let hours = parse_u64(args, "--hours", 12)?;
    let seed = parse_u64(args, "--seed", 42)?;
    let metrics_out = flag_value(args, "--metrics-out");
    let prior_metrics = metrics_out.is_some().then(activate_metrics);
    // --topology overrides --workload (the topology names each
    // piconet's workload itself).
    let config = match parse_topology(args)? {
        Some(topo) => CampaignConfig::with_topology(seed, topo, policy),
        None => CampaignConfig::paper(seed, workload, policy),
    }
    .duration(SimDuration::from_secs(hours * 3600));
    let topology = std::sync::Arc::clone(&config.topology);
    let result = Campaign::new(config).run();
    let series = result.piconet_series();
    let mttf = series.ttf_stats().mean().unwrap_or(f64::INFINITY);
    let mttr = series.ttr_stats().mean().unwrap_or(0.0);
    if has_flag(args, "--json") {
        let piconets = result
            .piconets
            .iter()
            .map(|p| {
                Value::Object(vec![
                    ("id".into(), Value::Number(Number::U64(p.piconet_id))),
                    ("label".into(), Value::String(p.label.clone())),
                    (
                        "workload".into(),
                        Value::String(format!("{:?}", p.workload)),
                    ),
                    ("master".into(), Value::Number(Number::U64(p.master))),
                    (
                        "panus".into(),
                        Value::Array(
                            p.panus
                                .iter()
                                .map(|&n| Value::Number(Number::U64(n)))
                                .collect(),
                        ),
                    ),
                    (
                        "failures".into(),
                        Value::Number(Number::U64(p.failure_count)),
                    ),
                    ("masked".into(), Value::Number(Number::U64(p.masked_count))),
                    ("cycles".into(), Value::Number(Number::U64(p.cycles_run))),
                ])
            })
            .collect();
        let data = Value::Object(vec![
            ("topology".into(), topology.to_value()),
            ("seed".into(), Value::Number(Number::U64(seed))),
            ("hours".into(), Value::Number(Number::U64(hours))),
            (
                "cycles".into(),
                Value::Number(Number::U64(result.cycles_run)),
            ),
            (
                "failures".into(),
                Value::Number(Number::U64(result.failure_count)),
            ),
            (
                "masked".into(),
                Value::Number(Number::U64(result.masked_count)),
            ),
            ("mttf_s".into(), Value::Number(Number::F64(mttf))),
            ("mttr_s".into(), Value::Number(Number::F64(mttr))),
            (
                "availability".into(),
                Value::Number(Number::F64(mttf / (mttf + mttr))),
            ),
            ("piconets".into(), Value::Array(piconets)),
        ]);
        if let Some(prior) = prior_metrics {
            restore_metrics(prior);
        }
        return Ok(json_envelope("campaign", data, 0));
    }
    let mut out = String::new();
    out.push_str(&format!(
        "campaign: topology {}, {policy:?} policy, seed {seed}, {hours} h\n",
        topology.name
    ));
    out.push_str(&format!("cycles:      {}\n", result.cycles_run));
    out.push_str(&format!("failures:    {}\n", result.failure_count));
    out.push_str(&format!("masked:      {}\n", result.masked_count));
    out.push_str(&format!(
        "log items:   {}\n",
        result.repository.total_count()
    ));
    if result.piconets.len() > 1 {
        for p in &result.piconets {
            out.push_str(&format!(
                "  piconet {} ({}, {:?} WL): {} failures, {} cycles\n",
                p.piconet_id, p.label, p.workload, p.failure_count, p.cycles_run
            ));
        }
    }
    out.push_str(&format!("piconet MTTF: {mttf:.1} s, MTTR: {mttr:.1} s\n"));
    out.push_str(&format!("availability: {:.4}\n", mttf / (mttf + mttr)));
    if let Some(path) = flag_value(args, "--export") {
        let trace = export_trace(&result.repository);
        std::fs::write(path, &trace)?;
        out.push_str(&format!(
            "exported {} records to {path}\n",
            trace.lines().count()
        ));
    }
    if let Some(path) = metrics_out {
        let write_result = std::fs::write(path, Registry::global().snapshot().to_json());
        restore_metrics(prior_metrics.unwrap_or(false));
        write_result?;
        out.push_str(&format!("metrics written to {path}\n"));
    }
    Ok(out)
}

/// One row of the analyze report: a failure class with its dominant
/// related system error.
#[derive(Debug, Clone, Serialize)]
struct AnalyzeRow {
    failure: String,
    n: u64,
    dominant: String,
    percent: f64,
}

/// Quarantine counts as they appear in the `--json` report.
#[derive(Debug, Clone, Serialize)]
struct QuarantineCounts {
    total_lines: usize,
    imported: usize,
    quarantined: usize,
}

impl QuarantineCounts {
    fn from_report(report: &QuarantineReport) -> Self {
        QuarantineCounts {
            total_lines: report.total_lines,
            imported: report.imported,
            quarantined: report.quarantined.len(),
        }
    }
}

/// The `analyze --json` report.
#[derive(Debug, Clone, Serialize)]
struct AnalyzeReport {
    records: usize,
    related_failures: u64,
    window_s: u64,
    quarantine: Option<QuarantineCounts>,
    rows: Vec<AnalyzeRow>,
}

fn matrix_rows(m: &RelationshipMatrix) -> Vec<AnalyzeRow> {
    let mut rows = Vec::new();
    for f in UserFailure::ALL {
        if m.total(f) == 0 {
            continue;
        }
        let mut best = ("none".to_string(), m.percent_none(f));
        for c in SystemComponent::ALL {
            for site in [CauseSite::Local, CauseSite::Nap] {
                let p = m.percent(f, c, site);
                if p > best.1 {
                    best = (format!("{c} ({site})"), p);
                }
            }
        }
        rows.push(AnalyzeRow {
            failure: f.label().to_string(),
            n: m.total(f),
            dominant: best.0,
            percent: best.1,
        });
    }
    rows
}

fn render_matrix_rows(m: &RelationshipMatrix, out: &mut String) {
    for row in matrix_rows(m) {
        out.push_str(&format!(
            "{:<24} n={:<5} dominant: {} {:.1}%\n",
            row.failure, row.n, row.dominant, row.percent
        ));
    }
}

fn cmd_analyze(args: &[String]) -> Result<CliOutcome, CliError> {
    let path = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or_else(|| CliError::Usage("analyze needs a trace path".into()))?;
    let window = parse_u64(&args[1..], "--window", 330)?;
    let text = std::fs::read_to_string(path)?;
    let mut quarantine = None;
    let records = if has_flag(args, "--lenient-import") {
        let (records, report) = import_trace_lenient(&text);
        quarantine = Some(report);
        records
    } else {
        import_trace(&text).map_err(CliError::Trace)?
    };
    let repo = repository_from_records(&records);
    let nap_records = repo.system_records_of(NAP_NODE_ID);
    let streams: Vec<_> = repo
        .reporting_nodes()
        .into_iter()
        .map(|n| (n, repo.records_of(n)))
        .collect();
    let m = RelationshipMatrix::from_node_logs(
        &streams,
        &nap_records,
        NAP_NODE_ID,
        SimDuration::from_secs(window),
    );
    let unhealthy = quarantine.as_ref().is_some_and(|r| !r.is_clean());
    let status = if unhealthy { EXIT_QUARANTINE } else { 0 };
    if has_flag(args, "--json") {
        let report = AnalyzeReport {
            records: records.len(),
            related_failures: m.grand_total(),
            window_s: window,
            quarantine: quarantine.as_ref().map(QuarantineCounts::from_report),
            rows: matrix_rows(&m),
        };
        return Ok(CliOutcome {
            output: json_envelope("analyze", report.to_value(), status),
            status,
        });
    }
    let mut out = format!(
        "{} records, {} related failures (window {window} s)\n",
        records.len(),
        m.grand_total()
    );
    if let Some(report) = quarantine.as_ref().filter(|r| !r.is_clean()) {
        out.push_str(&format!("quarantine: {report}\n"));
        for (line, reason) in &report.quarantined {
            out.push_str(&format!("  line {line}: {reason}\n"));
        }
    }
    render_matrix_rows(&m, &mut out);
    Ok(CliOutcome {
        output: out,
        status,
    })
}

/// Renders a live Table-2/Table-4 view of a streaming snapshot.
fn render_stream_snapshot(snap: &StreamSnapshot, label: &str) -> String {
    let mut out = format!(
        "stream snapshot [{label}]: {} records emitted, watermark {}\n",
        snap.records_emitted,
        snap.watermark_us
            .map_or_else(|| "-".to_string(), |us| format!("{:.1} s", us as f64 / 1e6)),
    );
    out.push_str(&format!(
        "  table4: episodes {}  MTTF {:.1} s  MTTR {:.1} s  availability {:.4}\n",
        snap.episodes, snap.mttf_s, snap.mttr_s, snap.availability
    ));
    out.push_str(&format!(
        "  transport: late quarantined {}, duplicates dropped {}, resident {} (peak {})\n",
        snap.late_quarantined,
        snap.duplicates_dropped,
        snap.resident_records,
        snap.peak_resident_records
    ));
    if !snap.loss_by_packet_type.is_empty() {
        out.push_str("  packet loss:");
        for (packet_type, n) in &snap.loss_by_packet_type {
            out.push_str(&format!(" {packet_type}={n}"));
        }
        out.push('\n');
    }
    let matrix = snap.matrix();
    if matrix.grand_total() > 0 {
        out.push_str("  table2:\n");
        let mut rows = String::new();
        render_matrix_rows(&matrix, &mut rows);
        for line in rows.lines() {
            out.push_str(&format!("    {line}\n"));
        }
    }
    out
}

#[allow(clippy::too_many_lines)]
fn cmd_stream(args: &[String]) -> Result<CliOutcome, CliError> {
    let path = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or_else(|| CliError::Usage("stream needs a trace path".into()))?;
    let flags = &args[1..];
    let window = parse_u64(flags, "--window", 330)?;
    let lag = parse_u64(flags, "--lag", 2 * window)?;
    let shards = parse_u64(flags, "--shards", 4)?.max(1) as usize;
    let snapshot_every = parse_u64(flags, "--snapshot-every", 0)?;
    let idle_timeout_ms = parse_u64(flags, "--idle-timeout-ms", 0)?;
    let follow = has_flag(args, "--follow");
    let poll_ms = parse_u64(flags, "--poll-ms", 200)?;
    let idle_exit = parse_u64(flags, "--idle-exit", 10)?.max(1);
    let json = has_flag(args, "--json");
    let checkpoint_path = flag_value(flags, "--checkpoint");
    let metrics_out = flag_value(flags, "--metrics-out");
    let metrics_every = parse_u64(flags, "--metrics-every", 0)?;
    let prior_metrics = (metrics_out.is_some() || metrics_every > 0).then(activate_metrics);

    let mut engine = match flag_value(flags, "--resume") {
        Some(cp_path) => {
            let text = std::fs::read_to_string(cp_path)?;
            let cp = Checkpoint::from_json(&text)
                .map_err(|e| CliError::Checkpoint(format!("{cp_path}: {e}")))?;
            StreamEngine::resume(cp)
        }
        None => StreamEngine::start(StreamConfig {
            shards,
            channel_capacity: 1024,
            window: SimDuration::from_secs(window),
            watermark_lag: SimDuration::from_secs(lag),
            idle_timeout_ms: (idle_timeout_ms > 0).then_some(idle_timeout_ms),
            nap_node: NAP_NODE_ID,
            keep_tuples: false,
            group_of: None,
        }),
    };
    let skip = engine.ingested();

    let mut out = String::new();
    let mut parse_errors = 0u64;
    let mut seen = 0u64;
    let mut framer = LineFramer::new();
    let mut file = std::fs::File::open(path)?;
    let mut pos = 0u64;
    let mut idle_polls = 0u64;
    let write_checkpoint = |engine: &mut StreamEngine| -> Result<(), CliError> {
        if let Some(cp_path) = checkpoint_path {
            std::fs::write(cp_path, engine.checkpoint().to_json())?;
        }
        Ok(())
    };
    let mut process =
        |engine: &mut StreamEngine, out: &mut String, line: &str| -> Result<(), CliError> {
            if line.trim().is_empty() {
                return Ok(());
            }
            let Ok(rec) = serde_json::from_str::<LogRecord>(line) else {
                parse_errors += 1;
                return Ok(());
            };
            seen += 1;
            if seen <= skip {
                return Ok(()); // already covered by the resumed checkpoint
            }
            if engine.ingest(rec).is_err() {
                return Err(CliError::Usage("streaming engine shut down".into()));
            }
            if snapshot_every > 0 && engine.ingested().is_multiple_of(snapshot_every) {
                if !json {
                    out.push_str(&render_stream_snapshot(
                        &engine.snapshot(),
                        &format!("{} ingested", engine.ingested()),
                    ));
                }
                if let Some(cp_path) = checkpoint_path {
                    std::fs::write(cp_path, engine.checkpoint().to_json())?;
                }
            }
            Ok(())
        };
    let mut last_metrics = std::time::Instant::now();
    loop {
        if metrics_every > 0 && last_metrics.elapsed().as_secs() >= metrics_every {
            out.push_str(&Registry::global().snapshot().to_json());
            out.push('\n');
            last_metrics = std::time::Instant::now();
        }
        file.seek(SeekFrom::Start(pos))?;
        let mut chunk = String::new();
        file.read_to_string(&mut chunk)?;
        pos += chunk.len() as u64;
        if chunk.is_empty() {
            if !follow {
                break;
            }
            idle_polls += 1;
            if idle_polls >= idle_exit {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(poll_ms));
            continue;
        }
        idle_polls = 0;
        // Borrow completed lines straight out of the chunk; only a line
        // split across reads touches the framer's internal buffer.
        let mut line_err: Result<(), CliError> = Ok(());
        framer.push_lines(&chunk, |line| {
            if line_err.is_ok() {
                line_err = process(&mut engine, &mut out, line);
            }
        });
        line_err?;
    }
    if let Some(last) = framer.finish() {
        process(&mut engine, &mut out, &last)?;
    }
    write_checkpoint(&mut engine)?;
    let outcome = engine.finish();
    let snap = &outcome.snapshot;
    if let Some(mp) = metrics_out {
        // Snapshot after finish() so worker-side flushes are included.
        std::fs::write(mp, Registry::global().snapshot().to_json())?;
    }
    if let Some(prior) = prior_metrics {
        restore_metrics(prior);
    }
    let unhealthy = parse_errors > 0 || snap.late_quarantined > 0;
    let status = if unhealthy { EXIT_QUARANTINE } else { 0 };
    if json {
        out.push_str(&json_envelope("stream", snap.to_value(), status));
    } else {
        out.push_str(&render_stream_snapshot(snap, "end of stream"));
        if parse_errors > 0 || !outcome.quarantine.is_clean() {
            out.push_str(&format!(
                "trace health: {parse_errors} undecodable lines, {} late records quarantined\n",
                snap.late_quarantined
            ));
        }
    }
    Ok(CliOutcome {
        output: out,
        status,
    })
}

fn cmd_table4(args: &[String]) -> Result<String, CliError> {
    let scale = scale_from(args)?;
    let max_retries = flag_value(args, "--max-retries")
        .map(|v| {
            v.parse::<u32>().map_err(|_| {
                CliError::Usage(format!("--max-retries expects an integer, got `{v}`"))
            })
        })
        .transpose()?;
    let seed_timeout = flag_value(args, "--seed-timeout")
        .map(|v| {
            v.parse::<u64>()
                .map(std::time::Duration::from_secs)
                .map_err(|_| {
                    CliError::Usage(format!("--seed-timeout expects whole seconds, got `{v}`"))
                })
        })
        .transpose()?;
    let json = has_flag(args, "--json");
    if max_retries.is_none() && seed_timeout.is_none() {
        let report = experiment::table4(&scale);
        if json {
            let scenarios = report
                .scenarios
                .iter()
                .map(|(label, m)| {
                    Value::Object(vec![
                        ("label".into(), Value::String(label.clone())),
                        ("mttf_s".into(), Value::Number(Number::F64(m.mttf_s))),
                        ("mttr_s".into(), Value::Number(Number::F64(m.mttr_s))),
                        (
                            "availability".into(),
                            Value::Number(Number::F64(m.availability)),
                        ),
                        (
                            "coverage_percent".into(),
                            Value::Number(Number::F64(m.coverage_percent)),
                        ),
                        (
                            "masking_percent".into(),
                            Value::Number(Number::F64(m.masking_percent)),
                        ),
                    ])
                })
                .collect();
            let data = Value::Object(vec![
                ("mode".into(), Value::String("plain".into())),
                ("scenarios".into(), Value::Array(scenarios)),
            ]);
            return Ok(json_envelope("table4", data, 0));
        }
        let mut out = format!(
            "{:<26} {:>9} {:>9} {:>7} {:>7} {:>7}\n",
            "scenario", "MTTF", "MTTR", "avail", "cov%", "mask%"
        );
        for (label, m) in &report.scenarios {
            out.push_str(&format!(
                "{label:<26} {:>9.1} {:>9.1} {:>7.3} {:>7.1} {:>7.1}\n",
                m.mttf_s, m.mttr_s, m.availability, m.coverage_percent, m.masking_percent
            ));
        }
        return Ok(out);
    }
    let supervisor = SupervisorConfig {
        max_retries: max_retries.unwrap_or(0),
        seed_timeout,
        campaign_seed: scale.seeds.first().copied().unwrap_or(0),
        ..SupervisorConfig::default()
    };
    let supervised = experiment::table4_supervised(&scale, &supervisor);
    if json {
        let scenarios = supervised
            .scenarios
            .iter()
            .map(|s| {
                Value::Object(vec![
                    ("label".into(), Value::String(s.label.clone())),
                    (
                        "mttf_s".into(),
                        Value::Number(Number::F64(s.measurement.mttf_s)),
                    ),
                    (
                        "mttr_s".into(),
                        Value::Number(Number::F64(s.measurement.mttr_s)),
                    ),
                    (
                        "availability".into(),
                        Value::Number(Number::F64(s.measurement.availability)),
                    ),
                    ("coverage".into(), Value::Number(Number::F64(s.coverage))),
                    ("mttf_ci".into(), Value::String(s.mttf_ci.to_string())),
                ])
            })
            .collect();
        let data = Value::Object(vec![
            ("mode".into(), Value::String("supervised".into())),
            (
                "attempts".into(),
                Value::Number(Number::U64(supervised.attempts)),
            ),
            (
                "min_coverage".into(),
                Value::Number(Number::F64(supervised.min_coverage())),
            ),
            ("scenarios".into(), Value::Array(scenarios)),
        ]);
        return Ok(json_envelope("table4", data, 0));
    }
    let mut out = format!(
        "supervised run: {} attempts, min seed coverage {:.2}\n",
        supervised.attempts,
        supervised.min_coverage()
    );
    out.push_str(&format!(
        "{:<26} {:>16} {:>9} {:>7} {:>9}\n",
        "scenario", "MTTF (95% CI)", "MTTR", "avail", "coverage"
    ));
    for s in &supervised.scenarios {
        out.push_str(&format!(
            "{:<26} {:>16} {:>9.1} {:>7.3} {:>9.2}\n",
            s.label,
            s.mttf_ci.to_string(),
            s.measurement.mttr_s,
            s.measurement.availability,
            s.coverage
        ));
    }
    Ok(out)
}

/// Rebuilds a [`Snapshot`] from the canonical JSON that
/// [`Snapshot::to_json`] (and `--metrics-out`) writes, via the
/// snapshot's public fields.
fn snapshot_from_json(text: &str) -> Result<Snapshot, String> {
    fn entries<'a>(v: &'a Value, key: &str) -> Result<&'a [(String, Value)], String> {
        match v.get(key) {
            Some(Value::Object(entries)) => Ok(entries),
            _ => Err(format!("missing object field `{key}`")),
        }
    }
    fn u64_field(v: &Value, key: &str) -> Result<u64, String> {
        v.get(key)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("missing u64 field `{key}`"))
    }
    fn opt_u64_field(v: &Value, key: &str) -> Result<Option<u64>, String> {
        match v.get(key) {
            Some(Value::Null) => Ok(None),
            Some(n) => n
                .as_u64()
                .map(Some)
                .ok_or_else(|| format!("field `{key}` is not a u64")),
            None => Err(format!("missing field `{key}`")),
        }
    }
    let v = serde_json::value_from_str(text.trim()).map_err(|e| e.to_string())?;
    let schema_version = u64_field(&v, "schema_version")?;
    if schema_version != u64::from(btpan_obs::SNAPSHOT_SCHEMA_VERSION) {
        return Err(format!("unsupported snapshot schema {schema_version}"));
    }
    let counters = entries(&v, "counters")?
        .iter()
        .map(|(k, n)| {
            n.as_u64()
                .map(|n| (k.clone(), n))
                .ok_or_else(|| format!("counter `{k}` is not a u64"))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let gauges = entries(&v, "gauges")?
        .iter()
        .map(|(k, n)| {
            n.as_i64()
                .map(|n| (k.clone(), n))
                .ok_or_else(|| format!("gauge `{k}` is not an i64"))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let histograms = entries(&v, "histograms")?
        .iter()
        .map(|(k, h)| {
            let buckets = match h.get("buckets") {
                Some(Value::Array(buckets)) => buckets
                    .iter()
                    .map(|b| {
                        Ok(BucketSnapshot {
                            le: u64_field(b, "le")?,
                            count: u64_field(b, "count")?,
                        })
                    })
                    .collect::<Result<Vec<_>, String>>()?,
                _ => return Err(format!("histogram `{k}` has no bucket array")),
            };
            Ok((
                k.clone(),
                HistogramSnapshot {
                    count: u64_field(h, "count")?,
                    sum: u64_field(h, "sum")?,
                    min: opt_u64_field(h, "min")?,
                    max: opt_u64_field(h, "max")?,
                    buckets,
                },
            ))
        })
        .collect::<Result<Vec<_>, String>>()?;
    let events = match v.get("events") {
        Some(Value::Array(events)) => events
            .iter()
            .map(|e| {
                let field = |key: &str| {
                    e.get(key)
                        .and_then(Value::as_str)
                        .map(str::to_string)
                        .ok_or_else(|| format!("event without string `{key}`"))
                };
                Ok(EventRecord {
                    seq: u64_field(e, "seq")?,
                    name: field("name")?,
                    detail: field("detail")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?,
        _ => return Err("missing event array".into()),
    };
    Ok(Snapshot {
        schema_version: btpan_obs::SNAPSHOT_SCHEMA_VERSION,
        counters,
        gauges,
        histograms,
        events,
        events_dropped: u64_field(&v, "events_dropped")?,
    })
}

/// `btpan metrics` — renders the process-global registry (or a snapshot
/// file written by `--metrics-out`) as the JSON envelope (default) or
/// Prometheus text exposition (`--prometheus`).
fn cmd_metrics(args: &[String]) -> Result<CliOutcome, CliError> {
    let snapshot = match flag_value(args, "--from") {
        Some(path) => {
            let text = std::fs::read_to_string(path)?;
            snapshot_from_json(&text)
                .map_err(|reason| CliError::Usage(format!("--from {path}: {reason}")))?
        }
        None => Registry::global().snapshot(),
    };
    if has_flag(args, "--prometheus") {
        return Ok(CliOutcome::ok(snapshot.to_prometheus()));
    }
    let data = serde_json::value_from_str(&snapshot.to_json()).expect("snapshot JSON parses");
    Ok(CliOutcome::ok(json_envelope("metrics", data, 0)))
}

fn cmd_markov(args: &[String]) -> Result<String, CliError> {
    let scale = scale_from(args)?;
    let (model, measured) = experiment::markov_validation(&scale);
    let mut out = format!(
        "analytic availability {:.4} vs measured {measured:.4}\n",
        model.availability()
    );
    for (f, share) in model.downtime_ranking() {
        out.push_str(&format!("{:<24} downtime share {share:.5}\n", f.label()));
    }
    Ok(out)
}

/// Renders the full Bluetooth PAN failure model (paper Table 1 plus the
/// reconstructed Table 2/3 profiles) as Markdown — the reference a
/// downstream dependability engineer would pin to the wall.
pub fn render_failure_model() -> String {
    use btpan_faults::profiles::{cause_profile, SiraProfiles, FAILURE_MIX};
    use btpan_faults::{FailureGroup, Sira, SystemFault};
    let mut out = String::from("# Bluetooth PAN failure model\n");
    for group in [
        FailureGroup::Search,
        FailureGroup::Connect,
        FailureGroup::DataTransfer,
    ] {
        out.push_str(&format!("\n## {group:?} phase\n\n"));
        for f in UserFailure::ALL.iter().filter(|f| f.group() == group) {
            out.push_str(&format!(
                "### {} ({:.1} % of failures)\n\n",
                f.label(),
                FAILURE_MIX[f.index()]
            ));
            let profile = cause_profile(*f);
            if profile.causes().is_empty() {
                out.push_str("- no related system-level evidence (paper: none found)\n");
            } else {
                for c in profile.causes() {
                    out.push_str(&format!(
                        "- {:.1} % related to {} errors ({})\n",
                        c.percent, c.component, c.site
                    ));
                }
                if profile.none_percent() > 0.0 {
                    out.push_str(&format!(
                        "- {:.1} % with no system evidence\n",
                        profile.none_percent()
                    ));
                }
            }
            match SiraProfiles::row(*f) {
                None => out.push_str("- recovery: none defined (unrecoverable)\n"),
                Some(row) => {
                    let (best_i, best) = row
                        .iter()
                        .enumerate()
                        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                        .expect("7 actions");
                    out.push_str(&format!(
                        "- most effective recovery: {} ({best:.1} % of cases); coverage by SIRAs 1-3: {:.1} %\n",
                        Sira::ALL[best_i].label(),
                        SiraProfiles::coverage_1_to_3(*f)
                    ));
                }
            }
        }
    }
    out.push_str("\n## System-level error types\n\n");
    for s in SystemFault::ALL {
        out.push_str(&format!("- `{}` — {}\n", s.component(), s.log_message()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn help_and_empty() {
        assert!(run(&args(&["help"])).unwrap().contains("USAGE"));
        assert!(run(&[]).unwrap().contains("USAGE"));
    }

    #[test]
    fn unknown_command_rejected() {
        let err = run(&args(&["frobnicate"])).unwrap_err();
        assert!(err.to_string().contains("unknown command"));
    }

    #[test]
    fn campaign_runs_and_reports() {
        let out = run(&args(&["campaign", "--hours", "2", "--seed", "3"])).unwrap();
        assert!(out.contains("piconet MTTF"));
        assert!(out.contains("cycles:"));
    }

    #[test]
    fn campaign_topology_presets() {
        let out = run(&args(&[
            "campaign",
            "--topology",
            "scatternet",
            "--hours",
            "1",
            "--seed",
            "7",
        ]))
        .unwrap();
        assert!(out.contains("topology scatternet"), "{out}");
        assert!(out.contains("piconet 0 (alpha"), "{out}");
        assert!(out.contains("piconet 2 (gamma"), "{out}");
        let out = run(&args(&[
            "campaign",
            "--topology",
            "paper-both",
            "--hours",
            "1",
        ]))
        .unwrap();
        assert!(out.contains("testbed-a"), "{out}");
        assert!(out.contains("testbed-b"), "{out}");
    }

    #[test]
    fn campaign_json_envelope_echoes_topology() {
        let out = run(&args(&[
            "campaign",
            "--topology",
            "paper-a",
            "--hours",
            "1",
            "--seed",
            "5",
            "--json",
        ]))
        .unwrap();
        let v = serde_json::value_from_str(&out).expect("valid JSON envelope");
        assert_eq!(
            v.get("command").and_then(Value::as_str),
            Some("campaign"),
            "{out}"
        );
        let data = v.get("data").expect("data");
        let topo = data.get("topology").expect("topology echoed");
        assert_eq!(
            topo.get("name").and_then(Value::as_str),
            Some("paper-testbed-a")
        );
        let Some(Value::Array(piconets)) = data.get("piconets") else {
            panic!("piconets array missing: {out}");
        };
        assert_eq!(piconets.len(), 1);
        assert!(data.get("availability").is_some());
    }

    #[test]
    fn campaign_topology_file_and_errors() {
        let path = std::env::temp_dir().join("btpan_cli_topology_test.json");
        let path_s = path.to_str().expect("utf8 temp path");
        std::fs::write(&path, Topology::paper_a().to_json()).unwrap();
        let out = run(&args(&["campaign", "--topology", path_s, "--hours", "1"])).unwrap();
        assert!(out.contains("topology paper-testbed-a"), "{out}");
        // Malformed file is a usage error naming the flag.
        std::fs::write(&path, "{\"piconets\": []}").unwrap();
        let err = run(&args(&["campaign", "--topology", path_s])).unwrap_err();
        assert!(err.to_string().contains("--topology"), "{err}");
        // Unknown preset that is not a file surfaces the IO error.
        let err = run(&args(&["campaign", "--topology", "no-such-preset"])).unwrap_err();
        assert!(matches!(err, CliError::Io(_)), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_flag_values_error() {
        let err = run(&args(&["campaign", "--hours", "soon"])).unwrap_err();
        assert!(err.to_string().contains("--hours"));
        let err = run(&args(&["campaign", "--policy", "prayer"])).unwrap_err();
        assert!(err.to_string().contains("unknown policy"));
        let err = run(&args(&["campaign", "--workload", "cats"])).unwrap_err();
        assert!(err.to_string().contains("unknown workload"));
    }

    #[test]
    fn export_then_analyze_round_trip() {
        let path = std::env::temp_dir().join("btpan_cli_trace_test.jsonl");
        let path_s = path.to_str().expect("utf8 temp path");
        let out = run(&args(&[
            "campaign", "--hours", "6", "--seed", "9", "--export", path_s,
        ]))
        .unwrap();
        assert!(out.contains("exported"));
        let out = run(&args(&["analyze", path_s])).unwrap();
        assert!(out.contains("related failures"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn lenient_import_quarantines_corrupt_trace() {
        let path = std::env::temp_dir().join("btpan_cli_lenient_test.jsonl");
        let path_s = path.to_str().expect("utf8 temp path");
        run(&args(&[
            "campaign", "--hours", "6", "--seed", "9", "--export", path_s,
        ]))
        .unwrap();
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.insert_str(0, "!!not a record!!\n");
        std::fs::write(&path, &text).unwrap();
        // Strict import aborts...
        let err = run(&args(&["analyze", path_s])).unwrap_err();
        assert!(matches!(err, CliError::Trace(_)));
        // ...lenient import quarantines and proceeds.
        let out = run(&args(&["analyze", path_s, "--lenient-import"])).unwrap();
        assert!(out.contains("quarantine:"), "{out}");
        assert!(out.contains("line 1:"), "{out}");
        assert!(out.contains("related failures"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn lenient_import_json_report_and_exit_code() {
        let path = std::env::temp_dir().join("btpan_cli_lenient_json_test.jsonl");
        let path_s = path.to_str().expect("utf8 temp path");
        run(&args(&[
            "campaign", "--hours", "6", "--seed", "9", "--export", path_s,
        ]))
        .unwrap();
        // Healthy trace: zero quarantine, exit 0.
        let outcome = run_cli(&args(&["analyze", path_s, "--lenient-import", "--json"])).unwrap();
        assert_eq!(outcome.status, 0);
        assert!(
            outcome.output.contains("\"quarantined\":0"),
            "{}",
            outcome.output
        );
        // Corrupt one line: quarantine counts in the JSON report and the
        // distinct trace-health exit code.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.insert_str(0, "!!not a record!!\n");
        std::fs::write(&path, &text).unwrap();
        let outcome = run_cli(&args(&["analyze", path_s, "--lenient-import", "--json"])).unwrap();
        assert_eq!(outcome.status, EXIT_QUARANTINE);
        assert!(
            outcome.output.contains("\"quarantined\":1"),
            "{}",
            outcome.output
        );
        assert!(
            outcome.output.contains("\"imported\":"),
            "{}",
            outcome.output
        );
        // Prose mode gates the same way.
        let outcome = run_cli(&args(&["analyze", path_s, "--lenient-import"])).unwrap();
        assert_eq!(outcome.status, EXIT_QUARANTINE);
        // Strict import on a clean trace still exits 0.
        std::fs::write(&path, text.lines().skip(1).collect::<Vec<_>>().join("\n")).unwrap();
        let outcome = run_cli(&args(&["analyze", path_s])).unwrap();
        assert_eq!(outcome.status, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stream_matches_analyze_on_exported_trace() {
        let path = std::env::temp_dir().join("btpan_cli_stream_test.jsonl");
        let path_s = path.to_str().expect("utf8 temp path");
        run(&args(&[
            "campaign", "--hours", "6", "--seed", "11", "--export", path_s,
        ]))
        .unwrap();
        let outcome = run_cli(&args(&["stream", path_s])).unwrap();
        assert_eq!(outcome.status, 0, "{}", outcome.output);
        assert!(
            outcome.output.contains("end of stream"),
            "{}",
            outcome.output
        );
        assert!(outcome.output.contains("table4:"), "{}", outcome.output);
        // The streamed Table 2 rows must equal the batch analyze rows.
        let analyze = run(&args(&["analyze", path_s])).unwrap();
        for line in analyze.lines().skip(1) {
            assert!(
                outcome.output.contains(line.trim()),
                "missing batch row `{line}` in streaming output:\n{}",
                outcome.output
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stream_checkpoint_then_resume_skips_covered_prefix() {
        let trace = std::env::temp_dir().join("btpan_cli_stream_cp_trace.jsonl");
        let cp = std::env::temp_dir().join("btpan_cli_stream_cp.json");
        let trace_s = trace.to_str().expect("utf8 temp path");
        let cp_s = cp.to_str().expect("utf8 temp path");
        run(&args(&[
            "campaign", "--hours", "4", "--seed", "5", "--export", trace_s,
        ]))
        .unwrap();
        let first = run_cli(&args(&["stream", trace_s, "--json", "--checkpoint", cp_s])).unwrap();
        assert_eq!(first.status, 0);
        // Resume from the final checkpoint over the same trace: every
        // record is already covered, and the snapshot is unchanged.
        let resumed = run_cli(&args(&["stream", trace_s, "--json", "--resume", cp_s])).unwrap();
        assert_eq!(first.output, resumed.output);
        let err = run_cli(&args(&["stream", trace_s, "--resume", trace_s])).unwrap_err();
        assert!(matches!(err, CliError::Checkpoint(_)));
        std::fs::remove_file(&trace).ok();
        std::fs::remove_file(&cp).ok();
    }

    #[test]
    fn stream_follow_quiesces_and_flags_bad_lines() {
        let path = std::env::temp_dir().join("btpan_cli_stream_follow_test.jsonl");
        let path_s = path.to_str().expect("utf8 temp path");
        run(&args(&[
            "campaign", "--hours", "4", "--seed", "7", "--export", path_s,
        ]))
        .unwrap();
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("%%garbage%%\n");
        std::fs::write(&path, &text).unwrap();
        let outcome = run_cli(&args(&[
            "stream",
            path_s,
            "--follow",
            "--poll-ms",
            "10",
            "--idle-exit",
            "2",
        ]))
        .unwrap();
        assert_eq!(outcome.status, EXIT_QUARANTINE, "{}", outcome.output);
        assert!(
            outcome.output.contains("1 undecodable lines"),
            "{}",
            outcome.output
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stream_requires_path_and_valid_flags() {
        let err = run_cli(&args(&["stream"])).unwrap_err();
        assert!(err.to_string().contains("needs a trace path"));
        let err = run_cli(&args(&["stream", "/nonexistent/trace.jsonl"])).unwrap_err();
        assert!(matches!(err, CliError::Io(_)));
    }

    #[test]
    fn table4_supervised_flags() {
        let out = run(&args(&[
            "table4",
            "--seeds",
            "1",
            "--hours",
            "2",
            "--max-retries",
            "1",
            "--seed-timeout",
            "600",
        ]))
        .unwrap();
        assert!(out.contains("supervised run"), "{out}");
        assert!(out.contains("min seed coverage 1.00"), "{out}");
        assert!(out.contains("95% CI"), "{out}");
        let err = run(&args(&["table4", "--max-retries", "many"])).unwrap_err();
        assert!(err.to_string().contains("--max-retries"));
        let err = run(&args(&["table4", "--seed-timeout", "1.5"])).unwrap_err();
        assert!(err.to_string().contains("--seed-timeout"));
    }

    #[test]
    fn analyze_missing_file_is_io_error() {
        let err = run(&args(&["analyze", "/nonexistent/trace.jsonl"])).unwrap_err();
        assert!(matches!(err, CliError::Io(_)));
    }

    #[test]
    fn model_renders_all_failure_types() {
        let md = run(&args(&["model"])).unwrap();
        for f in UserFailure::ALL {
            assert!(md.contains(f.label()), "missing {f}");
        }
        assert!(md.contains("most effective recovery"));
        assert!(md.contains("unrecoverable"));
        assert!(md.contains("HOTPLUG"));
    }

    #[test]
    fn analyze_requires_path() {
        let err = run(&args(&["analyze"])).unwrap_err();
        assert!(err.to_string().contains("needs a trace path"));
    }

    /// Parses one `--json` output line and checks the envelope frame.
    fn envelope(output: &str, command: &str, status: i32) -> Value {
        let v = serde_json::value_from_str(output.trim()).expect("envelope parses");
        assert_eq!(
            v.get("schema_version").and_then(Value::as_u64),
            Some(JSON_SCHEMA_VERSION),
            "{output}"
        );
        assert_eq!(
            v.get("command").and_then(Value::as_str),
            Some(command),
            "{output}"
        );
        let health = v.get("health").expect("health block").clone();
        assert_eq!(
            health.get("exit_code").and_then(Value::as_i64),
            Some(i64::from(status))
        );
        let expected = if status == EXIT_QUARANTINE {
            "quarantine"
        } else {
            "ok"
        };
        assert_eq!(health.get("status").and_then(Value::as_str), Some(expected));
        v.get("data").expect("data block").clone()
    }

    #[test]
    fn analyze_json_wraps_report_in_envelope() {
        let path = std::env::temp_dir().join("btpan_cli_envelope_test.jsonl");
        let path_s = path.to_str().expect("utf8 temp path");
        run(&args(&[
            "campaign", "--hours", "6", "--seed", "9", "--export", path_s,
        ]))
        .unwrap();
        let outcome = run_cli(&args(&["analyze", path_s, "--json"])).unwrap();
        let data = envelope(&outcome.output, "analyze", outcome.status);
        assert!(data.get("records").and_then(Value::as_u64).unwrap() > 0);
        assert!(data.get("rows").is_some());
        // Corrupt a line: the envelope health mirrors the exit status.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.insert_str(0, "!!not a record!!\n");
        std::fs::write(&path, &text).unwrap();
        let outcome = run_cli(&args(&["analyze", path_s, "--lenient-import", "--json"])).unwrap();
        assert_eq!(outcome.status, EXIT_QUARANTINE);
        let data = envelope(&outcome.output, "analyze", EXIT_QUARANTINE);
        let quarantined = data
            .get("quarantine")
            .and_then(|q| q.get("quarantined"))
            .and_then(Value::as_u64);
        assert_eq!(quarantined, Some(1));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn table4_json_envelope_has_both_modes() {
        let plain = run(&args(&["table4", "--seeds", "1", "--hours", "2", "--json"])).unwrap();
        let data = envelope(&plain, "table4", 0);
        assert_eq!(data.get("mode").and_then(Value::as_str), Some("plain"));
        let scenarios = match data.get("scenarios") {
            Some(Value::Array(s)) => s.clone(),
            other => panic!("scenarios missing: {other:?}"),
        };
        assert_eq!(scenarios.len(), 4, "one per recovery policy");
        assert!(scenarios[0].get("mttf_s").and_then(Value::as_f64).is_some());

        let supervised = run(&args(&[
            "table4",
            "--seeds",
            "1",
            "--hours",
            "2",
            "--max-retries",
            "1",
            "--json",
        ]))
        .unwrap();
        let data = envelope(&supervised, "table4", 0);
        assert_eq!(data.get("mode").and_then(Value::as_str), Some("supervised"));
        // 4 policies × 1 two-testbed seed.
        assert!(data.get("attempts").and_then(Value::as_u64).unwrap() >= 4);
        assert_eq!(data.get("min_coverage").and_then(Value::as_f64), Some(1.0));
    }

    #[test]
    fn campaign_metrics_out_round_trips_through_metrics_cmd() {
        let _guard = btpan_obs::testing::exclusive();
        // The guard enables the registry; start from the user-facing
        // default (disabled) so the restore assertion below is real.
        Registry::global().disable();
        let path = std::env::temp_dir().join("btpan_cli_metrics_test.json");
        let path_s = path.to_str().expect("utf8 temp path");
        let out = run(&args(&[
            "campaign",
            "--hours",
            "4",
            "--seed",
            "13",
            "--metrics-out",
            path_s,
        ]))
        .unwrap();
        assert!(out.contains("metrics written"), "{out}");
        assert!(
            !Registry::global().is_enabled(),
            "campaign must restore the prior (disabled) registry state"
        );
        let text = std::fs::read_to_string(&path).unwrap();
        // The file re-renders identically through `metrics --from`.
        let snapshot = snapshot_from_json(&text).expect("snapshot file parses");
        assert_eq!(snapshot.to_json(), text, "reconstruction is lossless");
        assert!(
            snapshot.counter_family_sum("btpan_campaign_cycles_total") > 0,
            "{text}"
        );
        let json = run_cli(&args(&["metrics", "--from", path_s])).unwrap();
        let data = envelope(&json.output, "metrics", 0);
        assert!(data.get("counters").is_some());
        let prom = run_cli(&args(&["metrics", "--from", path_s, "--prometheus"])).unwrap();
        assert!(
            prom.output
                .contains("# TYPE btpan_campaign_cycles_total counter"),
            "{}",
            prom.output
        );
        // A live registry (no --from) renders too, even when disabled.
        let live = run_cli(&args(&["metrics"])).unwrap();
        envelope(&live.output, "metrics", 0);
        // Garbage input is a usage error naming the file.
        std::fs::write(&path, "{\"schema_version\":99}").unwrap();
        let err = run_cli(&args(&["metrics", "--from", path_s])).unwrap_err();
        assert!(err.to_string().contains("unsupported snapshot schema"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stream_metrics_every_emits_live_snapshots() {
        let _guard = btpan_obs::testing::exclusive();
        let path = std::env::temp_dir().join("btpan_cli_stream_metrics_test.jsonl");
        let path_s = path.to_str().expect("utf8 temp path");
        run(&args(&[
            "campaign", "--hours", "4", "--seed", "19", "--export", path_s,
        ]))
        .unwrap();
        let metrics = std::env::temp_dir().join("btpan_cli_stream_metrics_out.json");
        let metrics_s = metrics.to_str().expect("utf8 temp path");
        let outcome = run_cli(&args(&[
            "stream",
            path_s,
            "--follow",
            "--poll-ms",
            "1200",
            "--idle-exit",
            "2",
            "--metrics-every",
            "1",
            "--metrics-out",
            metrics_s,
        ]))
        .unwrap();
        assert_eq!(outcome.status, 0, "{}", outcome.output);
        // The single idle poll sleeps 1.2 s > the 1 s cadence, so at
        // least one periodic snapshot line precedes the final render.
        let live_lines = outcome
            .output
            .lines()
            .filter(|l| l.starts_with("{\"schema_version\""))
            .count();
        assert!(live_lines >= 1, "{}", outcome.output);
        let snapshot =
            snapshot_from_json(&std::fs::read_to_string(&metrics).unwrap()).expect("parses");
        assert!(
            snapshot.counter_family_sum("btpan_stream_records_emitted_total") > 0,
            "stream counters flushed to --metrics-out"
        );
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&metrics).ok();
    }
}
