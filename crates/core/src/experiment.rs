//! One entry point per paper artifact.
//!
//! Every function runs the campaigns it needs (both testbeds where the
//! paper pooled them), feeds the logs through the collection/analysis
//! pipeline, and returns measured structures that the `repro_*` binaries
//! print next to the paper references.

use crate::campaign::{Campaign, CampaignConfig, CampaignResult};
use crate::machine::NAP_NODE_ID;
use crate::runner::run_seeds;
use crate::supervisor::{run_supervised, SupervisorConfig};
use crate::topology::Topology;
use btpan_analysis::dependability::{
    ConfidenceInterval, DependabilityReport, ScenarioMeasurement, TestbedBreakdown,
};
use btpan_analysis::distributions::{self, AgeHistogram, ShareTable};
use btpan_analysis::ttf::TtfTtrSeries;
use btpan_collect::relate::RelationshipMatrix;
use btpan_collect::sensitivity::SensitivityCurve;
use btpan_faults::UserFailure;
use btpan_recovery::RecoveryPolicy;
use btpan_sim::time::SimDuration;
use btpan_workload::WorkloadKind;
use std::collections::BTreeMap;

/// Shared experiment scale: seeds and per-campaign simulated duration.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Campaign seeds (averaged over).
    pub seeds: Vec<u64>,
    /// Simulated duration per campaign.
    pub duration: SimDuration,
}

impl Scale {
    /// A quick scale for tests and examples (one seed, 6 simulated
    /// hours).
    pub fn quick() -> Self {
        Scale {
            seeds: vec![42],
            duration: SimDuration::from_secs(6 * 3600),
        }
    }

    /// The full experiment scale used by the repro binaries: 4 seeds ×
    /// 4 simulated days per testbed.
    pub fn full() -> Self {
        Scale {
            seeds: vec![11, 22, 33, 44],
            duration: SimDuration::from_secs(4 * 24 * 3600),
        }
    }
}

/// The display name of a testbed node (delegates to the machine table,
/// the single source of truth for node-id → host-name).
pub fn node_name(node: u64) -> String {
    crate::machine::node_name(node)
}

/// One campaign per seed over the paper's real deployment: **both**
/// testbeds (Random + Realistic WL) running concurrently in a single
/// [`Topology::paper_both`] campaign.
fn run_both_workloads(scale: &Scale, policy: RecoveryPolicy) -> Vec<CampaignResult> {
    let duration = scale.duration;
    run_seeds(&scale.seeds, move |seed| {
        CampaignConfig::paper_both(seed, policy).duration(duration)
    })
}

/// The error–failure [`RelationshipMatrix`] of one campaign under its
/// topology: every reporting node's merged logs, coalesced with the
/// System Logs of **all** masters that can propagate to it (its home
/// NAP plus, for bridges, every bridged piconet's master).
pub fn relationship_matrix(
    result: &CampaignResult,
    topology: &Topology,
    window: SimDuration,
) -> RelationshipMatrix {
    let master_systems: Vec<(u64, Vec<btpan_collect::entry::LogRecord>)> = result
        .piconets
        .iter()
        .map(|p| (p.master, result.repository.system_records_of(p.master)))
        .collect();
    let node_streams: Vec<(u64, Vec<u64>, Vec<btpan_collect::entry::LogRecord>)> = result
        .repository
        .reporting_nodes()
        .into_iter()
        .map(|n| (n, topology.masters_of(n), result.repository.records_of(n)))
        .collect();
    RelationshipMatrix::from_node_logs_multi(&node_streams, &master_systems, window)
}

/// **Table 2** — error–failure relationship via merge-and-coalesce at
/// the given window (the paper's 330 s by default).
pub fn table2(scale: &Scale, window: SimDuration) -> RelationshipMatrix {
    let topo = Topology::paper_both();
    let mut matrix = RelationshipMatrix::new();
    for result in run_both_workloads(scale, RecoveryPolicy::Siras) {
        matrix.absorb(&relationship_matrix(&result, &topo, window));
    }
    matrix
}

/// **Figure 2** — the tuples-vs-window sensitivity curve (summed over
/// nodes and testbeds) and its knee.
pub fn fig2(scale: &Scale) -> SensitivityCurve {
    let mut windows: Vec<f64> = Vec::new();
    let mut tuples: Vec<usize> = Vec::new();
    let mut records_total = 0usize;
    for result in run_both_workloads(scale, RecoveryPolicy::Siras) {
        for node in result.repository.reporting_nodes() {
            // Fig. 2 tunes the window on each node's merged Test +
            // System log (the NAP merge enters later, in Table 2).
            let mut records = result.repository.records_of(node);
            records.sort();
            if records.len() < 3 {
                continue;
            }
            let curve = SensitivityCurve::sweep(&records, 1.0, 20_000.0, 48);
            if windows.is_empty() {
                windows = curve.windows_s.clone();
                tuples = vec![0; windows.len()];
            }
            for (i, t) in curve.tuples.iter().enumerate() {
                tuples[i] += t;
            }
            records_total += curve.record_count;
        }
    }
    SensitivityCurve {
        windows_s: windows,
        tuples,
        record_count: records_total,
    }
}

/// **Table 3** — measured SIRA-effectiveness: per failure, the share of
/// occurrences recovered at each severity.
pub fn table3(scale: &Scale) -> BTreeMap<UserFailure, [f64; 7]> {
    let mut counts: BTreeMap<UserFailure, [u64; 7]> = BTreeMap::new();
    for result in run_both_workloads(scale, RecoveryPolicy::Siras) {
        for (failure, severity) in result.recoveries {
            if let Some(s) = severity {
                counts.entry(failure).or_insert([0; 7])[s as usize - 1] += 1;
            } else {
                counts.entry(failure).or_insert([0; 7]);
            }
        }
    }
    counts
        .into_iter()
        .map(|(f, c)| {
            let total: u64 = c.iter().sum();
            let mut row = [0.0; 7];
            if total > 0 {
                for i in 0..7 {
                    row[i] = 100.0 * c[i] as f64 / total as f64;
                }
            }
            (f, row)
        })
        .collect()
}

/// Extends `series` with every piconet's own piconet-level series (the
/// paper pooled the two testbeds' series, not their merged timeline).
fn extend_per_piconet(series: &mut TtfTtrSeries, r: &CampaignResult) {
    for i in 0..r.piconets.len() {
        series.extend(&r.piconet_series_of(i));
    }
}

/// **Table 4** — the four-policy dependability comparison, both
/// testbeds pooled.
pub fn table4(scale: &Scale) -> DependabilityReport {
    let mut scenarios = Vec::new();
    for policy in RecoveryPolicy::ALL {
        let results = run_both_workloads(scale, policy);
        let mut series = TtfTtrSeries::default();
        let mut covered = 0;
        let mut masked = 0;
        let mut manifested = 0;
        for r in &results {
            extend_per_piconet(&mut series, r);
            covered += r.covered_count;
            masked += r.masked_count;
            manifested += r.failure_count;
        }
        scenarios.push((
            policy.label().to_string(),
            ScenarioMeasurement::from_series(&series, covered, masked, manifested),
        ));
    }
    DependabilityReport::new(scenarios)
}

/// **Table 4 per testbed** — the same four-policy comparison split per
/// testbed of the paper's two-testbed deployment, next to the pooled
/// columns. Each testbed's columns equal a single-testbed [`table4`]
/// run at the same seeds (the per-piconet RNG roots are independent).
pub fn table4_by_testbed(scale: &Scale) -> TestbedBreakdown {
    let topo = Topology::paper_both();
    let n = topo.piconets.len();
    let mut per: Vec<Vec<(String, ScenarioMeasurement)>> = vec![Vec::new(); n];
    let mut pooled = Vec::new();
    for policy in RecoveryPolicy::ALL {
        let results = run_both_workloads(scale, policy);
        let mut pooled_series = TtfTtrSeries::default();
        let mut totals = (0u64, 0u64, 0u64);
        for (i, column) in per.iter_mut().enumerate() {
            let mut series = TtfTtrSeries::default();
            let (mut covered, mut masked, mut manifested) = (0u64, 0u64, 0u64);
            for r in &results {
                series.extend(&r.piconet_series_of(i));
                let p = &r.piconets[i];
                covered += p.covered_count;
                masked += p.masked_count;
                manifested += p.failure_count;
            }
            pooled_series.extend(&series);
            totals.0 += covered;
            totals.1 += masked;
            totals.2 += manifested;
            column.push((
                policy.label().to_string(),
                ScenarioMeasurement::from_series(&series, covered, masked, manifested),
            ));
        }
        pooled.push((
            policy.label().to_string(),
            ScenarioMeasurement::from_series(&pooled_series, totals.0, totals.1, totals.2),
        ));
    }
    TestbedBreakdown {
        per_testbed: topo
            .piconets
            .iter()
            .map(|p| p.label.clone())
            .zip(per.into_iter().map(DependabilityReport::new))
            .collect(),
        pooled: DependabilityReport::new(pooled),
    }
}

/// The streaming/batch cross-check of [`table4_streaming`].
#[derive(Debug, Clone)]
pub struct StreamingCrossCheck {
    /// End-of-stream snapshot from the sharded streaming engine.
    pub streaming: btpan_stream::StreamSnapshot,
    /// The batch reference pipeline on the same records.
    pub batch: btpan_stream::StreamSnapshot,
}

impl StreamingCrossCheck {
    /// True when the streaming analysis is bit-identical to batch
    /// (MTTF/MTTR/availability compared by f64 bit pattern).
    pub fn matches(&self) -> bool {
        self.streaming.analysis_eq(&self.batch)
    }
}

/// **Table 4, streaming** — runs one SIRA campaign per seed, pushes the
/// collected repository through the threaded `btpan-stream` engine in
/// canonical order, and cross-checks the end-of-stream snapshot against
/// the batch reference pipeline on the same records.
///
/// # Panics
///
/// Panics if the streaming engine dies mid-ingest (worker thread
/// panic), which would invalidate the comparison anyway.
pub fn table4_streaming(scale: &Scale) -> StreamingCrossCheck {
    use btpan_stream::{batch_reference, StreamConfig, StreamEngine, DEFAULT_WINDOW};
    let config = StreamConfig {
        shards: 4,
        channel_capacity: 1024,
        window: DEFAULT_WINDOW,
        watermark_lag: DEFAULT_WINDOW * 2,
        idle_timeout_ms: None,
        nap_node: NAP_NODE_ID,
        keep_tuples: false,
        // Route each testbed's nodes through one shard so a piconet's
        // records stay mutually ordered end to end.
        group_of: Some(Topology::paper_both().group_table()),
    };
    let mut records = Vec::new();
    for result in run_both_workloads(scale, RecoveryPolicy::Siras) {
        records.extend(result.repository.records());
    }
    // Re-sequence the pooled campaigns into one canonical stream.
    records.sort();
    for (seq, rec) in records.iter_mut().enumerate() {
        rec.seq = seq as u64;
    }
    let mut engine = StreamEngine::start(config.clone());
    for rec in records.clone() {
        engine.ingest(rec).expect("stream engine alive");
    }
    StreamingCrossCheck {
        streaming: engine.finish().snapshot,
        batch: batch_reference(&records, &config),
    }
}

/// One Table 4 column measured under supervision: the measurement plus
/// the seed coverage it was computed from and coverage-widened error
/// bars.
#[derive(Debug, Clone)]
pub struct SupervisedScenario {
    /// The recovery-policy label (Table 4 column header).
    pub label: String,
    /// The pooled measurement over the seeds that completed.
    pub measurement: ScenarioMeasurement,
    /// Fraction of requested per-seed campaigns that completed.
    pub coverage: f64,
    /// 95 % CI on the MTTF, widened by `1/√coverage`.
    pub mttf_ci: ConfidenceInterval,
    /// 95 % CI on the MTTR, widened likewise.
    pub mttr_ci: ConfidenceInterval,
}

/// **Table 4 under supervision** — the same four-policy comparison as
/// [`table4`], but run through the fault-tolerant supervisor so a
/// panicking or overrunning seed degrades coverage instead of aborting
/// the experiment.
#[derive(Debug, Clone)]
pub struct SupervisedTable4 {
    /// One entry per recovery policy, in [`RecoveryPolicy::ALL`] order.
    pub scenarios: Vec<SupervisedScenario>,
    /// Total campaign attempts across all policies (> requested count
    /// when retries fired).
    pub attempts: u64,
}

impl SupervisedTable4 {
    /// The plain report (for the existing table renderers).
    pub fn report(&self) -> DependabilityReport {
        DependabilityReport::new(
            self.scenarios
                .iter()
                .map(|s| (s.label.clone(), s.measurement))
                .collect(),
        )
    }

    /// The worst per-policy coverage — the honest headline figure.
    pub fn min_coverage(&self) -> f64 {
        self.scenarios
            .iter()
            .map(|s| s.coverage)
            .fold(1.0, f64::min)
    }
}

/// Runs [`table4`] under a [`SupervisorConfig`]: every per-seed
/// two-testbed campaign is panic-isolated, retried per the config, and
/// bounded by its per-seed deadline; lost campaigns shrink the coverage
/// fraction, which in turn widens the per-column confidence intervals.
pub fn table4_supervised(scale: &Scale, supervisor: &SupervisorConfig) -> SupervisedTable4 {
    let mut scenarios = Vec::new();
    let mut attempts = 0;
    for policy in RecoveryPolicy::ALL {
        let duration = scale.duration;
        let outcome = run_supervised(&scale.seeds, supervisor, |seed| {
            Campaign::new(CampaignConfig::paper_both(seed, policy).duration(duration)).run()
        });
        attempts += outcome.attempts;
        let coverage = outcome.coverage();
        let mut series = TtfTtrSeries::default();
        let mut covered = 0;
        let mut masked = 0;
        let mut manifested = 0;
        for r in outcome.results.iter().flatten() {
            extend_per_piconet(&mut series, r);
            covered += r.covered_count;
            masked += r.masked_count;
            manifested += r.failure_count;
        }
        let measurement = ScenarioMeasurement::from_series(&series, covered, masked, manifested);
        scenarios.push(SupervisedScenario {
            label: policy.label().to_string(),
            mttf_ci: measurement.mttf_ci(coverage),
            mttr_ci: measurement.mttr_ci(coverage),
            measurement,
            coverage,
        });
    }
    SupervisedTable4 {
        scenarios,
        attempts,
    }
}

/// **Figure 3a** — packet-loss share per packet type (Random WL).
pub fn fig3a(scale: &Scale) -> ShareTable {
    let duration = scale.duration;
    let results = run_seeds(&scale.seeds, move |seed| {
        CampaignConfig::paper(seed, WorkloadKind::Random, RecoveryPolicy::Siras).duration(duration)
    });
    let mut table = ShareTable::new();
    for r in results {
        let partial = distributions::packet_loss_by_packet_type(&r.repository.tests());
        for (cat, count, _) in partial.rows() {
            for _ in 0..count {
                table.add(&cat);
            }
        }
    }
    table
}

/// **Figure 3b** — packets-sent-before-loss histogram from the special
/// fixed-size workload on Verde and Win.
pub fn fig3b(scale: &Scale) -> AgeHistogram {
    let duration = scale.duration;
    let results = run_seeds(&scale.seeds, move |seed| {
        let mut cfg = CampaignConfig::paper(seed, WorkloadKind::Random, RecoveryPolicy::Siras)
            .duration(duration);
        cfg.fig3b_variant = true;
        cfg
    });
    let mut tests = Vec::new();
    for r in results {
        tests.extend(r.repository.tests());
    }
    AgeHistogram::from_tests(&tests, 1_000, 10_000)
}

/// **Figure 3c** — packet-loss share per application (Realistic WL).
pub fn fig3c(scale: &Scale) -> ShareTable {
    let duration = scale.duration;
    let results = run_seeds(&scale.seeds, move |seed| {
        CampaignConfig::paper(seed, WorkloadKind::Realistic, RecoveryPolicy::Siras)
            .duration(duration)
    });
    let mut table = ShareTable::new();
    for r in results {
        let partial = distributions::packet_loss_by_app(&r.repository.tests());
        for (cat, count, _) in partial.rows() {
            for _ in 0..count {
                table.add(&cat);
            }
        }
    }
    table
}

/// **Figure 4** — per-host shares of each user failure (Realistic WL,
/// no masking), keyed by failure then host name.
pub fn fig4(scale: &Scale) -> BTreeMap<UserFailure, ShareTable> {
    let duration = scale.duration;
    let results = run_seeds(&scale.seeds, move |seed| {
        CampaignConfig::paper(seed, WorkloadKind::Realistic, RecoveryPolicy::Siras)
            .duration(duration)
    });
    let mut merged: BTreeMap<UserFailure, ShareTable> = BTreeMap::new();
    for r in results {
        for t in r.repository.tests() {
            merged.entry(t.failure).or_default().add(&node_name(t.node));
        }
    }
    merged
}

/// **Extension: Markov availability validation** — fits the analytic
/// CTMC availability model from measured per-type rates and compares
/// its closed-form availability with the direct measurement.
pub fn markov_validation(scale: &Scale) -> (btpan_analysis::MarkovAvailability, f64) {
    let results = run_both_workloads(scale, RecoveryPolicy::Siras);
    let mut per_type: BTreeMap<UserFailure, (u64, f64)> = BTreeMap::new();
    let mut uptime_s = 0.0;
    let mut series = TtfTtrSeries::default();
    for r in &results {
        for tl in &r.timelines {
            uptime_s += tl.uptime().as_secs_f64();
            for e in &tl.episodes {
                let entry = per_type.entry(e.failure).or_insert((0, 0.0));
                entry.0 += 1;
                entry.1 += e.ttr().as_secs_f64();
            }
        }
        series.extend(&r.pooled_series());
    }
    let mut model = btpan_analysis::MarkovAvailability::new();
    for (f, (count, ttr_sum)) in &per_type {
        if *count > 0 {
            model.fit_type(*f, *count, uptime_s, ttr_sum / *count as f64);
        }
    }
    // Direct per-node measurement for comparison.
    let mttf = series.ttf_stats().mean().unwrap_or(f64::INFINITY);
    let mttr = series.ttr_stats().mean().unwrap_or(0.0);
    let measured_availability = mttf / (mttf + mttr);
    (model, measured_availability)
}

/// **Extension: redundant overlapped piconets** — replays the measured
/// timelines with a standby NAP and reports
/// `(base availability, redundant availability, absorbed, total)`.
pub fn redundancy(scale: &Scale) -> (f64, f64, u64, u64) {
    let results = run_both_workloads(scale, RecoveryPolicy::Siras);
    let mut timelines = Vec::new();
    for r in results {
        timelines.extend(r.timelines);
    }
    let mut base = TtfTtrSeries::default();
    for tl in &timelines {
        base.extend(&tl.series());
    }
    let avail = |s: &TtfTtrSeries| {
        let f = s.ttf_stats().mean().unwrap_or(f64::INFINITY);
        let r = s.ttr_stats().mean().unwrap_or(0.0);
        f / (f + r)
    };
    let (red, absorbed, not_absorbed) = btpan_analysis::redundancy::pooled_series_with_redundancy(
        &timelines,
        btpan_analysis::RedundancyConfig::default(),
    );
    (avail(&base), avail(&red), absorbed, absorbed + not_absorbed)
}

/// The section-6 findings: workload split, idle comparison, distance
/// shares.
#[derive(Debug, Clone)]
pub struct Findings {
    /// Percentage of failures from the Random WL (paper: 84 %).
    pub random_share_percent: f64,
    /// Mean idle before failed cycles, seconds (paper: 27.3 s).
    pub idle_before_failed_s: f64,
    /// Mean idle before clean cycles, seconds (paper: 26.9 s).
    pub idle_before_clean_s: f64,
    /// Failure shares at each antenna distance (bind excluded).
    pub distance_shares: Vec<(f64, f64)>,
}

/// **Section 6 extras** — the X1/X2/X3 findings.
pub fn findings(scale: &Scale) -> Findings {
    let results = run_both_workloads(scale, RecoveryPolicy::Siras);
    let mut tests = Vec::new();
    let mut clean_idles = Vec::new();
    for r in &results {
        tests.extend(r.repository.tests());
        clean_idles.extend(r.clean_idles_s.iter().copied());
    }
    let split = distributions::failures_by_workload(&tests);
    // Idle analysis is about reused connections: realistic WL only.
    let realistic_tests: Vec<_> = tests
        .iter()
        .filter(|t| t.workload == btpan_collect::entry::WorkloadTag::Realistic)
        .cloned()
        .collect();
    let (idle_failed, idle_clean) =
        distributions::idle_time_comparison(&realistic_tests, &clean_idles);
    let by_distance = distributions::failures_by_distance(&tests);
    let distance_shares = [0.5, 5.0, 7.0]
        .iter()
        .map(|&d| (d, by_distance.percent(&format!("{d:.1}m"))))
        .collect();
    Findings {
        random_share_percent: split.percent("random"),
        idle_before_failed_s: idle_failed,
        idle_before_clean_s: idle_clean,
        distance_shares,
    }
}

/// **Extension: scatternet campaign** — runs the 3-piconet
/// [`Topology::scatternet`] (one bridge PANU time-sharing all three
/// piconets) end to end and coalesces the relationship matrix with
/// every master the bridge can propagate to.
pub fn scatternet_demo(seed: u64, duration: SimDuration) -> (CampaignResult, RelationshipMatrix) {
    let topo = Topology::scatternet();
    let result = Campaign::new(
        CampaignConfig::with_topology(seed, topo.clone(), RecoveryPolicy::Siras).duration(duration),
    )
    .run();
    let matrix = relationship_matrix(&result, &topo, SimDuration::from_secs(330));
    (result, matrix)
}

#[cfg(test)]
mod tests {
    use super::*;
    use btpan_faults::SystemComponent;

    fn tiny() -> Scale {
        Scale {
            seeds: vec![5],
            duration: SimDuration::from_secs(10 * 3600),
        }
    }

    #[test]
    fn table2_recovers_strong_relationships() {
        let m = table2(&tiny(), SimDuration::from_secs(330));
        assert!(m.grand_total() > 20, "too few observations");
        // The strongest prose constraint: connect-failed is HCI-dominated.
        if m.total(UserFailure::ConnectFailed) >= 10 {
            let hci = m.percent(
                UserFailure::ConnectFailed,
                SystemComponent::Hci,
                btpan_faults::CauseSite::Local,
            ) + m.percent(
                UserFailure::ConnectFailed,
                SystemComponent::Hci,
                btpan_faults::CauseSite::Nap,
            );
            assert!(hci > 50.0, "HCI share {hci}");
        }
    }

    #[test]
    fn fig2_curve_has_knee_near_paper_window() {
        let curve = fig2(&tiny());
        assert!(curve.record_count > 50);
        let knee = curve.knee();
        assert!((30.0..3_000.0).contains(&knee), "knee {knee} implausible");
    }

    #[test]
    fn table3_rows_sum_to_100() {
        let rows = table3(&tiny());
        for (f, row) in rows {
            let sum: f64 = row.iter().sum();
            if sum > 0.0 {
                assert!((sum - 100.0).abs() < 0.5, "{f}: {sum}");
            }
        }
    }

    #[test]
    fn fig4_bind_only_on_prone_hosts() {
        let map = fig4(&tiny());
        if let Some(bind) = map.get(&UserFailure::BindFailed) {
            assert_eq!(bind.count("Verde"), 0);
            assert_eq!(bind.count("Miseno"), 0);
            assert_eq!(bind.count("Ipaq"), 0);
            assert!(bind.count("Azzurro") + bind.count("Win") > 0);
        }
    }

    #[test]
    fn node_names_resolve() {
        assert_eq!(node_name(0), "Giallo");
        assert_eq!(node_name(4), "Win");
        assert_eq!(node_name(77), "node77");
    }
}

#[cfg(test)]
mod extension_tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            seeds: vec![8],
            duration: SimDuration::from_secs(8 * 3600),
        }
    }

    #[test]
    fn markov_model_tracks_measurement() {
        let (model, measured) = markov_validation(&tiny());
        assert!(!model.is_empty(), "no failure types fitted");
        let analytic = model.availability();
        assert!(
            (analytic - measured).abs() < 0.05,
            "analytic {analytic} vs measured {measured}"
        );
        // The ranking covers exactly the fitted types.
        assert_eq!(model.downtime_ranking().len(), model.len());
    }

    #[test]
    fn redundancy_never_hurts_and_absorbs_something() {
        let (base, redundant, absorbed, total) = redundancy(&tiny());
        assert!(total > 0);
        assert!(absorbed > 0, "nothing absorbed out of {total}");
        assert!(absorbed <= total);
        assert!(redundant >= base, "redundancy hurt: {base} -> {redundant}");
    }

    #[test]
    fn table4_supervised_at_full_coverage_matches_plain_table4() {
        let scale = Scale {
            seeds: vec![3],
            duration: SimDuration::from_secs(4 * 3600),
        };
        let plain = table4(&scale);
        let supervised = table4_supervised(&scale, &crate::supervisor::SupervisorConfig::default());
        assert!((supervised.min_coverage() - 1.0).abs() < 1e-12);
        assert_eq!(supervised.attempts, 4); // 4 policies × 1 two-testbed seed
        let report = supervised.report();
        assert_eq!(report.scenarios.len(), plain.scenarios.len());
        for ((la, ma), (lb, mb)) in report.scenarios.iter().zip(plain.scenarios.iter()) {
            assert_eq!(la, lb);
            assert_eq!(ma.mttf_s, mb.mttf_s, "{la}: supervision changed the data");
            assert_eq!(ma.availability, mb.availability);
        }
        for s in &supervised.scenarios {
            assert_eq!(s.mttf_ci.coverage, 1.0);
            assert!(s.mttf_ci.contains(s.measurement.mttf_s));
            // Losing half the seeds must widen the error bars.
            let degraded = s.measurement.mttf_ci(0.5);
            if s.mttf_ci.is_finite() {
                assert!(degraded.half_width > s.mttf_ci.half_width);
            }
        }
    }

    #[test]
    fn fig3b_variant_runs_only_on_verde_and_win() {
        let duration = SimDuration::from_secs(12 * 3600);
        let results = crate::runner::run_seeds(&[4], move |seed| {
            let mut cfg = CampaignConfig::paper(seed, WorkloadKind::Random, RecoveryPolicy::Siras)
                .duration(duration);
            cfg.fig3b_variant = true;
            cfg
        });
        let mut nodes: Vec<u64> = results[0]
            .repository
            .tests()
            .iter()
            .map(|t| t.node)
            .collect();
        nodes.sort_unstable();
        nodes.dedup();
        for n in nodes {
            let name = node_name(n);
            assert!(
                name == "Verde" || name == "Win",
                "fig3b failure on unexpected host {name}"
            );
        }
    }
}
