//! Fault-tolerant campaign supervisor.
//!
//! The paper's field campaign ran unattended for 18 months, so losing a
//! night of collection to one wedged node was a real cost (§3 of the
//! paper describes the operators restarting hosts by hand). The
//! simulated campaign has the same failure mode in miniature: one
//! panicking or runaway seed in [`crate::runner::run_seeds`]'s worker
//! pool used to abort the whole multi-seed run and discard every
//! completed result.
//!
//! [`run_supervised`] replaces that all-or-nothing pool with a
//! supervisor in the Erlang sense:
//!
//! * each seed's work runs under `catch_unwind`, so a panic is isolated
//!   to that seed and recorded as a [`SeedVerdict::Panicked`];
//! * panicked seeds are retried up to [`SupervisorConfig::max_retries`]
//!   times with exponential backoff and deterministic jitter (derived
//!   from the campaign seed, never from the wall clock, keeping
//!   reruns reproducible);
//! * each seed has an optional wall-clock budget
//!   ([`SupervisorConfig::seed_timeout`]); a seed that exceeds it is
//!   recorded as [`SeedVerdict::TimedOut`] and its (late) result is
//!   discarded rather than silently pooled;
//! * the survivors are aggregated into a [`SupervisedOutcome`] whose
//!   [`coverage`](SupervisedOutcome::coverage) fraction feeds
//!   `btpan-analysis`, which widens confidence intervals instead of
//!   pretending the lost seeds never existed.
//!
//! The deadline is cooperative: worker threads cannot be killed safely,
//! so an overrunning seed is detected when its closure returns and the
//! result is then dropped. The budget bounds what enters the pooled
//! statistics, not the worker's lifetime.

use btpan_sim::config::ConfigError;
use crossbeam::channel;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::thread;
use std::time::{Duration, Instant};

mod metrics {
    use btpan_obs::{Counter, Gauge, Histogram, Registry};
    use std::sync::OnceLock;

    pub(super) struct SupervisorMetrics {
        /// `btpan_supervisor_attempts_total` — work attempts, retries
        /// included.
        pub attempts: Counter,
        /// `btpan_supervisor_retries_total` — panicked attempts re-queued.
        pub retries: Counter,
        /// `btpan_supervisor_timeouts_total` — seeds whose wall-clock
        /// budget was blown (result discarded).
        pub timeouts: Counter,
        /// `btpan_supervisor_panics_total` — seeds that exhausted retries.
        pub panics: Counter,
        /// `btpan_supervisor_workers_busy` — workers currently inside
        /// `work(seed)` (worker utilization).
        pub workers_busy: Gauge,
        /// `btpan_supervisor_seed_duration_us` — wall-clock time per
        /// attempt.
        pub seed_duration_us: Histogram,
    }

    pub(super) fn handles() -> &'static SupervisorMetrics {
        static HANDLES: OnceLock<SupervisorMetrics> = OnceLock::new();
        HANDLES.get_or_init(|| {
            let registry = Registry::global();
            SupervisorMetrics {
                attempts: registry.counter("btpan_supervisor_attempts_total"),
                retries: registry.counter("btpan_supervisor_retries_total"),
                timeouts: registry.counter("btpan_supervisor_timeouts_total"),
                panics: registry.counter("btpan_supervisor_panics_total"),
                workers_busy: registry.gauge("btpan_supervisor_workers_busy"),
                seed_duration_us: registry.histogram("btpan_supervisor_seed_duration_us"),
            }
        })
    }
}

/// What happened to one seed under supervision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SeedVerdict {
    /// Completed within budget on the first attempt.
    Ok,
    /// Completed within budget after this many retries.
    Retried(u32),
    /// Exceeded the per-seed wall-clock budget; result discarded.
    TimedOut,
    /// Panicked on every allowed attempt; carries the final panic
    /// message.
    Panicked(String),
}

impl SeedVerdict {
    /// True when the seed contributed a result to the outcome.
    pub fn completed(&self) -> bool {
        matches!(self, SeedVerdict::Ok | SeedVerdict::Retried(_))
    }
}

/// Supervision policy for a multi-seed run.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Retries allowed per seed after a panic (0 = fail fast, the
    /// historical `run_seeds` behaviour).
    pub max_retries: u32,
    /// Per-seed wall-clock budget; `None` = unbounded.
    pub seed_timeout: Option<Duration>,
    /// Base backoff before the first retry; doubles per retry.
    pub backoff_base: Duration,
    /// Campaign-level seed; the only entropy source for retry jitter,
    /// so a rerun with the same seeds backs off identically.
    pub campaign_seed: u64,
    /// Worker-pool size. `None` (the default) sizes the pool to the
    /// machine's available parallelism capped at the seed count; an
    /// explicit value is used as-is (clamped to at least 1), so a
    /// single-worker pool for deterministic scheduling studies or an
    /// oversubscribed pool for timeout tests are both expressible.
    pub workers: Option<usize>,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            max_retries: 0,
            seed_timeout: None,
            backoff_base: Duration::from_millis(25),
            campaign_seed: 0,
            workers: None,
        }
    }
}

impl SupervisorConfig {
    /// Starts a validating builder. Struct literals remain supported;
    /// the builder front-loads the checks that otherwise surface as
    /// surprising runtime behaviour (a zero backoff busy-loops retries,
    /// a zero timeout discards every seed).
    pub fn builder() -> SupervisorConfigBuilder {
        SupervisorConfigBuilder {
            config: SupervisorConfig::default(),
        }
    }

    /// Backoff before retry attempt `attempt` (1-based) of `seed`:
    /// exponential with a deterministic jitter in `[0, 100%)` of the
    /// step, derived from `(campaign_seed, seed, attempt)`.
    fn backoff(&self, seed: u64, attempt: u32) -> Duration {
        let step = self.backoff_base.saturating_mul(
            1u32.checked_shl(attempt.saturating_sub(1))
                .unwrap_or(u32::MAX),
        );
        let jitter_unit = splitmix64(self.campaign_seed ^ seed.rotate_left(17) ^ u64::from(attempt))
            as f64
            / u64::MAX as f64;
        step + Duration::from_secs_f64(step.as_secs_f64() * jitter_unit)
    }
}

/// Validating builder for [`SupervisorConfig`].
///
/// ```
/// use btpan_core::supervisor::SupervisorConfig;
/// use std::time::Duration;
///
/// let config = SupervisorConfig::builder()
///     .max_retries(2)
///     .seed_timeout(Duration::from_secs(30))
///     .campaign_seed(7)
///     .build()
///     .unwrap();
/// assert_eq!(config.max_retries, 2);
///
/// let err = SupervisorConfig::builder()
///     .backoff_base(Duration::ZERO)
///     .build()
///     .unwrap_err();
/// assert_eq!(err.field, "backoff_base");
/// ```
#[derive(Debug, Clone)]
pub struct SupervisorConfigBuilder {
    config: SupervisorConfig,
}

impl SupervisorConfigBuilder {
    /// Retries allowed per seed after a panic.
    pub fn max_retries(mut self, retries: u32) -> Self {
        self.config.max_retries = retries;
        self
    }

    /// Per-seed wall-clock budget.
    pub fn seed_timeout(mut self, budget: Duration) -> Self {
        self.config.seed_timeout = Some(budget);
        self
    }

    /// Base backoff before the first retry.
    pub fn backoff_base(mut self, base: Duration) -> Self {
        self.config.backoff_base = base;
        self
    }

    /// Campaign-level seed for retry jitter.
    pub fn campaign_seed(mut self, seed: u64) -> Self {
        self.config.campaign_seed = seed;
        self
    }

    /// Explicit worker-pool size (not capped at the seed count).
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = Some(workers);
        self
    }

    /// Validates and returns the config, failing at construction time.
    pub fn build(self) -> Result<SupervisorConfig, ConfigError> {
        if self.config.backoff_base.is_zero() {
            return Err(ConfigError::new(
                "backoff_base",
                "must be positive; a zero backoff busy-loops panicking retries",
            ));
        }
        if let Some(budget) = self.config.seed_timeout {
            if budget.is_zero() {
                return Err(ConfigError::new(
                    "seed_timeout",
                    "must be positive; a zero budget discards every seed",
                ));
            }
        }
        if self.config.workers == Some(0) {
            return Err(ConfigError::new(
                "workers",
                "must be at least 1; a zero-worker pool never drains the queue",
            ));
        }
        Ok(self.config)
    }
}

/// SplitMix64 finalizer; cheap, stateless, well-mixed.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Aggregated result of a supervised multi-seed run.
///
/// `seeds`, `results` and `verdicts` are parallel vectors in the input
/// seed order; `results[i]` is `None` exactly when `verdicts[i]` did
/// not complete.
#[derive(Debug)]
pub struct SupervisedOutcome<T> {
    /// The seeds, in input order.
    pub seeds: Vec<u64>,
    /// Per-seed results; `None` for timed-out / panicked seeds.
    pub results: Vec<Option<T>>,
    /// Per-seed verdicts.
    pub verdicts: Vec<SeedVerdict>,
    /// Total work attempts executed, retries included.
    pub attempts: u64,
}

impl<T> SupervisedOutcome<T> {
    /// Fraction of seeds that contributed a result (1.0 when nothing
    /// failed; 1.0 for an empty seed list, which covers everything it
    /// promised).
    pub fn coverage(&self) -> f64 {
        if self.seeds.is_empty() {
            return 1.0;
        }
        let done = self.results.iter().filter(|r| r.is_some()).count();
        done as f64 / self.seeds.len() as f64
    }

    /// `(seed, result)` for every completed seed, in input order.
    pub fn completed(&self) -> impl Iterator<Item = (u64, &T)> {
        self.seeds
            .iter()
            .zip(&self.results)
            .filter_map(|(&s, r)| r.as_ref().map(|r| (s, r)))
    }

    /// Consumes the outcome, returning completed results in input
    /// order.
    pub fn into_results(self) -> Vec<T> {
        self.results.into_iter().flatten().collect()
    }

    /// The verdict for `seed`, if that seed was part of the run.
    pub fn verdict_of(&self, seed: u64) -> Option<&SeedVerdict> {
        self.seeds
            .iter()
            .position(|&s| s == seed)
            .map(|i| &self.verdicts[i])
    }
}

/// One unit of work queued to the pool.
#[derive(Debug)]
struct Job {
    index: usize,
    seed: u64,
    /// 0 = first try; n = nth retry.
    attempt: u32,
    /// Backoff to sleep before running (retries only).
    delay: Duration,
}

/// What a worker reports back.
enum Event<T> {
    Done {
        index: usize,
        attempt: u32,
        elapsed: Duration,
        result: T,
    },
    Panicked {
        index: usize,
        attempt: u32,
        elapsed: Duration,
        message: String,
    },
}

/// Runs `work(seed)` for every seed on a thread pool with panic
/// isolation, bounded retry, and per-seed wall-clock budgets.
///
/// Results come back in input-seed order regardless of scheduling, so
/// for a fixed `work` the outcome's `results` content is deterministic
/// (verdicts can differ only where wall-clock budgets race real time).
pub fn run_supervised<T, F>(
    seeds: &[u64],
    config: &SupervisorConfig,
    work: F,
) -> SupervisedOutcome<T>
where
    T: Send,
    F: Fn(u64) -> T + Send + Sync,
{
    let n = seeds.len();
    let mut results: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let mut verdicts: Vec<SeedVerdict> = vec![SeedVerdict::Ok; n];
    let mut attempts: u64 = 0;

    if n == 0 {
        return SupervisedOutcome {
            seeds: Vec::new(),
            results,
            verdicts,
            attempts,
        };
    }

    let workers = match config.workers {
        // Explicit sizes are honoured as-is (a pool larger than the
        // seed count just idles the surplus workers).
        Some(w) => w.max(1),
        None => thread::available_parallelism()
            .map_or(4, |p| p.get())
            .min(n),
    };
    let (job_tx, job_rx) = channel::unbounded::<Job>();
    let (event_tx, event_rx) = channel::unbounded::<Event<T>>();

    for (index, &seed) in seeds.iter().enumerate() {
        job_tx
            .send(Job {
                index,
                seed,
                attempt: 0,
                delay: Duration::ZERO,
            })
            .expect("job queue open");
    }

    thread::scope(|scope| {
        for _ in 0..workers {
            let job_rx = job_rx.clone();
            let event_tx = event_tx.clone();
            let work = &work;
            scope.spawn(move || {
                while let Ok(job) = job_rx.recv() {
                    if !job.delay.is_zero() {
                        thread::sleep(job.delay);
                    }
                    let seed = job.seed;
                    let obs = metrics::handles();
                    obs.workers_busy.inc();
                    let start = Instant::now();
                    let outcome = catch_unwind(AssertUnwindSafe(|| work(seed)));
                    let elapsed = start.elapsed();
                    obs.workers_busy.dec();
                    obs.seed_duration_us
                        .observe(u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX));
                    let event = match outcome {
                        Ok(result) => Event::Done {
                            index: job.index,
                            attempt: job.attempt,
                            elapsed,
                            result,
                        },
                        Err(payload) => Event::Panicked {
                            index: job.index,
                            attempt: job.attempt,
                            elapsed,
                            message: panic_message(payload.as_ref()),
                        },
                    };
                    if event_tx.send(event).is_err() {
                        // Coordinator has already concluded; nothing
                        // left to report.
                        break;
                    }
                }
            });
        }
        drop(event_tx);

        // Coordinator: runs on the scope's owning thread so retries can
        // be enqueued while workers are still draining the pool.
        let mut pending = n;
        while pending > 0 {
            let event = event_rx.recv().expect("workers alive while jobs pending");
            attempts += 1;
            metrics::handles().attempts.inc();
            match event {
                Event::Done {
                    index,
                    attempt,
                    elapsed,
                    result,
                } => {
                    pending -= 1;
                    if over_budget(config, elapsed) {
                        metrics::handles().timeouts.inc();
                        verdicts[index] = SeedVerdict::TimedOut;
                    } else {
                        results[index] = Some(result);
                        verdicts[index] = if attempt == 0 {
                            SeedVerdict::Ok
                        } else {
                            SeedVerdict::Retried(attempt)
                        };
                    }
                }
                Event::Panicked {
                    index,
                    attempt,
                    elapsed,
                    message,
                } => {
                    // A seed that blew its budget is a timeout even if
                    // it also panicked on the way out; budget overruns
                    // are not retried.
                    if over_budget(config, elapsed) {
                        pending -= 1;
                        metrics::handles().timeouts.inc();
                        verdicts[index] = SeedVerdict::TimedOut;
                    } else if attempt < config.max_retries {
                        let next = attempt + 1;
                        let seed = seeds[index];
                        metrics::handles().retries.inc();
                        job_tx
                            .send(Job {
                                index,
                                seed,
                                attempt: next,
                                delay: config.backoff(seed, next),
                            })
                            .expect("job queue open");
                    } else {
                        pending -= 1;
                        metrics::handles().panics.inc();
                        verdicts[index] = SeedVerdict::Panicked(message);
                    }
                }
            }
        }
        // All verdicts in: close the queue so idle workers exit.
        drop(job_tx);
    });

    SupervisedOutcome {
        seeds: seeds.to_vec(),
        results,
        verdicts,
        attempts,
    }
}

fn over_budget(config: &SupervisorConfig, elapsed: Duration) -> bool {
    config.seed_timeout.is_some_and(|budget| elapsed > budget)
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn cfg() -> SupervisorConfig {
        SupervisorConfig {
            backoff_base: Duration::from_millis(1),
            ..SupervisorConfig::default()
        }
    }

    #[test]
    fn all_ok_full_coverage() {
        let out = run_supervised(&[10, 20, 30], &cfg(), |s| s * 2);
        assert_eq!(out.results, vec![Some(20), Some(40), Some(60)]);
        assert!(out.verdicts.iter().all(|v| *v == SeedVerdict::Ok));
        assert_eq!(out.coverage(), 1.0);
        assert_eq!(out.attempts, 3);
    }

    #[test]
    fn panic_is_isolated_and_reported() {
        let out = run_supervised(&[1, 2, 3], &cfg(), |s| {
            assert!(s != 2, "seed two explodes");
            s
        });
        assert_eq!(out.results, vec![Some(1), None, Some(3)]);
        match &out.verdicts[1] {
            SeedVerdict::Panicked(msg) => assert!(msg.contains("seed two explodes"), "{msg}"),
            v => panic!("expected panic verdict, got {v:?}"),
        }
        assert!((out.coverage() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn transient_panic_retries_to_success() {
        let tries = AtomicU32::new(0);
        let config = SupervisorConfig {
            max_retries: 2,
            ..cfg()
        };
        let out = run_supervised(&[7], &config, |s| {
            if tries.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("flaky first attempt");
            }
            s
        });
        assert_eq!(out.results, vec![Some(7)]);
        assert_eq!(out.verdicts[0], SeedVerdict::Retried(1));
        assert_eq!(out.attempts, 2);
    }

    #[test]
    fn persistent_panic_exhausts_retries() {
        let config = SupervisorConfig {
            max_retries: 2,
            ..cfg()
        };
        let out = run_supervised(&[7], &config, |_| -> u64 { panic!("always") });
        assert_eq!(out.results, vec![None]);
        assert_eq!(out.verdicts[0], SeedVerdict::Panicked("always".to_string()));
        assert_eq!(out.attempts, 3);
    }

    #[test]
    fn deadline_overrun_discards_result() {
        let config = SupervisorConfig {
            seed_timeout: Some(Duration::from_millis(20)),
            max_retries: 3,
            ..cfg()
        };
        let out = run_supervised(&[5, 6], &config, |s| {
            if s == 6 {
                thread::sleep(Duration::from_millis(120));
            }
            s
        });
        assert_eq!(out.results, vec![Some(5), None]);
        assert_eq!(out.verdicts[1], SeedVerdict::TimedOut);
        // Timeouts are not retried.
        assert_eq!(out.attempts, 2);
    }

    #[test]
    fn backoff_is_deterministic_and_monotone() {
        let config = SupervisorConfig {
            campaign_seed: 99,
            backoff_base: Duration::from_millis(10),
            ..SupervisorConfig::default()
        };
        let a1 = config.backoff(5, 1);
        let a1_again = config.backoff(5, 1);
        assert_eq!(a1, a1_again, "jitter must be reproducible");
        // Steps double: attempt 2's floor (20ms) is above attempt 1's
        // ceiling (20ms) only in expectation, but the floor of each
        // attempt grows strictly.
        assert!(config.backoff(5, 2) >= Duration::from_millis(20));
        assert!(a1 >= Duration::from_millis(10) && a1 < Duration::from_millis(20));
        // Different seeds jitter differently (with overwhelming odds).
        assert_ne!(config.backoff(5, 1), config.backoff(6, 1));
    }

    #[test]
    fn empty_seed_list() {
        let out = run_supervised(&[], &cfg(), |s| s);
        assert!(out.results.is_empty());
        assert_eq!(out.coverage(), 1.0);
    }

    #[test]
    fn builder_validates_at_construction() {
        let ok = SupervisorConfig::builder()
            .max_retries(3)
            .backoff_base(Duration::from_millis(5))
            .seed_timeout(Duration::from_secs(1))
            .campaign_seed(42)
            .build()
            .unwrap();
        assert_eq!(ok.max_retries, 3);
        assert_eq!(ok.seed_timeout, Some(Duration::from_secs(1)));
        assert_eq!(ok.campaign_seed, 42);

        let err = SupervisorConfig::builder()
            .backoff_base(Duration::ZERO)
            .build()
            .unwrap_err();
        assert_eq!(err.field, "backoff_base");

        let err = SupervisorConfig::builder()
            .seed_timeout(Duration::ZERO)
            .build()
            .unwrap_err();
        assert_eq!(err.field, "seed_timeout");
    }

    #[test]
    fn single_worker_pool_runs_everything() {
        let order = std::sync::Mutex::new(Vec::new());
        let config = SupervisorConfig {
            workers: Some(1),
            ..cfg()
        };
        let out = run_supervised(&[3, 1, 4, 1, 5], &config, |s| {
            order.lock().unwrap().push(s);
            s * 10
        });
        assert_eq!(
            out.results,
            vec![Some(30), Some(10), Some(40), Some(10), Some(50)]
        );
        // One worker drains the queue strictly in submission order.
        assert_eq!(*order.lock().unwrap(), vec![3, 1, 4, 1, 5]);
        assert_eq!(out.attempts, 5);
    }

    #[test]
    fn more_workers_than_seeds_is_fine() {
        let config = SupervisorConfig {
            workers: Some(16),
            ..cfg()
        };
        let out = run_supervised(&[1, 2], &config, |s| s + 1);
        assert_eq!(out.results, vec![Some(2), Some(3)]);
        assert!(out.verdicts.iter().all(SeedVerdict::completed));
        assert_eq!(out.coverage(), 1.0);
    }

    #[test]
    fn zero_retry_budget_fails_fast() {
        let tries = AtomicU32::new(0);
        let config = SupervisorConfig {
            max_retries: 0,
            workers: Some(1),
            ..cfg()
        };
        let out = run_supervised(&[9], &config, |_| -> u64 {
            tries.fetch_add(1, Ordering::SeqCst);
            panic!("no second chances")
        });
        // Exactly one attempt: a zero budget must not sneak in a retry.
        assert_eq!(tries.load(Ordering::SeqCst), 1);
        assert_eq!(out.attempts, 1);
        assert_eq!(out.results, vec![None]);
        assert!(matches!(out.verdicts[0], SeedVerdict::Panicked(_)));
    }

    #[test]
    fn coverage_accounts_only_contributing_seeds() {
        let config = SupervisorConfig {
            workers: Some(2),
            ..cfg()
        };
        let out = run_supervised(&[1, 2, 3, 4], &config, |s| {
            assert!(s % 2 == 1, "even seeds fail");
            s
        });
        assert!((out.coverage() - 0.5).abs() < 1e-12);
        assert_eq!(out.completed().count(), 2);
        assert_eq!(out.into_results(), vec![1, 3]);
    }

    #[test]
    fn builder_rejects_zero_workers() {
        let err = SupervisorConfig::builder().workers(0).build().unwrap_err();
        assert_eq!(err.field, "workers");
        let ok = SupervisorConfig::builder().workers(3).build().unwrap();
        assert_eq!(ok.workers, Some(3));
    }

    #[test]
    fn verdict_lookup_by_seed() {
        let out = run_supervised(&[11, 22], &cfg(), |s| s);
        assert_eq!(out.verdict_of(22), Some(&SeedVerdict::Ok));
        assert_eq!(out.verdict_of(33), None);
    }
}
