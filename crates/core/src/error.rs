//! The workspace-level error type.
//!
//! Every subsystem keeps its own precise error enum — `HciError` is
//! still what `Hci::command` returns, because a caller recovering from
//! a command timeout needs that exact variant. What used to be missing
//! was the seam *above* them: eleven unrelated enums meant every
//! cross-crate caller (the CLI first among them) had to invent its own
//! ad-hoc wrapper. [`Error`] is that seam: one `From`-convertible sum
//! type with a stable [`code`](Error::code) string per category (for
//! scripts and log grepping), [`source`](std::error::Error::source)
//! chaining down to the subsystem error, and a single
//! [`exit_code`](Error::exit_code) policy for the binary.
//!
//! [`CliError`](crate::cli::CliError) is a type alias of this enum, so
//! existing `CliError::Usage(..)` constructors and `matches!` patterns
//! keep compiling unchanged.

use btpan_baseband::piconet::PiconetError;
use btpan_collect::trace::TraceError;
use btpan_sim::config::ConfigError;
use btpan_stack::bnep::BnepError;
use btpan_stack::hci::HciError;
use btpan_stack::l2cap::L2capError;
use btpan_stack::pan::PanError;
use btpan_stack::sdp::SdpError;
use btpan_stack::socket::BindError;
use btpan_stack::transport::TransportError;
use btpan_stack::wire::WireError;
use btpan_stream::IngestError;
use std::fmt;

use crate::cli::USAGE;

/// The one error type the workspace surfaces at its boundaries.
///
/// ```
/// use btpan_core::error::Error;
///
/// let err = Error::from(btpan_stack::hci::HciError::CommandTimeout);
/// assert_eq!(err.code(), "hci");
/// assert_eq!(err.exit_code(), 2);
/// assert!(std::error::Error::source(&err).is_some());
/// ```
#[derive(Debug)]
pub enum Error {
    /// Unknown subcommand or flag, or missing value.
    Usage(String),
    /// File I/O failure.
    Io(std::io::Error),
    /// Trace parse failure.
    Trace(TraceError),
    /// Malformed checkpoint file.
    Checkpoint(String),
    /// A config builder rejected a field at construction time.
    Config(ConfigError),
    /// Piconet membership violation.
    Piconet(PiconetError),
    /// HCI command/connection failure.
    Hci(HciError),
    /// L2CAP channel failure.
    L2cap(L2capError),
    /// SDP search failure.
    Sdp(SdpError),
    /// PAN profile connection failure.
    Pan(PanError),
    /// BNEP interface failure.
    Bnep(BnepError),
    /// Socket bind failure (the `T_C`/`T_H` race).
    Bind(BindError),
    /// HCI transport (USB/BCSP) failure.
    Transport(TransportError),
    /// Wire-format decode failure.
    Wire(WireError),
    /// The streaming engine refused a record (already shut down).
    Ingest(IngestError),
}

impl Error {
    /// A stable, machine-readable category string — the contract for
    /// scripts, log grepping and exit-code derivation. Codes never
    /// change once released; new variants add new codes.
    pub fn code(&self) -> &'static str {
        match self {
            Error::Usage(_) => "usage",
            Error::Io(_) => "io",
            Error::Trace(_) => "trace",
            Error::Checkpoint(_) => "checkpoint",
            Error::Config(_) => "config",
            Error::Piconet(_) => "piconet",
            Error::Hci(_) => "hci",
            Error::L2cap(_) => "l2cap",
            Error::Sdp(_) => "sdp",
            Error::Pan(_) => "pan",
            Error::Bnep(_) => "bnep",
            Error::Bind(_) => "bind",
            Error::Transport(_) => "transport",
            Error::Wire(_) => "wire",
            Error::Ingest(_) => "ingest",
        }
    }

    /// The process exit status for this error, derived from
    /// [`code`](Error::code). Every error category currently maps to
    /// `2` (the binary's historical contract: `0` ok, `2` error,
    /// `3` = [`crate::cli::EXIT_QUARANTINE`] for unhealthy-but-
    /// successful runs); this method is where a future per-category
    /// split would live.
    pub fn exit_code(&self) -> i32 {
        match self.code() {
            // One uniform hard-error status today; categories that
            // should exit differently get their own arm here.
            "usage" | "io" | "trace" | "checkpoint" | "config" | "piconet" | "hci" | "l2cap"
            | "sdp" | "pan" | "bnep" | "bind" | "transport" | "wire" | "ingest" => 2,
            _ => 2,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Usage(msg) => write!(f, "usage error: {msg}\n\n{USAGE}"),
            Error::Io(e) => write!(f, "io error: {e}"),
            Error::Trace(e) => write!(f, "trace error: {e}"),
            Error::Checkpoint(e) => write!(f, "checkpoint error: {e}"),
            Error::Config(e) => write!(f, "config error: {e}"),
            Error::Piconet(e) => write!(f, "piconet error: {e}"),
            Error::Hci(e) => write!(f, "hci error: {e}"),
            Error::L2cap(e) => write!(f, "l2cap error: {e}"),
            Error::Sdp(e) => write!(f, "sdp error: {e}"),
            Error::Pan(e) => write!(f, "pan error: {e}"),
            Error::Bnep(e) => write!(f, "bnep error: {e}"),
            Error::Bind(e) => write!(f, "bind error: {e}"),
            Error::Transport(e) => write!(f, "transport error: {e}"),
            Error::Wire(e) => write!(f, "wire error: {e}"),
            Error::Ingest(e) => write!(f, "ingest error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Usage(_) | Error::Checkpoint(_) => None,
            Error::Io(e) => Some(e),
            Error::Trace(e) => Some(e),
            Error::Config(e) => Some(e),
            Error::Piconet(e) => Some(e),
            Error::Hci(e) => Some(e),
            Error::L2cap(e) => Some(e),
            Error::Sdp(e) => Some(e),
            Error::Pan(e) => Some(e),
            Error::Bnep(e) => Some(e),
            Error::Bind(e) => Some(e),
            Error::Transport(e) => Some(e),
            Error::Wire(e) => Some(e),
            Error::Ingest(e) => Some(e),
        }
    }
}

macro_rules! impl_from {
    ($($ty:ty => $variant:ident),* $(,)?) => {
        $(impl From<$ty> for Error {
            fn from(e: $ty) -> Self {
                Error::$variant(e)
            }
        })*
    };
}

impl_from! {
    std::io::Error => Io,
    TraceError => Trace,
    ConfigError => Config,
    PiconetError => Piconet,
    HciError => Hci,
    L2capError => L2cap,
    SdpError => Sdp,
    PanError => Pan,
    BnepError => Bnep,
    BindError => Bind,
    TransportError => Transport,
    WireError => Wire,
    IngestError => Ingest,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn codes_are_stable_and_unique() {
        let errs: Vec<Error> = vec![
            Error::Usage("x".into()),
            Error::Io(std::io::Error::other("x")),
            Error::Trace(TraceError::TruncatedLine { line: 1 }),
            Error::Checkpoint("x".into()),
            Error::Config(ConfigError::new("f", "r")),
            Error::Piconet(PiconetError::Full),
            Error::Hci(HciError::CommandTimeout),
            Error::L2cap(L2capError::ConnectTimeout),
            Error::Sdp(SdpError::ConnectionRefused),
            Error::Pan(PanError::AlreadyConnected),
            Error::Bnep(BnepError::Occupied),
            Error::Bind(BindError::InterfaceMissing),
            Error::Transport(TransportError::UsbAddressRejected),
            Error::Wire(WireError::UnknownType(9)),
            Error::Ingest(IngestError),
        ];
        let codes: Vec<&str> = errs.iter().map(Error::code).collect();
        assert_eq!(
            codes,
            vec![
                "usage",
                "io",
                "trace",
                "checkpoint",
                "config",
                "piconet",
                "hci",
                "l2cap",
                "sdp",
                "pan",
                "bnep",
                "bind",
                "transport",
                "wire",
                "ingest"
            ]
        );
        let mut unique = codes.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), codes.len(), "codes must be unique");
        for e in &errs {
            assert_eq!(e.exit_code(), 2);
        }
    }

    #[test]
    fn display_preserves_cli_error_formats() {
        let err = Error::Io(std::io::Error::other("disk gone"));
        assert_eq!(err.to_string(), "io error: disk gone");
        let err = Error::Checkpoint("bad header".into());
        assert_eq!(err.to_string(), "checkpoint error: bad header");
        let err = Error::Usage("no such flag".into());
        assert!(err.to_string().starts_with("usage error: no such flag\n\n"));
        assert!(err.to_string().contains("USAGE"));
    }

    #[test]
    fn source_chains_to_the_subsystem_error() {
        let err = Error::from(SdpError::ServiceNotReturned);
        let src = err.source().expect("wrapped errors chain");
        assert_eq!(src.to_string(), SdpError::ServiceNotReturned.to_string());
        assert!(Error::Usage("x".into()).source().is_none());
    }

    #[test]
    fn from_impls_pick_the_right_variant() {
        assert!(matches!(
            Error::from(HciError::NoFreeHandles),
            Error::Hci(HciError::NoFreeHandles)
        ));
        assert!(matches!(
            Error::from(ConfigError::new("shards", "zero")),
            Error::Config(_)
        ));
        assert!(matches!(
            Error::from(std::io::Error::other("x")),
            Error::Io(_)
        ));
    }
}
