//! # btpan-core
//!
//! The top of the workspace: the simulated twin of the paper's two
//! Bluetooth-PAN testbeds and the experiment campaigns that reproduce
//! every table and figure.
//!
//! * [`machine`] — the seven machines of paper Table 1 (`Giallo` the
//!   NAP, `Verde`, `Miseno`, `Azzurro`, `Win`, the iPAQ H3870 and the
//!   Zaurus SL-5600) with their stacks, transports, quirks and antenna
//!   distances;
//! * [`topology`] — data-driven testbeds: serde-loadable
//!   [`topology::Topology`] specs describing N piconets (each 1 NAP +
//!   PANUs with per-machine profiles and per-link overrides) plus
//!   scatternet bridge nodes, with paper presets and validation;
//! * [`testbed`] — assembles a 1-NAP + 6-PANU piconet per workload;
//! * [`campaign`] — the 24/7 campaign simulator: runs `BlueTest`
//!   connection plans on every PANU, consults the baseband/latent/stress
//!   models and the fault injector, writes Test/System logs, ships them
//!   through LogAnalyzers into a [`btpan_collect::Repository`], applies
//!   the active recovery policy (and masking), and keeps per-node
//!   failure timelines for TTF/TTR analysis;
//! * [`experiment`] — one entry point per paper artifact (Table 2–4,
//!   Fig. 2–4, section-6 findings), each returning both the measured
//!   values and the paper references;
//! * [`runner`] — the strict multi-seed parallel campaign runner;
//! * [`supervisor`] — its fault-tolerant core: panic-isolated workers,
//!   bounded retry with deterministic backoff, per-seed wall-clock
//!   budgets, and coverage accounting for partial campaigns;
//! * [`cli`] — the `btpan` command-line tool (campaign / analyze /
//!   table4 / markov).

pub mod campaign;
pub mod cli;
pub mod error;
pub mod experiment;
pub mod machine;
pub mod runner;
pub mod supervisor;
pub mod testbed;
pub mod topology;

pub use campaign::{Campaign, CampaignConfig, CampaignConfigBuilder, CampaignResult};
pub use error::Error;
pub use machine::{node_name, paper_machines, MachineRole};
pub use runner::run_seeds;
pub use supervisor::{
    run_supervised, SeedVerdict, SupervisedOutcome, SupervisorConfig, SupervisorConfigBuilder,
};
pub use testbed::Testbed;
pub use topology::{BridgeSpec, LinkSpec, MachineSpec, PiconetSpec, Topology};

/// Convenient re-exports of the whole stack for downstream users.
pub mod prelude {
    pub use crate::campaign::{Campaign, CampaignConfig, CampaignResult};
    pub use crate::machine::paper_machines;
    pub use crate::testbed::Testbed;
    pub use crate::topology::Topology;
    pub use btpan_analysis as analysis;
    pub use btpan_baseband as baseband;
    pub use btpan_collect as collect;
    pub use btpan_faults as faults;
    pub use btpan_recovery as recovery;
    pub use btpan_recovery::RecoveryPolicy;
    pub use btpan_sim as sim;
    pub use btpan_sim::prelude::*;
    pub use btpan_stack as stack;
    pub use btpan_workload as workload;
    pub use btpan_workload::WorkloadKind;
}
