//! Multi-seed parallel campaign runner.
//!
//! Statistical significance in the paper came from 18 months of wall
//! time; ours comes from running many shorter, independently seeded
//! campaigns in parallel and pooling their results.

use crate::campaign::{Campaign, CampaignConfig, CampaignResult};
use crossbeam::channel;
use std::thread;

/// Runs one campaign per seed in parallel threads, returning the results
/// in seed order.
///
/// `make_config` builds the configuration for each seed (it must embed
/// the seed itself).
///
/// # Panics
///
/// Panics if a worker thread panics.
pub fn run_seeds<F>(seeds: &[u64], make_config: F) -> Vec<CampaignResult>
where
    F: Fn(u64) -> CampaignConfig + Send + Sync,
{
    let workers = thread::available_parallelism().map_or(4, |n| n.get()).min(seeds.len().max(1));
    let (job_tx, job_rx) = channel::unbounded::<(usize, u64)>();
    let (res_tx, res_rx) = channel::unbounded::<(usize, CampaignResult)>();
    for (i, &seed) in seeds.iter().enumerate() {
        job_tx.send((i, seed)).expect("queue open");
    }
    drop(job_tx);

    thread::scope(|scope| {
        for _ in 0..workers {
            let job_rx = job_rx.clone();
            let res_tx = res_tx.clone();
            let make_config = &make_config;
            scope.spawn(move || {
                while let Ok((i, seed)) = job_rx.recv() {
                    let result = Campaign::new(make_config(seed)).run();
                    res_tx.send((i, result)).expect("result channel open");
                }
            });
        }
        drop(res_tx);
    });

    let mut results: Vec<(usize, CampaignResult)> = res_rx.iter().collect();
    results.sort_by_key(|(i, _)| *i);
    results.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use btpan_recovery::RecoveryPolicy;
    use btpan_sim::time::SimDuration;
    use btpan_workload::WorkloadKind;

    #[test]
    fn parallel_matches_sequential() {
        let mk = |seed| {
            CampaignConfig::paper(seed, WorkloadKind::Random, RecoveryPolicy::Siras)
                .duration(SimDuration::from_secs(1_800))
        };
        let parallel = run_seeds(&[1, 2, 3], mk);
        for (i, seed) in [1u64, 2, 3].iter().enumerate() {
            let solo = Campaign::new(mk(*seed)).run();
            assert_eq!(parallel[i].failure_count, solo.failure_count, "seed {seed}");
            assert_eq!(parallel[i].cycles_run, solo.cycles_run);
        }
    }

    #[test]
    fn empty_seed_list_ok() {
        let results = run_seeds(&[], |s| {
            CampaignConfig::paper(s, WorkloadKind::Random, RecoveryPolicy::Siras)
        });
        assert!(results.is_empty());
    }
}
