//! Multi-seed parallel campaign runner.
//!
//! Statistical significance in the paper came from 18 months of wall
//! time; ours comes from running many shorter, independently seeded
//! campaigns in parallel and pooling their results.
//!
//! [`run_seeds`] is the historical strict entry point: every seed must
//! complete, and a worker panic aborts the whole run. It is now a thin
//! wrapper over [`crate::supervisor::run_supervised`] with a
//! zero-tolerance [`SupervisorConfig`] — no retries, no deadline —
//! so its semantics are unchanged while the fault-tolerant path shares
//! the same pool. Callers that want panic isolation, retry, or per-seed
//! budgets use the supervisor directly.

use crate::campaign::{Campaign, CampaignConfig, CampaignResult};
use crate::supervisor::{run_supervised, SeedVerdict, SupervisorConfig};

/// Runs one campaign per seed in parallel threads, returning the results
/// in seed order.
///
/// `make_config` builds the configuration for each seed (it must embed
/// the seed itself).
///
/// # Panics
///
/// Panics if a worker thread panics.
pub fn run_seeds<F>(seeds: &[u64], make_config: F) -> Vec<CampaignResult>
where
    F: Fn(u64) -> CampaignConfig + Send + Sync,
{
    let outcome = run_supervised(seeds, &SupervisorConfig::default(), |seed| {
        Campaign::new(make_config(seed)).run()
    });
    if let Some((i, SeedVerdict::Panicked(msg))) = outcome
        .verdicts
        .iter()
        .enumerate()
        .find(|(_, v)| matches!(v, SeedVerdict::Panicked(_)))
        .map(|(i, v)| (i, v.clone()))
    {
        panic!("campaign worker for seed {} panicked: {msg}", seeds[i]);
    }
    outcome.into_results()
}

#[cfg(test)]
mod tests {
    use super::*;
    use btpan_recovery::RecoveryPolicy;
    use btpan_sim::time::SimDuration;
    use btpan_workload::WorkloadKind;

    #[test]
    fn parallel_matches_sequential() {
        let mk = |seed| {
            CampaignConfig::paper(seed, WorkloadKind::Random, RecoveryPolicy::Siras)
                .duration(SimDuration::from_secs(1_800))
        };
        let parallel = run_seeds(&[1, 2, 3], mk);
        for (i, seed) in [1u64, 2, 3].iter().enumerate() {
            let solo = Campaign::new(mk(*seed)).run();
            assert_eq!(parallel[i].failure_count, solo.failure_count, "seed {seed}");
            assert_eq!(parallel[i].cycles_run, solo.cycles_run);
        }
    }

    #[test]
    fn empty_seed_list_ok() {
        let results = run_seeds(&[], |s| {
            CampaignConfig::paper(s, WorkloadKind::Random, RecoveryPolicy::Siras)
        });
        assert!(results.is_empty());
    }

    #[test]
    #[should_panic(expected = "campaign worker for seed")]
    fn strict_runner_propagates_panics() {
        // An impossible duration setup is simulated by panicking inside
        // make_config's closure via the campaign body: easiest honest
        // trigger is a config closure that panics for one seed.
        let _ = run_seeds(&[1], |_| panic!("boom in config"));
    }
}
