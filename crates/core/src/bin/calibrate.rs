//! Internal calibration diagnostic: prints failure mix, rates, MTTF.
use btpan_core::campaign::{Campaign, CampaignConfig};
use btpan_faults::UserFailure;
use btpan_recovery::RecoveryPolicy;
use btpan_sim::time::SimDuration;
use btpan_workload::WorkloadKind;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let hours: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(12);
    for wl in [WorkloadKind::Random, WorkloadKind::Realistic] {
        for policy in [
            RecoveryPolicy::Siras,
            RecoveryPolicy::RebootOnly,
            RecoveryPolicy::SirasAndMasking,
        ] {
            let r = Campaign::new(
                CampaignConfig::paper(42, wl, policy)
                    .duration(SimDuration::from_secs(hours * 3600)),
            )
            .run();
            let series = r.piconet_series();
            let mttf = series.ttf_stats().mean().unwrap_or(0.0);
            let mttr = series.ttr_stats().mean().unwrap_or(0.0);
            let tests = r.repository.tests();
            println!(
                "== {wl:?} {policy:?}: cycles={} fails={} masked={} covered={} MTTF={mttf:.0}s MTTR={mttr:.1}s cyc/fail={:.1} mean_cycle={:.1}s",
                r.cycles_run,
                r.failure_count,
                r.masked_count,
                r.covered_count,
                r.cycles_run as f64 / r.failure_count.max(1) as f64,
                (hours * 3600 * 6) as f64 / r.cycles_run.max(1) as f64,
            );
            let mut counts = [0u64; 10];
            for t in &tests {
                counts[t.failure.index()] += 1;
            }
            for f in UserFailure::ALL {
                let c = counts[f.index()];
                if c > 0 {
                    println!(
                        "   {f}: {c} ({:.1}%)",
                        100.0 * c as f64 / tests.len() as f64
                    );
                }
            }
        }
    }
}
