//! The testbed machines of paper Table 1 / Figure 1.
//!
//! Both testbeds share the same seven-machine configuration: the master
//! `Giallo` acts as NAP; the six PANUs range from commodity Linux PCs
//! over USB dongles, through the Windows XP machine on the Broadcom
//! stack (the native XP stack offers no PAN API), to two Linux PDAs on
//! BCSP. Antenna positions are fixed at 0.5 m, 5 m and 7 m from the NAP.

use btpan_faults::HostQuirks;
use btpan_stack::host::{HostConfig, StackVariant};
use btpan_stack::transport::TransportKind;

/// Role of a machine in the PAN.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum MachineRole {
    /// Network Access Point (piconet master).
    Nap,
    /// PAN User (slave).
    Panu,
}

/// One machine with its role and campaign capabilities.
#[derive(Debug, Clone)]
pub struct Machine {
    /// Stack/transport/quirk configuration.
    pub config: HostConfig,
    /// NAP or PANU.
    pub role: MachineRole,
    /// Capability flag: this host takes part in the Fig. 3b fixed-size
    /// workload variant (a declared property of the machine, not a
    /// host-name comparison).
    pub fig3b_target: bool,
}

/// Node id of the NAP (`Giallo`).
pub const NAP_NODE_ID: u64 = 0;

/// Builds the paper's seven machines.
///
/// | Host   | OS / stack              | Transport | Distance | Quirks |
/// |--------|-------------------------|-----------|----------|--------|
/// | Giallo | Mandrake / BlueZ 2.10   | USB       | —  (NAP) | —      |
/// | Verde  | Mandrake / BlueZ 2.10   | USB       | 0.5 m    | —      |
/// | Miseno | Debian / BlueZ 2.10     | USB       | 5 m      | —      |
/// | Azzurro| Fedora / BlueZ 2.10     | USB       | 7 m      | HAL bug (bind) |
/// | Win    | XP SP2 / Broadcom       | USB       | 0.5 m    | bind-prone |
/// | Ipaq   | Familiar / BlueZ 2.10   | BCSP      | 5 m      | PDA    |
/// | Zaurus | OpenZaurus / BlueZ 2.10 | BCSP      | 7 m      | PDA    |
pub fn paper_machines() -> Vec<Machine> {
    let mk = |name: &str,
              node_id: u64,
              stack: StackVariant,
              transport: TransportKind,
              quirks: HostQuirks,
              distance_m: f64,
              role: MachineRole| Machine {
        config: HostConfig {
            name: name.to_string(),
            node_id,
            stack,
            transport,
            quirks,
            distance_m,
        },
        role,
        fig3b_target: false,
    };
    let fig3b = |mut m: Machine| {
        m.fig3b_target = true;
        m
    };
    vec![
        mk(
            "Giallo",
            NAP_NODE_ID,
            StackVariant::BlueZ,
            TransportKind::Usb,
            HostQuirks::linux_pc(),
            0.0,
            MachineRole::Nap,
        ),
        fig3b(mk(
            "Verde",
            1,
            StackVariant::BlueZ,
            TransportKind::Usb,
            HostQuirks::linux_pc(),
            0.5,
            MachineRole::Panu,
        )),
        mk(
            "Miseno",
            2,
            StackVariant::BlueZ,
            TransportKind::Usb,
            HostQuirks::linux_pc(),
            5.0,
            MachineRole::Panu,
        ),
        mk(
            "Azzurro",
            3,
            StackVariant::BlueZ,
            TransportKind::Usb,
            HostQuirks::fedora_hal_bug(),
            7.0,
            MachineRole::Panu,
        ),
        fig3b(mk(
            "Win",
            4,
            StackVariant::Broadcom,
            TransportKind::Usb,
            HostQuirks::windows_broadcom(),
            0.5,
            MachineRole::Panu,
        )),
        mk(
            "Ipaq",
            5,
            StackVariant::BlueZ,
            TransportKind::Bcsp,
            HostQuirks::pda(),
            5.0,
            MachineRole::Panu,
        ),
        mk(
            "Zaurus",
            6,
            StackVariant::BlueZ,
            TransportKind::Bcsp,
            HostQuirks::pda(),
            7.0,
            MachineRole::Panu,
        ),
    ]
}

/// Resolves a node id to its paper host name — the single source of
/// truth for node-id → host-name across experiments, plots and the CLI.
/// Covers both paper testbeds (A: ids 0–6, B: ids 100–106); any other
/// id gets the `node<N>` fallback.
pub fn node_name(node: u64) -> String {
    use std::sync::OnceLock;
    static NAMES: OnceLock<Vec<(u64, String)>> = OnceLock::new();
    let names = NAMES.get_or_init(|| {
        crate::topology::Topology::paper_both()
            .piconets
            .iter()
            .flat_map(|p| p.machines.iter())
            .map(|m| (m.node_id, m.name.clone()))
            .collect()
    });
    names
        .iter()
        .find(|(id, _)| *id == node)
        .map(|(_, name)| name.clone())
        .unwrap_or_else(|| format!("node{node}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seven_machines_one_nap() {
        let machines = paper_machines();
        assert_eq!(machines.len(), 7);
        let naps: Vec<_> = machines
            .iter()
            .filter(|m| m.role == MachineRole::Nap)
            .collect();
        assert_eq!(naps.len(), 1);
        assert_eq!(naps[0].config.name, "Giallo");
        assert_eq!(naps[0].config.node_id, NAP_NODE_ID);
    }

    #[test]
    fn quirk_assignment_matches_fig4() {
        let machines = paper_machines();
        let by_name = |n: &str| {
            machines
                .iter()
                .find(|m| m.config.name == n)
                .unwrap_or_else(|| panic!("missing {n}"))
        };
        assert!(by_name("Azzurro").config.quirks.bind_prone);
        assert!(by_name("Win").config.quirks.bind_prone);
        assert!(!by_name("Verde").config.quirks.bind_prone);
        assert!(by_name("Ipaq").config.quirks.uses_bcsp);
        assert!(by_name("Zaurus").config.quirks.uses_bcsp);
        assert!(!by_name("Miseno").config.quirks.uses_bcsp);
    }

    #[test]
    fn distances_cover_the_three_positions() {
        let machines = paper_machines();
        let mut distances: Vec<f64> = machines
            .iter()
            .filter(|m| m.role == MachineRole::Panu)
            .map(|m| m.config.distance_m)
            .collect();
        distances.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(distances, vec![0.5, 0.5, 5.0, 5.0, 7.0, 7.0]);
    }

    #[test]
    fn node_ids_unique() {
        let machines = paper_machines();
        let mut ids: Vec<u64> = machines.iter().map(|m| m.config.node_id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 7);
    }

    #[test]
    fn fig3b_capability_marks_verde_and_win() {
        let targets: Vec<String> = paper_machines()
            .iter()
            .filter(|m| m.fig3b_target)
            .map(|m| m.config.name.clone())
            .collect();
        assert_eq!(targets, ["Verde", "Win"]);
    }

    #[test]
    fn node_name_covers_both_testbeds() {
        assert_eq!(node_name(NAP_NODE_ID), "Giallo");
        assert_eq!(node_name(4), "Win");
        assert_eq!(node_name(100), "Giallo");
        assert_eq!(node_name(106), "Zaurus");
        assert_eq!(node_name(77), "node77");
    }

    #[test]
    fn windows_runs_broadcom() {
        let machines = paper_machines();
        let win = machines.iter().find(|m| m.config.name == "Win").unwrap();
        assert_eq!(win.config.stack, StackVariant::Broadcom);
        assert_eq!(win.config.transport, TransportKind::Usb);
    }
}
