//! Data-driven testbed topologies: piconets, machines, and bridges.
//!
//! The paper deployed **two** concurrent 7-machine testbeds; fleet-scale
//! campaigns need arbitrarily many. A [`Topology`] describes N piconets
//! — each with one NAP, its PANUs, per-machine profiles (stack,
//! transport, quirks, antenna distance) and optional per-link channel
//! overrides — plus **bridge** nodes that time-share several piconets
//! (a scatternet). The struct is serde-loadable (`--topology file.json`)
//! and validated with the workspace's [`ConfigError`] convention, so a
//! bad spec fails at construction instead of panicking mid-campaign.
//!
//! Determinism contract: every piconet draws from its own RNG root
//! (`campaign seed ⊕ seed_salt`) and every machine names its RNG stream
//! via `stream_key` (defaulting to its node id). The paper presets pick
//! salts and keys so that the two-testbed [`Topology::paper_both`]
//! campaign reproduces the single-testbed runs bit for bit, per testbed.

use crate::machine::{paper_machines, Machine, MachineRole};
use btpan_baseband::piconet::{Scatternet, MAX_ACTIVE_SLAVES};
use btpan_faults::HostQuirks;
use btpan_sim::config::ConfigError;
use btpan_stack::host::{HostConfig, StackVariant};
use btpan_stack::transport::TransportKind;
use btpan_workload::WorkloadKind;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Per-link channel-model override for one machine's ACL link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Multiplier on the calibrated per-payload drop probability
    /// (attenuation, interference, a flaky antenna). Must be finite and
    /// positive; `1.0` is the calibrated baseline.
    pub drop_scale: f64,
}

/// One machine of a piconet: its identity, role and fault profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineSpec {
    /// Host name (display only; names may repeat across piconets, the
    /// paper's two testbeds reused the same seven hosts).
    pub name: String,
    /// Globally unique node id across the whole topology.
    pub node_id: u64,
    /// NAP (master) or PANU (slave).
    pub role: MachineRole,
    /// Protocol stack implementation.
    pub stack: StackVariant,
    /// Host ↔ controller transport.
    pub transport: TransportKind,
    /// Fault-profile quirks (profile-driven, replacing name matching).
    pub quirks: HostQuirks,
    /// Antenna distance from the NAP, metres.
    pub distance_m: f64,
    /// RNG stream key within the piconet's root (defaults to the node
    /// id). The paper-B preset reuses testbed-A keys so both testbeds
    /// replay identical per-node streams.
    pub stream_key: Option<u64>,
    /// Capability flag: this host takes part in the paper's special
    /// Fig. 3b fixed-size workload run (Verde and Win in the paper).
    pub fig3b_target: Option<bool>,
    /// Per-link channel override (`None` = calibrated baseline).
    pub link: Option<LinkSpec>,
}

impl MachineSpec {
    /// The RNG stream key (explicit, or the node id).
    pub fn stream_key(&self) -> u64 {
        self.stream_key.unwrap_or(self.node_id)
    }

    /// The link drop-probability multiplier (default `1.0`).
    pub fn drop_scale(&self) -> f64 {
        self.link.map_or(1.0, |l| l.drop_scale)
    }

    /// Whether this host runs the Fig. 3b variant workload.
    pub fn is_fig3b_target(&self) -> bool {
        self.fig3b_target.unwrap_or(false)
    }

    /// Lowers the spec into the stack-level [`Machine`].
    pub fn to_machine(&self) -> Machine {
        Machine {
            config: HostConfig {
                name: self.name.clone(),
                node_id: self.node_id,
                stack: self.stack,
                transport: self.transport,
                quirks: self.quirks,
                distance_m: self.distance_m,
            },
            role: self.role,
            fig3b_target: self.is_fig3b_target(),
        }
    }

    /// Lifts a stack-level [`Machine`] into a spec.
    pub fn from_machine(m: &Machine) -> Self {
        MachineSpec {
            name: m.config.name.clone(),
            node_id: m.config.node_id,
            role: m.role,
            stack: m.config.stack,
            transport: m.config.transport,
            quirks: m.config.quirks,
            distance_m: m.config.distance_m,
            stream_key: None,
            fig3b_target: m.fig3b_target.then_some(true),
            link: None,
        }
    }
}

/// One piconet: a NAP, its PANUs, the workload they run, and the salt
/// of its RNG root.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PiconetSpec {
    /// Topology-unique piconet id (also the shard-routing group).
    pub id: u64,
    /// Display label (`testbed-a`, `alpha`, ...).
    pub label: String,
    /// The workload every PANU of this piconet runs.
    pub workload: WorkloadKind,
    /// XORed into the campaign seed to derive this piconet's RNG root.
    /// Salt 0 replays the legacy single-testbed streams.
    pub seed_salt: u64,
    /// The machines, exactly one of them with the NAP role.
    pub machines: Vec<MachineSpec>,
}

impl PiconetSpec {
    /// The NAP machine.
    ///
    /// # Panics
    ///
    /// Panics when the spec has no NAP (ruled out by
    /// [`Topology::validate`]).
    pub fn master(&self) -> &MachineSpec {
        self.machines
            .iter()
            .find(|m| m.role == MachineRole::Nap)
            .expect("validated piconet has a NAP")
    }

    /// The NAP's node id.
    pub fn master_id(&self) -> u64 {
        self.master().node_id
    }

    /// The PANU machines, in declaration order.
    pub fn panus(&self) -> impl Iterator<Item = &MachineSpec> {
        self.machines.iter().filter(|m| m.role == MachineRole::Panu)
    }

    /// All member node ids (NAP included).
    pub fn member_ids(&self) -> Vec<u64> {
        self.machines.iter().map(|m| m.node_id).collect()
    }
}

/// A bridge: a PANU that additionally joins other piconets, time-sharing
/// their hop sequences.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BridgeSpec {
    /// The bridging PANU's node id (must exist in some piconet).
    pub node_id: u64,
    /// Piconet **ids** the bridge additionally joins (not its home).
    pub joins: Vec<u64>,
}

/// A complete campaign topology: piconets plus scatternet bridges.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    /// Display name (echoed in CLI JSON envelopes).
    pub name: String,
    /// The piconets, in campaign execution order.
    pub piconets: Vec<PiconetSpec>,
    /// Bridge nodes (`[]` for independent piconets).
    pub bridges: Vec<BridgeSpec>,
}

impl Topology {
    /// The paper's single 7-machine testbed for `workload` — the legacy
    /// default every existing campaign ran on (node ids 0–6, salt 0).
    pub fn paper(workload: WorkloadKind) -> Self {
        let label = match workload {
            WorkloadKind::Random => "testbed-a",
            WorkloadKind::Realistic => "testbed-b",
        };
        Topology {
            name: format!("paper-{label}"),
            piconets: vec![PiconetSpec {
                id: 0,
                label: label.to_string(),
                workload,
                seed_salt: 0,
                machines: paper_machines()
                    .iter()
                    .map(MachineSpec::from_machine)
                    .collect(),
            }],
            bridges: Vec::new(),
        }
    }

    /// Testbed A alone: the Random-WL paper piconet.
    pub fn paper_a() -> Self {
        Self::paper(WorkloadKind::Random)
    }

    /// Testbed B alone: the Realistic-WL paper piconet, renumbered into
    /// the 100+ node-id namespace (so it can coexist with testbed A)
    /// but replaying testbed A's RNG stream keys — exactly the streams
    /// the legacy single-testbed Realistic campaign drew.
    pub fn paper_b() -> Self {
        let mut base = Self::paper(WorkloadKind::Realistic);
        let pico = &mut base.piconets[0];
        pico.id = 1;
        for m in &mut pico.machines {
            m.stream_key = Some(m.node_id);
            m.node_id += 100;
        }
        Topology {
            name: "paper-testbed-b".to_string(),
            piconets: base.piconets,
            bridges: Vec::new(),
        }
    }

    /// The paper's actual deployment: both testbeds running
    /// concurrently in one campaign. Per testbed, this reproduces the
    /// single-testbed results bit for bit at equal seed.
    pub fn paper_both() -> Self {
        let a = Self::paper(WorkloadKind::Random);
        let b = Self::paper_b();
        Topology {
            name: "paper-both".to_string(),
            piconets: a.piconets.into_iter().chain(b.piconets).collect(),
            bridges: Vec::new(),
        }
    }

    /// A 3-piconet scatternet: three small PANs, one bridge PANU from
    /// the first piconet time-sharing all three, and one deliberately
    /// degraded link (drop-scale override).
    pub fn scatternet() -> Self {
        let mk = |name: &str,
                  node_id: u64,
                  role: MachineRole,
                  quirks: HostQuirks,
                  transport: TransportKind,
                  distance_m: f64| MachineSpec {
            name: name.to_string(),
            node_id,
            role,
            stack: StackVariant::BlueZ,
            transport,
            quirks,
            distance_m,
            stream_key: None,
            fig3b_target: None,
            link: None,
        };
        let mut degraded = mk(
            "Edge-A2",
            202,
            MachineRole::Panu,
            HostQuirks::fedora_hal_bug(),
            TransportKind::Usb,
            7.0,
        );
        degraded.link = Some(LinkSpec { drop_scale: 2.0 });
        Topology {
            name: "scatternet-3".to_string(),
            piconets: vec![
                PiconetSpec {
                    id: 0,
                    label: "alpha".to_string(),
                    workload: WorkloadKind::Random,
                    seed_salt: 1,
                    machines: vec![
                        mk(
                            "Hub-A",
                            200,
                            MachineRole::Nap,
                            HostQuirks::linux_pc(),
                            TransportKind::Usb,
                            0.0,
                        ),
                        mk(
                            "Relay",
                            201,
                            MachineRole::Panu,
                            HostQuirks::linux_pc(),
                            TransportKind::Usb,
                            5.0,
                        ),
                        degraded,
                    ],
                },
                PiconetSpec {
                    id: 1,
                    label: "beta".to_string(),
                    workload: WorkloadKind::Realistic,
                    seed_salt: 2,
                    machines: vec![
                        mk(
                            "Hub-B",
                            210,
                            MachineRole::Nap,
                            HostQuirks::linux_pc(),
                            TransportKind::Usb,
                            0.0,
                        ),
                        mk(
                            "Edge-B1",
                            211,
                            MachineRole::Panu,
                            HostQuirks::windows_broadcom(),
                            TransportKind::Usb,
                            0.5,
                        ),
                        mk(
                            "Edge-B2",
                            212,
                            MachineRole::Panu,
                            HostQuirks::pda(),
                            TransportKind::Bcsp,
                            5.0,
                        ),
                    ],
                },
                PiconetSpec {
                    id: 2,
                    label: "gamma".to_string(),
                    workload: WorkloadKind::Random,
                    seed_salt: 3,
                    machines: vec![
                        mk(
                            "Hub-C",
                            220,
                            MachineRole::Nap,
                            HostQuirks::linux_pc(),
                            TransportKind::Usb,
                            0.0,
                        ),
                        mk(
                            "Edge-C1",
                            221,
                            MachineRole::Panu,
                            HostQuirks::pda(),
                            TransportKind::Bcsp,
                            5.0,
                        ),
                    ],
                },
            ],
            bridges: vec![BridgeSpec {
                node_id: 201,
                joins: vec![1, 2],
            }],
        }
    }

    /// Resolves a CLI preset name.
    pub fn preset(name: &str) -> Option<Topology> {
        match name {
            "paper" | "paper-a" => Some(Self::paper_a()),
            "paper-b" => Some(Self::paper_b()),
            "paper-both" => Some(Self::paper_both()),
            "scatternet" => Some(Self::scatternet()),
            _ => None,
        }
    }

    /// Parses and validates a topology from JSON.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] on malformed JSON or an invalid topology.
    pub fn from_json(json: &str) -> Result<Topology, ConfigError> {
        let topo: Topology = serde_json::from_str(json)
            .map_err(|e| ConfigError::new("topology", format!("malformed JSON: {e}")))?;
        topo.validate()?;
        Ok(topo)
    }

    /// Serializes the topology to pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("topology serializes")
    }

    /// Validates the whole spec: piconet structure, the 7-active-member
    /// park-state limit (bridge joins included), global node-id
    /// uniqueness, and bridge references.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] naming the offending field.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.piconets.is_empty() {
            return Err(ConfigError::new(
                "topology.piconets",
                "a topology needs at least one piconet",
            ));
        }
        let mut pic_ids: BTreeMap<u64, ()> = BTreeMap::new();
        let mut node_ids: BTreeMap<u64, ()> = BTreeMap::new();
        for p in &self.piconets {
            if pic_ids.insert(p.id, ()).is_some() {
                return Err(ConfigError::new(
                    "topology.piconets",
                    format!("duplicate piconet id {}", p.id),
                ));
            }
            let naps = p
                .machines
                .iter()
                .filter(|m| m.role == MachineRole::Nap)
                .count();
            if naps != 1 {
                return Err(ConfigError::new(
                    "topology.piconets",
                    format!("piconet {} needs exactly one NAP, found {naps}", p.id),
                ));
            }
            let panus = p.machines.len() - 1;
            if panus == 0 {
                return Err(ConfigError::new(
                    "topology.piconets",
                    format!("piconet {} has zero PANUs", p.id),
                ));
            }
            for m in &p.machines {
                if node_ids.insert(m.node_id, ()).is_some() {
                    return Err(ConfigError::new(
                        "topology.machines",
                        format!("duplicate node id {} (ids are global)", m.node_id),
                    ));
                }
                if !m.distance_m.is_finite() || m.distance_m < 0.0 {
                    return Err(ConfigError::new(
                        "topology.machines",
                        format!("machine {} distance_m must be finite and >= 0", m.node_id),
                    ));
                }
                let scale = m.drop_scale();
                if !scale.is_finite() || scale <= 0.0 {
                    return Err(ConfigError::new(
                        "topology.machines",
                        format!(
                            "machine {} link.drop_scale must be finite and > 0",
                            m.node_id
                        ),
                    ));
                }
            }
        }
        let mut bridged: BTreeMap<u64, ()> = BTreeMap::new();
        for b in &self.bridges {
            if bridged.insert(b.node_id, ()).is_some() {
                return Err(ConfigError::new(
                    "topology.bridges",
                    format!("node {} listed as a bridge twice", b.node_id),
                ));
            }
            let home = self
                .piconets
                .iter()
                .find(|p| p.panus().any(|m| m.node_id == b.node_id));
            let Some(home) = home else {
                return Err(ConfigError::new(
                    "topology.bridges",
                    format!("bridge node {} is not a PANU of any piconet", b.node_id),
                ));
            };
            if b.joins.is_empty() {
                return Err(ConfigError::new(
                    "topology.bridges",
                    format!("bridge node {} joins no piconet", b.node_id),
                ));
            }
            let mut seen: BTreeMap<u64, ()> = BTreeMap::new();
            for j in &b.joins {
                if seen.insert(*j, ()).is_some() {
                    return Err(ConfigError::new(
                        "topology.bridges",
                        format!("bridge node {} joins piconet {j} twice", b.node_id),
                    ));
                }
                if *j == home.id {
                    return Err(ConfigError::new(
                        "topology.bridges",
                        format!("bridge node {} joins its home piconet {j}", b.node_id),
                    ));
                }
                if !self.piconets.iter().any(|p| p.id == *j) {
                    return Err(ConfigError::new(
                        "topology.bridges",
                        format!("bridge node {} references missing piconet {j}", b.node_id),
                    ));
                }
            }
        }
        // Park-state limit: PANUs plus incoming bridges per piconet.
        for p in &self.piconets {
            let members = p.panus().count()
                + self
                    .bridges
                    .iter()
                    .filter(|b| b.joins.contains(&p.id))
                    .count();
            if members > MAX_ACTIVE_SLAVES {
                return Err(ConfigError::new(
                    "topology.piconets",
                    format!(
                        "piconet {} has {members} active members; a piconet holds at most {MAX_ACTIVE_SLAVES}",
                        p.id
                    ),
                ));
            }
        }
        Ok(())
    }

    /// The piconet with the given id.
    pub fn piconet_by_id(&self, id: u64) -> Option<&PiconetSpec> {
        self.piconets.iter().find(|p| p.id == id)
    }

    /// The display name of `node`, if it exists in this topology.
    pub fn node_name(&self, node: u64) -> Option<&str> {
        self.piconets
            .iter()
            .flat_map(|p| p.machines.iter())
            .find(|m| m.node_id == node)
            .map(|m| m.name.as_str())
    }

    /// Index of `node`'s **home** piconet (bridges count where they are
    /// a declared machine, not where they join).
    pub fn home_piconet_of(&self, node: u64) -> Option<usize> {
        self.piconets
            .iter()
            .position(|p| p.machines.iter().any(|m| m.node_id == node))
    }

    /// Indices of the non-home piconets `node` bridges into.
    pub fn bridge_joins_of(&self, node: u64) -> Vec<usize> {
        self.bridges
            .iter()
            .filter(|b| b.node_id == node)
            .flat_map(|b| b.joins.iter())
            .filter_map(|id| self.piconets.iter().position(|p| p.id == *id))
            .collect()
    }

    /// The master node ids whose System Logs can propagate errors to
    /// `node`: its home NAP plus the masters of every bridged piconet.
    pub fn masters_of(&self, node: u64) -> Vec<u64> {
        let mut out = Vec::new();
        if let Some(home) = self.home_piconet_of(node) {
            out.push(self.piconets[home].master_id());
        }
        for j in self.bridge_joins_of(node) {
            out.push(self.piconets[j].master_id());
        }
        out
    }

    /// The `(node, piconet id)` shard-routing table: all members of a
    /// piconet stream through the same shard (bridges route with their
    /// home piconet, preserving their single-log order).
    pub fn group_table(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        for p in &self.piconets {
            for m in &p.machines {
                out.push((m.node_id, p.id));
            }
        }
        out
    }

    /// Total machines across all piconets.
    pub fn machine_count(&self) -> usize {
        self.piconets.iter().map(|p| p.machines.len()).sum()
    }

    /// Lowers the topology into a baseband [`Scatternet`]: one piconet
    /// (and hop sequence) per spec, bridges joined into their targets.
    ///
    /// # Panics
    ///
    /// Panics when the topology is invalid; call
    /// [`Topology::validate`] first.
    pub fn to_scatternet(&self) -> Scatternet {
        let mut s = Scatternet::new();
        let mut index_of: BTreeMap<u64, usize> = BTreeMap::new();
        for p in &self.piconets {
            let idx = s.add_piconet(p.master_id());
            index_of.insert(p.id, idx);
            for m in p.panus() {
                s.join(idx, m.node_id).expect("validated piconet fits");
            }
        }
        for b in &self.bridges {
            for j in &b.joins {
                s.join(index_of[j], b.node_id)
                    .expect("validated bridge join fits");
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_presets_validate() {
        for name in ["paper", "paper-a", "paper-b", "paper-both", "scatternet"] {
            let t = Topology::preset(name).expect(name);
            t.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
        }
        assert!(Topology::preset("nope").is_none());
    }

    #[test]
    fn paper_both_replays_single_testbed_streams() {
        let both = Topology::paper_both();
        assert_eq!(both.piconets.len(), 2);
        // Testbed A keeps the legacy ids; B is renumbered but replays
        // A's stream keys, and both roots are unsalted.
        let a = &both.piconets[0];
        let b = &both.piconets[1];
        assert_eq!(a.seed_salt, 0);
        assert_eq!(b.seed_salt, 0);
        assert_eq!(a.master_id(), 0);
        assert_eq!(b.master_id(), 100);
        for (ma, mb) in a.machines.iter().zip(&b.machines) {
            assert_eq!(ma.name, mb.name);
            assert_eq!(mb.node_id, ma.node_id + 100);
            assert_eq!(mb.stream_key(), ma.stream_key());
        }
        // Fig. 3b capability flags carried over from the machine table.
        let targets: Vec<&str> = a
            .panus()
            .filter(|m| m.is_fig3b_target())
            .map(|m| m.name.as_str())
            .collect();
        assert_eq!(targets, ["Verde", "Win"]);
    }

    #[test]
    fn json_round_trip() {
        let t = Topology::scatternet();
        let json = t.to_json();
        let back = Topology::from_json(&json).expect("round trip");
        assert_eq!(back, t);
    }

    #[test]
    fn duplicate_node_ids_rejected() {
        let mut t = Topology::paper_both();
        t.piconets[1].machines[2].node_id = 2; // collides with testbed A
        let err = t.validate().unwrap_err();
        assert_eq!(err.field, "topology.machines");
        assert!(err.reason.contains("duplicate node id 2"), "{}", err.reason);
    }

    #[test]
    fn zero_panu_piconet_rejected() {
        let mut t = Topology::paper_a();
        t.piconets[0].machines.truncate(1); // NAP only
        let err = t.validate().unwrap_err();
        assert!(err.reason.contains("zero PANUs"), "{}", err.reason);
    }

    #[test]
    fn bridge_to_missing_piconet_rejected() {
        let mut t = Topology::scatternet();
        t.bridges[0].joins.push(99);
        let err = t.validate().unwrap_err();
        assert_eq!(err.field, "topology.bridges");
        assert!(err.reason.contains("missing piconet 99"), "{}", err.reason);
    }

    #[test]
    fn eighth_active_member_rejected() {
        // Seven PANUs fill the piconet; an incoming bridge is the 8th
        // active member and must be rejected (park-state limit).
        let mut t = Topology::scatternet();
        let beta = &mut t.piconets[1];
        for i in 0..5 {
            let mut extra = beta.machines[1].clone();
            extra.name = format!("Extra-{i}");
            extra.node_id = 300 + i;
            beta.machines.push(extra);
        }
        assert_eq!(beta.panus().count(), 7);
        let err = t.validate().unwrap_err();
        assert!(err.reason.contains("at most 7"), "{}", err.reason);
        // Without the bridge join the seven PANUs are fine.
        t.bridges[0].joins.retain(|&j| j != 1);
        t.validate().expect("seven PANUs without bridge fit");
    }

    #[test]
    fn more_validation_edges() {
        // Two NAPs.
        let mut t = Topology::paper_a();
        t.piconets[0].machines[1].role = MachineRole::Nap;
        assert!(t.validate().unwrap_err().reason.contains("exactly one NAP"));
        // Empty topology.
        let empty = Topology {
            name: "empty".into(),
            piconets: vec![],
            bridges: vec![],
        };
        assert_eq!(empty.validate().unwrap_err().field, "topology.piconets");
        // Bridge joining its own home piconet.
        let mut t = Topology::scatternet();
        t.bridges[0].joins = vec![0];
        assert!(t.validate().unwrap_err().reason.contains("home piconet"));
        // Bridge node that is nobody's PANU.
        let mut t = Topology::scatternet();
        t.bridges[0].node_id = 999;
        assert!(t.validate().unwrap_err().reason.contains("not a PANU"));
        // Non-finite link override.
        let mut t = Topology::scatternet();
        t.piconets[0].machines[2].link = Some(LinkSpec { drop_scale: 0.0 });
        assert!(t.validate().unwrap_err().reason.contains("drop_scale"));
        // Duplicate piconet id.
        let mut t = Topology::paper_both();
        t.piconets[1].id = 0;
        assert!(t
            .validate()
            .unwrap_err()
            .reason
            .contains("duplicate piconet id"));
        // Malformed JSON surfaces as a ConfigError, not a panic.
        assert_eq!(
            Topology::from_json("{not json").unwrap_err().field,
            "topology"
        );
    }

    #[test]
    fn lookup_helpers_cover_bridges() {
        let t = Topology::scatternet();
        assert_eq!(t.node_name(201), Some("Relay"));
        assert_eq!(t.node_name(999), None);
        assert_eq!(t.home_piconet_of(201), Some(0));
        assert_eq!(t.bridge_joins_of(201), vec![1, 2]);
        assert_eq!(t.bridge_joins_of(202), Vec::<usize>::new());
        // The bridge sees all three masters; a plain PANU only its own.
        assert_eq!(t.masters_of(201), vec![200, 210, 220]);
        assert_eq!(t.masters_of(211), vec![210]);
        // Group table routes every node with its home piconet.
        let table = t.group_table();
        assert_eq!(table.len(), t.machine_count());
        assert!(table.contains(&(201, 0)));
        assert!(table.contains(&(212, 1)));
    }

    #[test]
    fn scatternet_lowering_matches_spec() {
        let t = Topology::scatternet();
        let s = t.to_scatternet();
        assert_eq!(s.piconet_count(), 3);
        assert_eq!(s.bridge_count(), 1);
        assert!(s.is_bridge(201));
        assert!((s.time_share(201) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.time_share(202), 1.0);
        assert_eq!(s.piconet(0).master(), 200);
        assert!(s.piconet(1).is_slave(201), "bridge joined beta");
        assert!(s.piconet(2).is_slave(201), "bridge joined gamma");
    }
}
