//! # btpan-analysis
//!
//! The statistical-analysis stage of the pipeline — the role SAS played
//! in the paper's lab. Consumes the repository filled by
//! `btpan-collect` and the recovery outcomes of `btpan-recovery`, and
//! produces every table and figure of the evaluation:
//!
//! * [`ttf`] — failure episodes, TTF/TTR series extraction, and the
//!   uptime/downtime partition of each node's timeline;
//! * [`dependability`] — MTTF, MTTR, availability, coverage and masking
//!   percentages with the paper's min/max/std columns (Table 4);
//! * [`distributions`] — failure shares by packet type (Fig. 3a),
//!   connection age (Fig. 3b), networked application (Fig. 3c), host
//!   (Fig. 4), workload (84 %/16 %), antenna distance, and the
//!   idle-time comparison;
//! * [`paper`] — the published reference values every `repro_*` binary
//!   prints next to its measurements;
//! * [`tables`] — ASCII rendering of paper-vs-measured tables;
//! * [`report`] — JSON export of experiment evidence;
//! * [`markov`] — an analytic CTMC availability model fitted from the
//!   measured data (the "abstract models" the paper invites);
//! * [`redundancy`] — the paper's redundant-overlapped-piconets
//!   suggestion, evaluated by timeline replay.

pub mod dependability;
pub mod distributions;
pub mod markov;
pub mod paper;
pub mod redundancy;
pub mod report;
pub mod tables;
pub mod ttf;

pub use dependability::{
    ConfidenceInterval, DependabilityReport, ScenarioMeasurement, TestbedBreakdown,
};
pub use distributions::{AgeHistogram, ShareTable};
pub use markov::MarkovAvailability;
pub use redundancy::{replay_with_redundancy, RedundancyConfig};
pub use tables::{format_row, render_comparison, render_table, Alignment};
pub use ttf::{FailureEpisode, NodeTimeline, TtfTtrSeries};
