//! Dependability metrics: the Table 4 machinery.
//!
//! For each recovery scenario the paper reports MTTF, MTTR (with
//! std/min/max), availability `MTTF/(MTTF+MTTR)`, failure-mode coverage
//! (failures recovered without app restart or reboot — Avižienis et
//! al.'s failure-assumption coverage) and the masking percentage.

use crate::ttf::TtfTtrSeries;
use btpan_sim::stats::Summary;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A 95 % confidence interval around a sample mean, widened when the
/// campaign behind it only partially completed.
///
/// A supervised multi-seed run can lose seeds to panics or deadline
/// overruns (see `btpan-core`'s supervisor); the surviving sample is
/// both smaller and potentially biased toward better-behaved seeds. The
/// honest response is wider error bars: the normal-approximation
/// half-width `z₀.₉₇₅ · s/√n` is inflated by `1/√coverage`, where
/// `coverage` is the fraction of requested seeds that completed — at
/// full coverage the interval is the classical one, at 25 % coverage it
/// doubles, and at zero coverage it is infinite (no claim can be made).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    /// The sample mean.
    pub mean: f64,
    /// Half-width of the interval (infinite when fewer than two
    /// observations or zero coverage).
    pub half_width: f64,
    /// The seed-coverage fraction the widening was computed from.
    pub coverage: f64,
}

impl ConfidenceInterval {
    /// `z` at 97.5 % (two-sided 95 %).
    const Z95: f64 = 1.959_963_984_540_054;

    /// Builds the interval from a sample summary and the campaign's
    /// seed-coverage fraction (clamped to `[0, 1]`).
    pub fn from_summary(summary: &Summary, coverage: f64) -> Self {
        let coverage = coverage.clamp(0.0, 1.0);
        let n = summary.count as f64;
        let classical = if summary.count >= 2 {
            Self::Z95 * summary.std_dev / n.sqrt()
        } else {
            f64::INFINITY
        };
        let half_width = if coverage > 0.0 {
            classical / coverage.sqrt()
        } else {
            f64::INFINITY
        };
        ConfidenceInterval {
            mean: summary.mean,
            half_width,
            coverage,
        }
    }

    /// Lower bound.
    pub fn lo(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Upper bound.
    pub fn hi(&self) -> f64 {
        self.mean + self.half_width
    }

    /// Whether `x` lies inside the interval.
    pub fn contains(&self, x: f64) -> bool {
        x >= self.lo() && x <= self.hi()
    }

    /// Whether this interval is informative (finite half-width).
    pub fn is_finite(&self) -> bool {
        self.half_width.is_finite()
    }
}

impl fmt::Display for ConfidenceInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_finite() {
            write!(f, "{:.2} ± {:.2}", self.mean, self.half_width)
        } else {
            write!(f, "{:.2} ± ∞", self.mean)
        }
    }
}

/// The measured dependability figures of one scenario (one Table 4
/// column).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScenarioMeasurement {
    /// Mean time to failure, seconds.
    pub mttf_s: f64,
    /// Mean time to recover, seconds.
    pub mttr_s: f64,
    /// TTF summary (count/std/min/max).
    pub ttf: Summary,
    /// TTR summary.
    pub ttr: Summary,
    /// Steady-state availability `MTTF/(MTTF+MTTR)`.
    pub availability: f64,
    /// Percentage of failures recovered by SIRAs 1–3.
    pub coverage_percent: f64,
    /// Percentage of would-be failures eliminated by masking.
    pub masking_percent: f64,
}

impl ScenarioMeasurement {
    /// Builds a measurement from a TTF/TTR series plus the coverage and
    /// masking tallies.
    ///
    /// `covered` counts failures recovered at severity ≤ 3; `masked`
    /// counts failures prevented outright; `unmasked_total` is the
    /// number of failures that actually manifested.
    pub fn from_series(
        series: &TtfTtrSeries,
        covered: u64,
        masked: u64,
        unmasked_total: u64,
    ) -> Self {
        let ttf = series.ttf_stats().summary();
        let ttr = series.ttr_stats().summary();
        let mttf_s = ttf.mean;
        let mttr_s = ttr.mean;
        let availability = if mttf_s + mttr_s > 0.0 {
            mttf_s / (mttf_s + mttr_s)
        } else {
            1.0
        };
        let would_be = masked + unmasked_total;
        let masking_percent = if would_be > 0 {
            100.0 * masked as f64 / would_be as f64
        } else {
            0.0
        };
        // Coverage over the would-be failure population: masked failures
        // count toward the covered mass (they never reached the user),
        // matching Table 4's "58 % (masking) + 15.61 % (coverage of the
        // remaining failures)" accounting.
        let coverage_percent = if would_be > 0 {
            100.0 * (masked + covered) as f64 / would_be as f64
        } else {
            0.0
        };
        ScenarioMeasurement {
            mttf_s,
            mttr_s,
            ttf,
            ttr,
            availability,
            coverage_percent,
            masking_percent,
        }
    }

    /// 95 % confidence interval on the MTTF, widened for a partially
    /// completed campaign (`seed_coverage` ∈ `[0, 1]`).
    pub fn mttf_ci(&self, seed_coverage: f64) -> ConfidenceInterval {
        ConfidenceInterval::from_summary(&self.ttf, seed_coverage)
    }

    /// 95 % confidence interval on the MTTR, widened likewise.
    pub fn mttr_ci(&self, seed_coverage: f64) -> ConfidenceInterval {
        ConfidenceInterval::from_summary(&self.ttr, seed_coverage)
    }
}

impl fmt::Display for ScenarioMeasurement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "MTTF {:.2}s MTTR {:.2}s A {:.3} cov {:.1}% mask {:.1}%",
            self.mttf_s,
            self.mttr_s,
            self.availability,
            self.coverage_percent,
            self.masking_percent
        )
    }
}

/// The full Table 4: one measurement per recovery policy, in column
/// order (reboot-only, app-restart+reboot, SIRAs, SIRAs+masking).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DependabilityReport {
    /// The four scenario columns.
    pub scenarios: Vec<(String, ScenarioMeasurement)>,
}

impl DependabilityReport {
    /// Creates a report from labelled measurements.
    pub fn new(scenarios: Vec<(String, ScenarioMeasurement)>) -> Self {
        DependabilityReport { scenarios }
    }

    /// Looks a scenario up by label.
    pub fn scenario(&self, label: &str) -> Option<&ScenarioMeasurement> {
        self.scenarios
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, m)| m)
    }

    /// Availability improvement of `to` relative to `from`, in percent
    /// (the paper's 3.64 % / 36.6 % figures).
    pub fn availability_improvement(&self, from: &str, to: &str) -> Option<f64> {
        let a = self.scenario(from)?.availability;
        let b = self.scenario(to)?.availability;
        Some(100.0 * (b - a) / a)
    }

    /// Reliability (MTTF) improvement of `to` relative to `from` in
    /// percent (the paper's 202 %).
    pub fn mttf_improvement(&self, from: &str, to: &str) -> Option<f64> {
        let a = self.scenario(from)?.mttf_s;
        let b = self.scenario(to)?.mttf_s;
        Some(100.0 * (b - a) / a)
    }
}

/// Table 4 split per testbed: the paper ran two concurrent testbeds and
/// pooled them; multi-piconet campaigns report each piconet's own
/// dependability columns alongside the pooled ones.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TestbedBreakdown {
    /// One labelled report per testbed/piconet, in topology order.
    pub per_testbed: Vec<(String, DependabilityReport)>,
    /// The pooled report over every testbed (the paper's Table 4 view).
    pub pooled: DependabilityReport,
}

impl TestbedBreakdown {
    /// Looks a testbed's report up by label.
    pub fn testbed(&self, label: &str) -> Option<&DependabilityReport> {
        self.per_testbed
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, r)| r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btpan_sim::time::SimDuration;

    fn series(ttf_s: &[u64], ttr_s: &[u64]) -> TtfTtrSeries {
        TtfTtrSeries {
            ttf: ttf_s.iter().map(|&s| SimDuration::from_secs(s)).collect(),
            ttr: ttr_s.iter().map(|&s| SimDuration::from_secs(s)).collect(),
        }
    }

    #[test]
    fn availability_formula() {
        let s = series(&[600, 660], &[90, 90]);
        let m = ScenarioMeasurement::from_series(&s, 0, 0, 2);
        assert!((m.mttf_s - 630.0).abs() < 1e-9);
        assert!((m.mttr_s - 90.0).abs() < 1e-9);
        assert!((m.availability - 630.0 / 720.0).abs() < 1e-12);
        assert_eq!(m.masking_percent, 0.0);
    }

    #[test]
    fn coverage_accounting_matches_table4_note() {
        // 58 masked + covered 15.61 % of the remaining == 73.61 total.
        let s = series(&[100; 42], &[10; 42]);
        // 58 masked, 42 manifested, 6.56 of them covered (15.61 % of 42
        // over the 100 would-be failures -> 6.56 covered failures).
        let m = ScenarioMeasurement::from_series(&s, 7, 58, 42);
        assert!((m.masking_percent - 58.0).abs() < 1e-9);
        assert!((m.coverage_percent - 65.0).abs() < 1e-9);
    }

    #[test]
    fn empty_series_is_perfectly_available() {
        let m = ScenarioMeasurement::from_series(&TtfTtrSeries::default(), 0, 0, 0);
        assert_eq!(m.availability, 1.0);
        assert_eq!(m.coverage_percent, 0.0);
    }

    #[test]
    fn improvements() {
        let base = ScenarioMeasurement::from_series(&series(&[630], &[286]), 0, 0, 1);
        let best = ScenarioMeasurement::from_series(&series(&[1905], &[121]), 0, 1, 1);
        let report = DependabilityReport::new(vec![
            ("Only Reboot".into(), base),
            ("SIRAs and masking".into(), best),
        ]);
        let avail = report
            .availability_improvement("Only Reboot", "SIRAs and masking")
            .unwrap();
        // 0.688 -> 0.940: ~36.6 % improvement.
        assert!((avail - 36.6).abs() < 2.0, "avail improvement {avail}");
        let mttf = report
            .mttf_improvement("Only Reboot", "SIRAs and masking")
            .unwrap();
        assert!((mttf - 202.0).abs() < 3.0, "mttf improvement {mttf}");
        assert!(report.scenario("nope").is_none());
    }

    #[test]
    fn ci_widens_with_lost_coverage() {
        let s = series(&[500, 600, 700, 800, 900, 1000], &[60; 6]);
        let m = ScenarioMeasurement::from_series(&s, 0, 0, 6);
        let full = m.mttf_ci(1.0);
        let half = m.mttf_ci(0.5);
        let quarter = m.mttf_ci(0.25);
        assert!((full.mean - 750.0).abs() < 1e-9);
        assert!(full.is_finite());
        assert!(full.contains(750.0));
        // 1/sqrt(coverage) widening: ×√2 at 50 %, ×2 at 25 %.
        assert!((half.half_width / full.half_width - 2f64.sqrt()).abs() < 1e-9);
        assert!((quarter.half_width / full.half_width - 2.0).abs() < 1e-9);
        assert!(half.lo() < full.lo() && half.hi() > full.hi());
    }

    #[test]
    fn ci_degenerate_cases() {
        let s = series(&[500], &[60]);
        let m = ScenarioMeasurement::from_series(&s, 0, 0, 1);
        // One observation: no spread estimate, infinite interval.
        assert!(!m.mttf_ci(1.0).is_finite());
        // Zero coverage: no completed seeds, infinite interval.
        let s2 = series(&[500, 700], &[60, 60]);
        let m2 = ScenarioMeasurement::from_series(&s2, 0, 0, 2);
        assert!(!m2.mttf_ci(0.0).is_finite());
        assert!(m2.mttf_ci(1.0).is_finite());
        assert!(m2.mttf_ci(0.0).to_string().contains('∞'));
        assert!(m2.mttf_ci(1.0).to_string().contains('±'));
    }

    #[test]
    fn display_compact() {
        let m = ScenarioMeasurement::from_series(&series(&[100], &[10]), 1, 0, 1);
        let s = m.to_string();
        assert!(s.contains("MTTF 100.00s"));
        assert!(s.contains("cov 100.0%"));
    }
}
