//! Analytic availability models fitted from the measured failure data.
//!
//! The paper's stated purpose for the failure model is that "researchers
//! can use it to design abstract models useful for further analysis or
//! synthesis". This module is one such model: a continuous-time Markov
//! availability model with one down-state per failure type, fitted from
//! the campaign's measured per-type failure rates and recovery times,
//! whose closed-form steady-state availability can be checked against
//! the simulation's direct measurement.
//!
//! States: `Up`, plus `Down_i` for each failure type *i*. Transitions
//! `Up → Down_i` at rate `λ_i` (type-specific failure rate) and
//! `Down_i → Up` at rate `μ_i = 1 / MTTR_i`. The stationary availability
//! is the standard
//!
//! ```text
//! A = 1 / (1 + Σ_i λ_i / μ_i)
//! ```

use btpan_faults::UserFailure;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One failure type's fitted parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TypeRates {
    /// Failure rate `λ` in failures per second of uptime.
    pub lambda: f64,
    /// Repair rate `μ = 1 / MTTR` in recoveries per second.
    pub mu: f64,
}

/// The fitted availability model.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MarkovAvailability {
    rates: BTreeMap<UserFailure, TypeRates>,
}

impl MarkovAvailability {
    /// Builds an empty model.
    pub fn new() -> Self {
        MarkovAvailability::default()
    }

    /// Fits one failure type from campaign measurements: `count`
    /// episodes over `uptime_s` seconds of uptime with mean recovery
    /// time `mttr_s`.
    ///
    /// # Panics
    ///
    /// Panics for non-positive uptime or MTTR with a non-zero count.
    pub fn fit_type(&mut self, failure: UserFailure, count: u64, uptime_s: f64, mttr_s: f64) {
        assert!(uptime_s > 0.0, "uptime must be positive");
        if count == 0 {
            return;
        }
        assert!(mttr_s > 0.0, "MTTR must be positive for observed failures");
        self.rates.insert(
            failure,
            TypeRates {
                lambda: count as f64 / uptime_s,
                mu: 1.0 / mttr_s,
            },
        );
    }

    /// The fitted rates of one type.
    pub fn rates(&self, failure: UserFailure) -> Option<TypeRates> {
        self.rates.get(&failure).copied()
    }

    /// Number of fitted types.
    pub fn len(&self) -> usize {
        self.rates.len()
    }

    /// True with no fitted types (availability is then 1).
    pub fn is_empty(&self) -> bool {
        self.rates.is_empty()
    }

    /// Total failure rate `Σ λ_i` (per second of uptime) — the model's
    /// `1 / MTTF`.
    pub fn total_lambda(&self) -> f64 {
        self.rates.values().map(|r| r.lambda).sum()
    }

    /// Model MTTF in seconds (`1 / Σ λ_i`).
    pub fn mttf_s(&self) -> f64 {
        let l = self.total_lambda();
        if l > 0.0 {
            1.0 / l
        } else {
            f64::INFINITY
        }
    }

    /// Mixture MTTR in seconds (`Σ (λ_i/Σλ) · 1/μ_i`).
    pub fn mttr_s(&self) -> f64 {
        let total = self.total_lambda();
        if total <= 0.0 {
            return 0.0;
        }
        self.rates.values().map(|r| (r.lambda / total) / r.mu).sum()
    }

    /// Closed-form steady-state availability.
    pub fn availability(&self) -> f64 {
        let downtime_ratio: f64 = self.rates.values().map(|r| r.lambda / r.mu).sum();
        1.0 / (1.0 + downtime_ratio)
    }

    /// Availability if the given failure type were completely masked
    /// (its `λ` removed) — the what-if analysis behind the paper's
    /// masking strategy selection.
    pub fn availability_without(&self, masked: UserFailure) -> f64 {
        let downtime_ratio: f64 = self
            .rates
            .iter()
            .filter(|(f, _)| **f != masked)
            .map(|(_, r)| r.lambda / r.mu)
            .sum();
        1.0 / (1.0 + downtime_ratio)
    }

    /// Ranks failure types by their steady-state downtime contribution
    /// `λ_i/μ_i`, descending — where masking effort pays most.
    pub fn downtime_ranking(&self) -> Vec<(UserFailure, f64)> {
        let mut v: Vec<(UserFailure, f64)> = self
            .rates
            .iter()
            .map(|(f, r)| (*f, r.lambda / r.mu))
            .collect();
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite ratios"));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_state_closed_form() {
        // Single type: A = MTTF / (MTTF + MTTR).
        let mut m = MarkovAvailability::new();
        // 100 failures over 63000 s uptime -> lambda = 1/630; MTTR 286 s.
        m.fit_type(UserFailure::PacketLoss, 100, 63_000.0, 286.0);
        let a = m.availability();
        let expect = 630.0 / (630.0 + 286.0);
        assert!((a - expect).abs() < 1e-12, "{a} vs {expect}");
        assert!((m.mttf_s() - 630.0).abs() < 1e-9);
        assert!((m.mttr_s() - 286.0).abs() < 1e-9);
    }

    #[test]
    fn empty_model_is_fully_available() {
        let m = MarkovAvailability::new();
        assert_eq!(m.availability(), 1.0);
        assert!(m.is_empty());
        assert!(m.mttf_s().is_infinite());
        assert_eq!(m.mttr_s(), 0.0);
    }

    #[test]
    fn masking_whatif_matches_refit() {
        let mut m = MarkovAvailability::new();
        m.fit_type(UserFailure::BindFailed, 379, 100_000.0, 43.0);
        m.fit_type(UserFailure::PacketLoss, 334, 100_000.0, 99.0);
        let without_bind = m.availability_without(UserFailure::BindFailed);
        let mut refit = MarkovAvailability::new();
        refit.fit_type(UserFailure::PacketLoss, 334, 100_000.0, 99.0);
        assert!((without_bind - refit.availability()).abs() < 1e-12);
        assert!(without_bind > m.availability());
    }

    #[test]
    fn ranking_orders_by_downtime_share() {
        let mut m = MarkovAvailability::new();
        // Bind: frequent but quickly recovered.
        m.fit_type(UserFailure::BindFailed, 1_000, 100_000.0, 5.0);
        // Connect: rare but slow to recover.
        m.fit_type(UserFailure::ConnectFailed, 100, 100_000.0, 200.0);
        let ranking = m.downtime_ranking();
        // bind: 0.01*5 = 0.05; connect: 0.001*200 = 0.2 -> connect first.
        assert_eq!(ranking[0].0, UserFailure::ConnectFailed);
        assert_eq!(ranking.len(), 2);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn zero_count_types_ignored() {
        let mut m = MarkovAvailability::new();
        m.fit_type(UserFailure::DataMismatch, 0, 1_000.0, 1.0);
        assert!(m.is_empty());
        assert!(m.rates(UserFailure::DataMismatch).is_none());
    }

    #[test]
    #[should_panic(expected = "MTTR must be positive")]
    fn rejects_zero_mttr() {
        let mut m = MarkovAvailability::new();
        m.fit_type(UserFailure::PacketLoss, 5, 1_000.0, 0.0);
    }

    #[test]
    fn serde_round_trip() {
        let mut m = MarkovAvailability::new();
        m.fit_type(UserFailure::NapNotFound, 10, 5_000.0, 70.0);
        let json = serde_json::to_string(&m).unwrap();
        let back: MarkovAvailability = serde_json::from_str(&json).unwrap();
        // Floats may round-trip with 1-ulp differences through JSON.
        let a = back.rates(UserFailure::NapNotFound).unwrap();
        let b = m.rates(UserFailure::NapNotFound).unwrap();
        assert!((a.lambda - b.lambda).abs() < 1e-12);
        assert!((a.mu - b.mu).abs() < 1e-12);
    }
}
