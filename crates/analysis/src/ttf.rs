//! Failure episodes and TTF/TTR series.
//!
//! The 24/7 workload makes time-to-failure and time-to-recover directly
//! measurable: a node's timeline alternates uptime (ends at a failure
//! manifestation) and downtime (the recovery). TTF of episode *i* is the
//! uptime preceding it; TTR is its recovery duration.

use btpan_faults::UserFailure;
use btpan_sim::stats::RunningStats;
use btpan_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// One failure with its recovery span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FailureEpisode {
    /// When the failure manifested.
    pub failed_at: SimTime,
    /// When the node was back in service.
    pub recovered_at: SimTime,
    /// What failed.
    pub failure: UserFailure,
}

impl FailureEpisode {
    /// The episode's downtime.
    pub fn ttr(&self) -> SimDuration {
        self.recovered_at.since(self.failed_at)
    }
}

/// A node's full campaign timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeTimeline {
    /// The node.
    pub node: u64,
    /// Episodes in time order.
    pub episodes: Vec<FailureEpisode>,
    /// Campaign start.
    pub started_at: SimTime,
    /// Campaign end.
    pub ended_at: SimTime,
}

impl NodeTimeline {
    /// Creates a timeline; validates ordering.
    ///
    /// # Panics
    ///
    /// Panics if episodes are out of order, overlap, or fall outside the
    /// campaign span.
    pub fn new(
        node: u64,
        episodes: Vec<FailureEpisode>,
        started_at: SimTime,
        ended_at: SimTime,
    ) -> Self {
        assert!(started_at <= ended_at, "inverted campaign span");
        let mut prev_end = started_at;
        for e in &episodes {
            assert!(e.failed_at >= prev_end, "episodes overlap or disorder");
            assert!(e.recovered_at >= e.failed_at, "negative downtime");
            assert!(e.recovered_at <= ended_at, "episode after campaign end");
            prev_end = e.recovered_at;
        }
        NodeTimeline {
            node,
            episodes,
            started_at,
            ended_at,
        }
    }

    /// Total uptime of the node.
    pub fn uptime(&self) -> SimDuration {
        self.span().saturating_sub(self.downtime())
    }

    /// Total downtime (sum of TTRs).
    pub fn downtime(&self) -> SimDuration {
        self.episodes.iter().map(FailureEpisode::ttr).sum()
    }

    /// Campaign span for this node.
    pub fn span(&self) -> SimDuration {
        self.ended_at.since(self.started_at)
    }

    /// Extracts the TTF/TTR series: TTF_i is the uptime between the
    /// previous recovery (or campaign start) and failure *i*.
    pub fn series(&self) -> TtfTtrSeries {
        let mut ttf = Vec::with_capacity(self.episodes.len());
        let mut ttr = Vec::with_capacity(self.episodes.len());
        let mut prev_end = self.started_at;
        for e in &self.episodes {
            ttf.push(e.failed_at.since(prev_end));
            ttr.push(e.ttr());
            prev_end = e.recovered_at;
        }
        TtfTtrSeries { ttf, ttr }
    }
}

/// Extracted TTF and TTR sample vectors.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TtfTtrSeries {
    /// Time-to-failure samples.
    pub ttf: Vec<SimDuration>,
    /// Time-to-recover samples.
    pub ttr: Vec<SimDuration>,
}

impl TtfTtrSeries {
    /// Merges another series into this one.
    pub fn extend(&mut self, other: &TtfTtrSeries) {
        self.ttf.extend_from_slice(&other.ttf);
        self.ttr.extend_from_slice(&other.ttr);
    }

    /// Running stats of the TTF samples, in seconds.
    pub fn ttf_stats(&self) -> RunningStats {
        self.ttf.iter().map(|d| d.as_secs_f64()).collect()
    }

    /// Running stats of the TTR samples, in seconds.
    pub fn ttr_stats(&self) -> RunningStats {
        self.ttr.iter().map(|d| d.as_secs_f64()).collect()
    }

    /// Number of episodes in the series.
    pub fn len(&self) -> usize {
        self.ttf.len()
    }

    /// True when no episodes were recorded.
    pub fn is_empty(&self) -> bool {
        self.ttf.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ep(fail_s: u64, rec_s: u64) -> FailureEpisode {
        FailureEpisode {
            failed_at: SimTime::from_secs(fail_s),
            recovered_at: SimTime::from_secs(rec_s),
            failure: UserFailure::PacketLoss,
        }
    }

    #[test]
    fn series_partitions_the_timeline() {
        let tl = NodeTimeline::new(
            1,
            vec![ep(100, 110), ep(200, 260)],
            SimTime::ZERO,
            SimTime::from_secs(1000),
        );
        let s = tl.series();
        assert_eq!(
            s.ttf,
            vec![SimDuration::from_secs(100), SimDuration::from_secs(90)]
        );
        assert_eq!(
            s.ttr,
            vec![SimDuration::from_secs(10), SimDuration::from_secs(60)]
        );
        // uptime + downtime == span
        assert_eq!(tl.uptime() + tl.downtime(), tl.span());
        assert_eq!(tl.downtime(), SimDuration::from_secs(70));
    }

    #[test]
    fn empty_timeline_is_all_uptime() {
        let tl = NodeTimeline::new(1, vec![], SimTime::ZERO, SimTime::from_secs(500));
        assert_eq!(tl.uptime(), SimDuration::from_secs(500));
        assert!(tl.series().is_empty());
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn overlapping_episodes_rejected() {
        let _ = NodeTimeline::new(
            1,
            vec![ep(100, 200), ep(150, 300)],
            SimTime::ZERO,
            SimTime::from_secs(1000),
        );
    }

    #[test]
    #[should_panic(expected = "negative downtime")]
    fn inverted_episode_rejected() {
        let _ = NodeTimeline::new(
            1,
            vec![ep(200, 100)],
            SimTime::ZERO,
            SimTime::from_secs(1000),
        );
    }

    #[test]
    #[should_panic(expected = "after campaign end")]
    fn episode_beyond_end_rejected() {
        let _ = NodeTimeline::new(
            1,
            vec![ep(100, 2000)],
            SimTime::ZERO,
            SimTime::from_secs(1000),
        );
    }

    #[test]
    fn stats_and_merge() {
        let tl1 = NodeTimeline::new(
            1,
            vec![ep(100, 110)],
            SimTime::ZERO,
            SimTime::from_secs(200),
        );
        let tl2 = NodeTimeline::new(2, vec![ep(50, 80)], SimTime::ZERO, SimTime::from_secs(200));
        let mut s = tl1.series();
        s.extend(&tl2.series());
        assert_eq!(s.len(), 2);
        let ttf = s.ttf_stats();
        assert_eq!(ttf.count(), 2);
        assert!((ttf.mean().unwrap() - 75.0).abs() < 1e-9);
        let ttr = s.ttr_stats();
        assert!((ttr.mean().unwrap() - 20.0).abs() < 1e-9);
        assert_eq!(ttr.min(), Some(10.0));
        assert_eq!(ttr.max(), Some(30.0));
    }
}
