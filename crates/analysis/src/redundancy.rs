//! Redundant, overlapped piconets — the paper's fault-tolerance
//! suggestion for critical deployments, evaluated.
//!
//! "In these critical scenarios, extensive fault tolerance techniques
//! should be adopted, such as using redundant, overlapped piconets,
//! other than SIRAs and masking." This module models a PANU that holds a
//! standby association with a second NAP: failures whose scope is the
//! *connection* (packet loss, connect/PAN/NAP-discovery failures,
//! switch-role aborts) are absorbed by failing over to the standby
//! piconet in a short failover time; failures whose scope is the *node*
//! (bind/HAL trouble, data mismatch) still require local recovery.

use crate::ttf::{FailureEpisode, NodeTimeline, TtfTtrSeries};
use btpan_faults::UserFailure;
use btpan_sim::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Failover configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RedundancyConfig {
    /// Time to re-home a PANU onto the standby NAP (page + L2CAP + BNEP
    /// on an already-discovered device).
    pub failover: SimDuration,
    /// Probability the standby piconet is itself available when needed.
    pub standby_availability: f64,
}

impl Default for RedundancyConfig {
    fn default() -> Self {
        RedundancyConfig {
            failover: SimDuration::from_secs(4),
            standby_availability: 0.97,
        }
    }
}

impl RedundancyConfig {
    /// Whether a failure of this type can be absorbed by switching
    /// piconets (connection-scoped) or not (node-scoped).
    pub fn absorbable(failure: UserFailure) -> bool {
        !matches!(failure, UserFailure::BindFailed | UserFailure::DataMismatch)
    }
}

/// The outcome of replaying a timeline under redundancy.
#[derive(Debug, Clone, PartialEq)]
pub struct RedundancyOutcome {
    /// The rewritten timeline (same failures, shortened recoveries).
    pub timeline: NodeTimeline,
    /// Episodes absorbed by failover.
    pub absorbed: u64,
    /// Episodes that still needed their original recovery.
    pub not_absorbed: u64,
}

/// Replays a measured node timeline as if a standby piconet had been
/// available: absorbable failures recover in `failover` time (when the
/// standby was up), the rest keep their measured recovery time.
///
/// The standby's own availability is applied deterministically by
/// episode index (every k-th failover finds the standby down), keeping
/// the replay reproducible without a seed.
pub fn replay_with_redundancy(
    timeline: &NodeTimeline,
    config: RedundancyConfig,
) -> RedundancyOutcome {
    let period = if config.standby_availability >= 1.0 {
        u64::MAX
    } else {
        // every `period`-th failover attempt finds the standby down
        (1.0 / (1.0 - config.standby_availability)).round().max(1.0) as u64
    };
    let mut absorbed = 0;
    let mut not_absorbed = 0;
    let mut episodes = Vec::with_capacity(timeline.episodes.len());
    let mut attempt = 0u64;
    for e in &timeline.episodes {
        let can_absorb = RedundancyConfig::absorbable(e.failure);
        let standby_up = if can_absorb {
            attempt += 1;
            !attempt.is_multiple_of(period)
        } else {
            false
        };
        if can_absorb && standby_up && config.failover < e.ttr() {
            absorbed += 1;
            episodes.push(FailureEpisode {
                failed_at: e.failed_at,
                recovered_at: e.failed_at + config.failover,
                failure: e.failure,
            });
        } else {
            not_absorbed += 1;
            episodes.push(*e);
        }
    }
    RedundancyOutcome {
        timeline: NodeTimeline::new(
            timeline.node,
            episodes,
            timeline.started_at,
            timeline.ended_at,
        ),
        absorbed,
        not_absorbed,
    }
}

/// Replays a whole set of timelines and pools the resulting series.
pub fn pooled_series_with_redundancy(
    timelines: &[NodeTimeline],
    config: RedundancyConfig,
) -> (TtfTtrSeries, u64, u64) {
    let mut series = TtfTtrSeries::default();
    let mut absorbed = 0;
    let mut not_absorbed = 0;
    for tl in timelines {
        let out = replay_with_redundancy(tl, config);
        series.extend(&out.timeline.series());
        absorbed += out.absorbed;
        not_absorbed += out.not_absorbed;
    }
    (series, absorbed, not_absorbed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use btpan_sim::time::SimTime;

    fn ep(fail_s: u64, rec_s: u64, failure: UserFailure) -> FailureEpisode {
        FailureEpisode {
            failed_at: SimTime::from_secs(fail_s),
            recovered_at: SimTime::from_secs(rec_s),
            failure,
        }
    }

    fn timeline(episodes: Vec<FailureEpisode>) -> NodeTimeline {
        NodeTimeline::new(1, episodes, SimTime::ZERO, SimTime::from_secs(100_000))
    }

    #[test]
    fn absorbable_failures_recover_in_failover_time() {
        let tl = timeline(vec![ep(100, 400, UserFailure::PacketLoss)]);
        let out = replay_with_redundancy(&tl, RedundancyConfig::default());
        assert_eq!(out.absorbed, 1);
        assert_eq!(out.timeline.episodes[0].ttr(), SimDuration::from_secs(4));
    }

    #[test]
    fn node_scoped_failures_keep_their_recovery() {
        let tl = timeline(vec![
            ep(100, 200, UserFailure::BindFailed),
            ep(500, 600, UserFailure::DataMismatch),
        ]);
        let out = replay_with_redundancy(&tl, RedundancyConfig::default());
        assert_eq!(out.absorbed, 0);
        assert_eq!(out.not_absorbed, 2);
        assert_eq!(out.timeline.episodes, tl.episodes);
    }

    #[test]
    fn failover_never_worse_than_original() {
        // A failure whose measured recovery is already faster than the
        // failover keeps the original.
        let tl = timeline(vec![ep(100, 102, UserFailure::PacketLoss)]);
        let out = replay_with_redundancy(&tl, RedundancyConfig::default());
        assert_eq!(out.timeline.episodes[0].ttr(), SimDuration::from_secs(2));
        assert_eq!(out.absorbed, 0);
    }

    #[test]
    fn standby_downtime_applied_periodically() {
        // availability 0.5 -> every 2nd failover finds the standby down.
        let cfg = RedundancyConfig {
            failover: SimDuration::from_secs(4),
            standby_availability: 0.5,
        };
        let episodes: Vec<FailureEpisode> = (0..10)
            .map(|i| {
                ep(
                    1_000 * (i + 1),
                    1_000 * (i + 1) + 300,
                    UserFailure::ConnectFailed,
                )
            })
            .collect();
        let out = replay_with_redundancy(&timeline(episodes), cfg);
        assert_eq!(out.absorbed, 5);
        assert_eq!(out.not_absorbed, 5);
    }

    #[test]
    fn redundancy_improves_availability() {
        let episodes: Vec<FailureEpisode> = (0..50)
            .map(|i| {
                ep(
                    1_000 * (i + 1),
                    1_000 * (i + 1) + 250,
                    UserFailure::PacketLoss,
                )
            })
            .collect();
        let tl = timeline(episodes);
        let base = tl.series();
        let (red, absorbed, _) = pooled_series_with_redundancy(&[tl], RedundancyConfig::default());
        assert!(absorbed > 40);
        let avail = |s: &TtfTtrSeries| {
            let f = s.ttf_stats().mean().unwrap();
            let r = s.ttr_stats().mean().unwrap();
            f / (f + r)
        };
        assert!(
            avail(&red) > avail(&base) + 0.1,
            "{} vs {}",
            avail(&red),
            avail(&base)
        );
    }

    #[test]
    fn perfect_standby_absorbs_everything_absorbable() {
        let cfg = RedundancyConfig {
            failover: SimDuration::from_secs(1),
            standby_availability: 1.0,
        };
        let episodes: Vec<FailureEpisode> = (0..20)
            .map(|i| {
                ep(
                    1_000 * (i + 1),
                    1_000 * (i + 1) + 100,
                    UserFailure::NapNotFound,
                )
            })
            .collect();
        let out = replay_with_redundancy(&timeline(episodes), cfg);
        assert_eq!(out.absorbed, 20);
    }
}
