//! JSON experiment-evidence export.
//!
//! Each repro binary can emit a machine-readable record of what it
//! measured, which EXPERIMENTS.md references as evidence.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One experiment's evidence record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ExperimentReport {
    /// Experiment id, e.g. `"table4"` or `"fig3a"`.
    pub id: String,
    /// Campaign seed(s) used.
    pub seeds: Vec<u64>,
    /// Simulated duration in seconds.
    pub simulated_seconds: f64,
    /// Scalar measurements keyed by metric name.
    pub metrics: BTreeMap<String, f64>,
    /// Paper reference values keyed by the same names, where published.
    pub paper: BTreeMap<String, f64>,
    /// Free-form notes (substitutions, reconstruction caveats).
    pub notes: Vec<String>,
}

impl ExperimentReport {
    /// Creates an empty report for `id`.
    pub fn new(id: &str) -> Self {
        ExperimentReport {
            id: id.to_string(),
            ..ExperimentReport::default()
        }
    }

    /// Records a measured metric.
    pub fn metric(&mut self, name: &str, value: f64) -> &mut Self {
        self.metrics.insert(name.to_string(), value);
        self
    }

    /// Records a paper reference value.
    pub fn reference(&mut self, name: &str, value: f64) -> &mut Self {
        self.paper.insert(name.to_string(), value);
        self
    }

    /// Adds a note.
    pub fn note(&mut self, text: &str) -> &mut Self {
        self.notes.push(text.to_string());
        self
    }

    /// Serializes to pretty JSON.
    ///
    /// # Panics
    ///
    /// Panics if serialization fails (it cannot for this type).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }

    /// Parses a report back from JSON.
    ///
    /// # Errors
    ///
    /// Returns the underlying `serde_json` error for malformed input.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Relative error of a metric against its paper reference, when both
    /// exist.
    pub fn relative_error(&self, name: &str) -> Option<f64> {
        let m = self.metrics.get(name)?;
        let p = self.paper.get(name)?;
        (p.abs() > 1e-12).then(|| (m - p) / p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_round_trip() {
        let mut r = ExperimentReport::new("table4");
        r.metric("mttf_reboot_only", 650.0)
            .reference("mttf_reboot_only", 630.56)
            .note("substitution: simulated testbed");
        r.seeds = vec![42];
        r.simulated_seconds = 86_400.0;
        let json = r.to_json();
        let back = ExperimentReport::from_json(&json).unwrap();
        assert_eq!(back, r);
        assert!(json.contains("mttf_reboot_only"));
    }

    #[test]
    fn relative_error() {
        let mut r = ExperimentReport::new("x");
        r.metric("a", 110.0).reference("a", 100.0);
        assert!((r.relative_error("a").unwrap() - 0.1).abs() < 1e-12);
        assert!(r.relative_error("missing").is_none());
        r.metric("z", 1.0).reference("z", 0.0);
        assert!(r.relative_error("z").is_none());
    }

    #[test]
    fn malformed_json_rejected() {
        assert!(ExperimentReport::from_json("{nope").is_err());
    }
}
