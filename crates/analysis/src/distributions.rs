//! Failure-distribution analyses: Figures 3a–c, Figure 4 and the
//! section-6 findings.
//!
//! All of them are share tables (percentage of failures per category) or
//! histograms over connection age, computed from the Test-Log entries in
//! the repository.

use btpan_collect::entry::{TestLogEntry, WorkloadTag};
use btpan_faults::UserFailure;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A share table: count and percentage per category label.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ShareTable {
    counts: BTreeMap<String, u64>,
    total: u64,
}

impl ShareTable {
    /// An empty table.
    pub fn new() -> Self {
        ShareTable::default()
    }

    /// Adds one observation of `category`.
    pub fn add(&mut self, category: &str) {
        *self.counts.entry(category.to_string()).or_insert(0) += 1;
        self.total += 1;
    }

    /// Count of `category`.
    pub fn count(&self, category: &str) -> u64 {
        self.counts.get(category).copied().unwrap_or(0)
    }

    /// Percentage share of `category`.
    pub fn percent(&self, category: &str) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            100.0 * self.count(category) as f64 / self.total as f64
        }
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Categories in sorted order with their percentages.
    pub fn rows(&self) -> Vec<(String, u64, f64)> {
        self.counts
            .iter()
            .map(|(k, &v)| (k.clone(), v, self.percent(k)))
            .collect()
    }

    /// Categories sorted by descending share.
    pub fn ranked(&self) -> Vec<(String, f64)> {
        let mut rows: Vec<(String, f64)> = self
            .counts
            .keys()
            .map(|k| (k.clone(), self.percent(k)))
            .collect();
        rows.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite percentages"));
        rows
    }
}

/// Fig. 3a: packet-loss share per baseband packet type (Random WL).
pub fn packet_loss_by_packet_type(tests: &[TestLogEntry]) -> ShareTable {
    let mut table = ShareTable::new();
    for t in tests {
        if t.failure == UserFailure::PacketLoss && t.workload == WorkloadTag::Random {
            if let Some(pt) = &t.packet_type {
                table.add(pt);
            }
        }
    }
    table
}

/// Fig. 3c: packet-loss share per networked application (Realistic WL).
pub fn packet_loss_by_app(tests: &[TestLogEntry]) -> ShareTable {
    let mut table = ShareTable::new();
    for t in tests {
        if t.failure == UserFailure::PacketLoss && t.workload == WorkloadTag::Realistic {
            if let Some(app) = &t.app {
                table.add(app);
            }
        }
    }
    table
}

/// Fig. 4: share of each user failure per host (Realistic WL, no
/// masking). Returns one table per failure type observed.
pub fn failures_by_host(tests: &[TestLogEntry]) -> BTreeMap<UserFailure, ShareTable> {
    let mut out: BTreeMap<UserFailure, ShareTable> = BTreeMap::new();
    for t in tests {
        if t.workload == WorkloadTag::Realistic {
            out.entry(t.failure)
                .or_default()
                .add(&format!("node{}", t.node));
        }
    }
    out
}

/// The 84 %/16 % random-vs-realistic failure split.
pub fn failures_by_workload(tests: &[TestLogEntry]) -> ShareTable {
    let mut table = ShareTable::new();
    for t in tests {
        table.add(match t.workload {
            WorkloadTag::Random => "random",
            WorkloadTag::Realistic => "realistic",
        });
    }
    table
}

/// Distance distribution of failures (bind failures excluded, as in the
/// paper — they bias the measure by manifesting on two hosts only).
pub fn failures_by_distance(tests: &[TestLogEntry]) -> ShareTable {
    let mut table = ShareTable::new();
    for t in tests {
        if t.workload == WorkloadTag::Realistic && t.failure != UserFailure::BindFailed {
            table.add(&format!("{:.1}m", t.distance_m));
        }
    }
    table
}

/// Mean idle time (`T_W`) preceding failed cycles vs clean cycles
/// (the paper: 27.3 s vs 26.9 s — idle connections do not fail more).
/// `clean_idles_s` comes from the campaign's cycle accounting.
pub fn idle_time_comparison(tests: &[TestLogEntry], clean_idles_s: &[f64]) -> (f64, f64) {
    let failed: Vec<f64> = tests.iter().filter_map(|t| t.idle_before_s).collect();
    let mean = |v: &[f64]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    (mean(&failed), mean(clean_idles_s))
}

/// Fig. 3b: histogram of packets sent before a loss (the special
/// fixed-size WL).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AgeHistogram {
    /// Bin width in packets.
    pub bin_width: u64,
    /// Counts per bin (bin i covers `[i*w, (i+1)*w)`).
    pub bins: Vec<u64>,
    /// Total observations.
    pub total: u64,
}

impl AgeHistogram {
    /// Builds the histogram from test entries carrying
    /// `packets_sent_before`.
    ///
    /// # Panics
    ///
    /// Panics if `bin_width` is zero or `max_packets` not a multiple of
    /// it.
    pub fn from_tests(tests: &[TestLogEntry], bin_width: u64, max_packets: u64) -> Self {
        assert!(bin_width > 0, "bin width must be positive");
        assert_eq!(max_packets % bin_width, 0, "range must align to bins");
        let mut bins = vec![0u64; (max_packets / bin_width) as usize];
        let mut total = 0;
        for t in tests {
            if t.failure != UserFailure::PacketLoss {
                continue;
            }
            if let Some(age) = t.packets_sent_before {
                let idx = ((age.min(max_packets - 1)) / bin_width) as usize;
                bins[idx] += 1;
                total += 1;
            }
        }
        AgeHistogram {
            bin_width,
            bins,
            total,
        }
    }

    /// Percentage share of bin `i`.
    pub fn percent(&self, i: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            100.0 * self.bins[i] as f64 / self.total as f64
        }
    }

    /// True when the early bins dominate (the paper's "young
    /// connections fail more"): the first quarter of bins holds more
    /// mass than the last quarter.
    pub fn young_dominated(&self) -> bool {
        let q = (self.bins.len() / 4).max(1);
        let early: u64 = self.bins[..q].iter().sum();
        let late: u64 = self.bins[self.bins.len() - q..].iter().sum();
        early > late
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btpan_sim::time::SimTime;

    fn entry(
        failure: UserFailure,
        workload: WorkloadTag,
        packet_type: Option<&str>,
        app: Option<&str>,
        node: u64,
    ) -> TestLogEntry {
        TestLogEntry {
            at: SimTime::from_secs(1),
            node,
            failure,
            workload,
            packet_type: packet_type.map(str::to_string),
            packets_sent_before: None,
            app: app.map(str::to_string),
            distance_m: 5.0,
            idle_before_s: None,
        }
    }

    #[test]
    fn share_table_percentages() {
        let mut t = ShareTable::new();
        t.add("a");
        t.add("a");
        t.add("b");
        assert_eq!(t.total(), 3);
        assert!((t.percent("a") - 200.0 / 3.0).abs() < 1e-9);
        assert_eq!(t.count("c"), 0);
        assert_eq!(t.percent("c"), 0.0);
        assert_eq!(t.ranked()[0].0, "a");
    }

    #[test]
    fn fig3a_filters_to_random_packet_loss() {
        let tests = vec![
            entry(
                UserFailure::PacketLoss,
                WorkloadTag::Random,
                Some("DM1"),
                None,
                1,
            ),
            entry(
                UserFailure::PacketLoss,
                WorkloadTag::Random,
                Some("DM1"),
                None,
                1,
            ),
            entry(
                UserFailure::PacketLoss,
                WorkloadTag::Random,
                Some("DH5"),
                None,
                1,
            ),
            // excluded: realistic workload and other failures
            entry(
                UserFailure::PacketLoss,
                WorkloadTag::Realistic,
                Some("DM1"),
                None,
                1,
            ),
            entry(
                UserFailure::ConnectFailed,
                WorkloadTag::Random,
                Some("DM1"),
                None,
                1,
            ),
        ];
        let table = packet_loss_by_packet_type(&tests);
        assert_eq!(table.total(), 3);
        assert!((table.percent("DM1") - 66.666).abs() < 0.01);
    }

    #[test]
    fn fig3c_groups_by_app() {
        let tests = vec![
            entry(
                UserFailure::PacketLoss,
                WorkloadTag::Realistic,
                None,
                Some("P2P"),
                1,
            ),
            entry(
                UserFailure::PacketLoss,
                WorkloadTag::Realistic,
                None,
                Some("P2P"),
                1,
            ),
            entry(
                UserFailure::PacketLoss,
                WorkloadTag::Realistic,
                None,
                Some("Web"),
                1,
            ),
        ];
        let table = packet_loss_by_app(&tests);
        assert!((table.percent("P2P") - 66.666).abs() < 0.01);
    }

    #[test]
    fn fig4_by_host() {
        let tests = vec![
            entry(
                UserFailure::BindFailed,
                WorkloadTag::Realistic,
                None,
                None,
                4,
            ),
            entry(
                UserFailure::BindFailed,
                WorkloadTag::Realistic,
                None,
                None,
                4,
            ),
            entry(
                UserFailure::NapNotFound,
                WorkloadTag::Realistic,
                None,
                None,
                2,
            ),
        ];
        let map = failures_by_host(&tests);
        assert_eq!(map[&UserFailure::BindFailed].count("node4"), 2);
        assert_eq!(map[&UserFailure::BindFailed].count("node2"), 0);
        assert_eq!(map[&UserFailure::NapNotFound].count("node2"), 1);
    }

    #[test]
    fn workload_split() {
        let mut tests = vec![];
        for _ in 0..84 {
            tests.push(entry(
                UserFailure::PacketLoss,
                WorkloadTag::Random,
                None,
                None,
                1,
            ));
        }
        for _ in 0..16 {
            tests.push(entry(
                UserFailure::PacketLoss,
                WorkloadTag::Realistic,
                None,
                None,
                1,
            ));
        }
        let t = failures_by_workload(&tests);
        assert_eq!(t.percent("random"), 84.0);
        assert_eq!(t.percent("realistic"), 16.0);
    }

    #[test]
    fn distance_excludes_bind() {
        let mut a = entry(
            UserFailure::PacketLoss,
            WorkloadTag::Realistic,
            None,
            None,
            1,
        );
        a.distance_m = 0.5;
        let mut b = entry(
            UserFailure::BindFailed,
            WorkloadTag::Realistic,
            None,
            None,
            2,
        );
        b.distance_m = 7.0;
        let t = failures_by_distance(&[a, b]);
        assert_eq!(t.total(), 1);
        assert_eq!(t.percent("0.5m"), 100.0);
    }

    #[test]
    fn idle_comparison() {
        let mut failed = entry(
            UserFailure::PacketLoss,
            WorkloadTag::Realistic,
            None,
            None,
            1,
        );
        failed.idle_before_s = Some(27.3);
        let (f, c) = idle_time_comparison(&[failed], &[26.9, 26.9]);
        assert!((f - 27.3).abs() < 1e-9);
        assert!((c - 26.9).abs() < 1e-9);
        let (f0, c0) = idle_time_comparison(&[], &[]);
        assert_eq!((f0, c0), (0.0, 0.0));
    }

    #[test]
    fn age_histogram_shape() {
        let mut tests = Vec::new();
        for age in [10u64, 50, 120, 300, 9_000] {
            let mut e = entry(
                UserFailure::PacketLoss,
                WorkloadTag::Random,
                Some("DH5"),
                None,
                1,
            );
            e.packets_sent_before = Some(age);
            tests.push(e);
        }
        let h = AgeHistogram::from_tests(&tests, 1_000, 10_000);
        assert_eq!(h.total, 5);
        assert_eq!(h.bins[0], 4);
        assert_eq!(h.bins[9], 1);
        assert!(h.young_dominated());
        assert!((h.percent(0) - 80.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "align to bins")]
    fn histogram_guards_alignment() {
        let _ = AgeHistogram::from_tests(&[], 300, 1_000);
    }
}
