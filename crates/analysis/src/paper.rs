//! Published reference values of the paper, as printed by the `repro_*`
//! binaries next to their measurements.
//!
//! Table 2/Table 3 ground truth lives in `btpan_faults::profiles` (it
//! doubles as injection calibration); this module holds the values that
//! are *outputs only*: Table 4, the headline improvements, the figure
//! shapes and the section-6 findings.

/// One Table 4 column as published.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table4Column {
    /// Scenario label.
    pub label: &'static str,
    /// MTTF in seconds.
    pub mttf_s: f64,
    /// MTTR in seconds.
    pub mttr_s: f64,
    /// TTF standard deviation.
    pub ttf_std_s: f64,
    /// TTR standard deviation.
    pub ttr_std_s: f64,
    /// Availability.
    pub availability: f64,
    /// Coverage percentage.
    pub coverage_percent: f64,
    /// Masking percentage.
    pub masking_percent: f64,
}

/// Table 4 as published (availability of the reboot-only and
/// app-restart scenarios are the paper's measured upper bounds 0.688 and
/// <0.907).
pub const TABLE4: [Table4Column; 4] = [
    Table4Column {
        label: "Only Reboot",
        mttf_s: 630.56,
        mttr_s: 285.92,
        ttf_std_s: 2833.05,
        ttr_std_s: 263.71,
        availability: 0.688,
        coverage_percent: 0.0,
        masking_percent: 0.0,
    },
    Table4Column {
        label: "App restart and Reboot",
        mttf_s: 831.38,
        mttr_s: 85.12,
        ttf_std_s: 2984.12,
        ttr_std_s: 112.64,
        availability: 0.907,
        coverage_percent: 0.0,
        masking_percent: 0.0,
    },
    Table4Column {
        label: "With only SIRAs",
        mttf_s: 845.54,
        mttr_s: 70.94,
        ttf_std_s: 2997.36,
        ttr_std_s: 99.4,
        availability: 0.923,
        coverage_percent: 58.4,
        masking_percent: 0.0,
    },
    Table4Column {
        label: "SIRAs and masking",
        mttf_s: 1905.05,
        mttr_s: 120.84,
        ttf_std_s: 5311.72,
        ttr_std_s: 128.17,
        availability: 0.94,
        coverage_percent: 73.61,
        masking_percent: 58.0,
    },
];

/// Published TTF envelope (min 11 s / max 117 893 s across scenarios).
pub const TTF_MIN_S: f64 = 11.0;
/// Published TTF maximum.
pub const TTF_MAX_S: f64 = 117_893.0;
/// Published TTR maximum.
pub const TTR_MAX_S: f64 = 7_366.0;

/// Headline availability improvement relative to scenario 2 (percent).
pub const AVAILABILITY_IMPROVEMENT_VS_SCENARIO2: f64 = 3.64;
/// Headline availability improvement relative to scenario 1 (percent).
pub const AVAILABILITY_IMPROVEMENT_VS_SCENARIO1: f64 = 36.6;
/// Headline MTTF (reliability) improvement (percent).
pub const MTTF_IMPROVEMENT: f64 = 202.0;

/// The coalescence window chosen at the knee of Fig. 2 (seconds).
pub const COALESCENCE_WINDOW_S: f64 = 330.0;

/// Campaign totals: failure data items collected over 18 months.
pub const TOTAL_FAILURE_ITEMS: u64 = 356_551;
/// User-level failure reports among them.
pub const USER_LEVEL_REPORTS: u64 = 20_854;
/// System-level entries among them.
pub const SYSTEM_LEVEL_ENTRIES: u64 = 335_697;

/// The random/realistic failure split (percent from the random WL).
pub const RANDOM_WL_FAILURE_SHARE: f64 = 84.0;

/// Fig. 3a expected ordering of packet-loss share by packet type,
/// most-losing first: single-slot before multi-slot, DM before DH at
/// equal slot count.
pub const FIG3A_ORDER: [&str; 6] = ["DM1", "DH1", "DM3", "DH3", "DM5", "DH5"];

/// Fig. 3c expected ordering of packet-loss share by application,
/// most-losing first.
pub const FIG3C_ORDER: [&str; 5] = ["P2P", "Streaming", "FTP", "Web", "Mail"];

/// Mean idle time before failed cycles (seconds).
pub const IDLE_BEFORE_FAILED_S: f64 = 27.3;
/// Mean idle time before clean cycles (seconds).
pub const IDLE_BEFORE_CLEAN_S: f64 = 26.9;

/// Distance shares of failures at 0.5 m / 5 m / 7 m (percent, bind
/// excluded).
pub const DISTANCE_SHARES: [(f64, f64); 3] = [(0.5, 33.33), (5.0, 37.14), (7.0, 29.63)];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_internally_consistent() {
        for col in TABLE4 {
            let a = col.mttf_s / (col.mttf_s + col.mttr_s);
            // Availability column matches MTTF/(MTTF+MTTR) within
            // rounding (scenario 2 is reported as an upper bound).
            assert!((a - col.availability).abs() < 0.011, "{}: {a}", col.label);
        }
    }

    #[test]
    fn headline_improvements_recomputable() {
        let base1 = TABLE4[0].availability;
        let base2 = TABLE4[1].availability;
        let best = TABLE4[3].availability;
        assert!(
            (100.0 * (best - base1) / base1 - AVAILABILITY_IMPROVEMENT_VS_SCENARIO1).abs() < 0.5
        );
        assert!(
            (100.0 * (best - base2) / base2 - AVAILABILITY_IMPROVEMENT_VS_SCENARIO2).abs() < 0.5
        );
        let mttf = 100.0 * (TABLE4[3].mttf_s - TABLE4[0].mttf_s) / TABLE4[0].mttf_s;
        assert!(
            (mttf - MTTF_IMPROVEMENT).abs() < 1.0,
            "mttf improvement {mttf}"
        );
    }

    #[test]
    fn campaign_totals_add_up() {
        assert_eq!(
            USER_LEVEL_REPORTS + SYSTEM_LEVEL_ENTRIES,
            TOTAL_FAILURE_ITEMS
        );
    }

    #[test]
    fn distance_shares_sum_to_100() {
        let total: f64 = DISTANCE_SHARES.iter().map(|(_, p)| p).sum();
        assert!((total - 100.0).abs() < 0.2, "total {total}");
    }

    #[test]
    fn mttf_ordering_across_scenarios() {
        assert!(TABLE4[0].mttf_s < TABLE4[1].mttf_s);
        assert!(TABLE4[1].mttf_s < TABLE4[2].mttf_s);
        assert!(TABLE4[2].mttf_s < TABLE4[3].mttf_s);
        // MTTR: reboot-only worst; SIRAs best; masking in between.
        assert!(TABLE4[0].mttr_s > TABLE4[3].mttr_s);
        assert!(TABLE4[3].mttr_s > TABLE4[2].mttr_s);
    }
}
