//! ASCII table rendering for the repro binaries and EXPERIMENTS.md.

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Alignment {
    /// Left-aligned (labels).
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// Formats one row given column widths and alignments.
///
/// # Panics
///
/// Panics if the lengths of `cells`, `widths` and `aligns` differ.
pub fn format_row(cells: &[String], widths: &[usize], aligns: &[Alignment]) -> String {
    assert_eq!(cells.len(), widths.len(), "cells vs widths");
    assert_eq!(cells.len(), aligns.len(), "cells vs aligns");
    let mut out = String::from("|");
    for ((cell, &w), align) in cells.iter().zip(widths).zip(aligns) {
        let cell = if cell.len() > w { &cell[..w] } else { cell };
        match align {
            Alignment::Left => out.push_str(&format!(" {cell:<w$} |")),
            Alignment::Right => out.push_str(&format!(" {cell:>w$} |")),
        }
    }
    out
}

/// Renders a full table with a header and separator.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "ragged table row");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let aligns: Vec<Alignment> = (0..cols)
        .map(|i| {
            if i == 0 {
                Alignment::Left
            } else {
                Alignment::Right
            }
        })
        .collect();
    let mut out = String::new();
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&format_row(&header_cells, &widths, &aligns));
    out.push('\n');
    out.push('|');
    for &w in &widths {
        out.push_str(&"-".repeat(w + 2));
        out.push('|');
    }
    out.push('\n');
    for row in rows {
        out.push_str(&format_row(row, &widths, &aligns));
        out.push('\n');
    }
    out
}

/// Renders a paper-vs-measured comparison table: each row is
/// `(label, paper value, measured value)`; a delta column is computed.
pub fn render_comparison(title: &str, rows: &[(String, f64, f64)]) -> String {
    let mut table_rows = Vec::with_capacity(rows.len());
    for (label, paper, measured) in rows {
        let delta = if paper.abs() > 1e-12 {
            format!("{:+.1}%", 100.0 * (measured - paper) / paper)
        } else {
            "-".to_string()
        };
        table_rows.push(vec![
            label.clone(),
            format!("{paper:.2}"),
            format!("{measured:.2}"),
            delta,
        ]);
    }
    format!(
        "## {title}\n{}",
        render_table(&["metric", "paper", "measured", "delta"], &table_rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_alignment() {
        let row = format_row(
            &["ab".into(), "1".into()],
            &[4, 5],
            &[Alignment::Left, Alignment::Right],
        );
        assert_eq!(row, "| ab   |     1 |");
    }

    #[test]
    fn table_renders_with_header() {
        let out = render_table(
            &["name", "value"],
            &[vec!["x".into(), "1".into()], vec!["y".into(), "22".into()]],
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[1].starts_with("|-"));
        assert!(lines[3].contains("22"));
    }

    #[test]
    fn comparison_includes_delta() {
        let out = render_comparison(
            "Availability",
            &[("A".into(), 0.688, 0.70), ("B".into(), 0.0, 1.0)],
        );
        assert!(out.contains("## Availability"));
        assert!(out.contains("+1.7%"));
        assert!(out.contains(" - "));
    }

    #[test]
    fn long_cells_truncated() {
        let row = format_row(&["abcdefgh".into()], &[4], &[Alignment::Left]);
        assert_eq!(row, "| abcd |");
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        let _ = render_table(&["a", "b"], &[vec!["only-one".into()]]);
    }
}
