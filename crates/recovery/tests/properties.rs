//! Property-based tests over the recovery machinery.

use btpan_faults::UserFailure;
use btpan_recovery::executor::execute_cascade;
use btpan_recovery::masking::{MaskOutcome, Masking};
use btpan_recovery::policy::RecoveryPolicy;
use btpan_recovery::sira::SiraCosts;
use btpan_sim::prelude::*;
use btpan_sim::time::SimDuration;
use proptest::prelude::*;

proptest! {
    #[test]
    fn cascade_always_terminates_with_consistent_outcome(seed in 0u64..5_000, f_idx in 0usize..10, pda in any::<bool>()) {
        let f = UserFailure::ALL[f_idx];
        let costs = SiraCosts::default();
        let mut rng = SimRng::seed_from(seed);
        let out = execute_cascade(f, &costs, pda, &mut rng);
        prop_assert!(out.attempted.len() <= 7);
        match out.severity {
            Some(s) => {
                prop_assert_eq!(out.attempted.len(), s as usize);
                prop_assert_eq!(out.succeeded_by.map(|a| a.severity()), Some(s));
            }
            None => {
                prop_assert!(out.attempted.is_empty());
                prop_assert_eq!(f, UserFailure::DataMismatch);
            }
        }
        // TTR is positive and within the paper's envelope plus detection.
        prop_assert!(out.duration > SimDuration::ZERO);
        prop_assert!(out.duration < SimDuration::from_secs(12_000));
    }

    #[test]
    fn deeper_severities_cost_more_on_average(seed in 0u64..500) {
        let costs = SiraCosts::default();
        let mut rng = SimRng::seed_from(seed);
        let mut by_sev: Vec<Vec<f64>> = vec![Vec::new(); 8];
        for _ in 0..300 {
            let out = execute_cascade(UserFailure::PacketLoss, &costs, false, &mut rng);
            if let Some(s) = out.severity {
                by_sev[s as usize].push(out.duration.as_secs_f64());
            }
        }
        let mean = |v: &Vec<f64>| v.iter().sum::<f64>() / v.len().max(1) as f64;
        // Compare the two most common severity buckets when populated.
        if by_sev[2].len() > 5 && by_sev[6].len() > 5 {
            prop_assert!(mean(&by_sev[6]) > mean(&by_sev[2]));
        }
    }

    #[test]
    fn every_policy_recovers_every_failure(seed in 0u64..2_000, f_idx in 0usize..10, p_idx in 0usize..4) {
        let f = UserFailure::ALL[f_idx];
        let policy = RecoveryPolicy::ALL[p_idx];
        let costs = SiraCosts::default();
        let mut rng = SimRng::seed_from(seed);
        let out = policy.recover(f, &costs, false, &mut rng);
        prop_assert!(out.duration > SimDuration::ZERO);
        if matches!(policy, RecoveryPolicy::RebootOnly) {
            prop_assert!(out.rebooted());
        }
    }

    #[test]
    fn masking_delay_bounded(seed in 0u64..5_000, f_idx in 0usize..10) {
        let f = UserFailure::ALL[f_idx];
        let m = Masking::all();
        let mut rng = SimRng::seed_from(seed);
        if let MaskOutcome::Masked { delay, retries } = m.try_mask(f, &mut rng) {
            prop_assert!((1..=Masking::MAX_RETRIES).contains(&retries));
            prop_assert!(delay <= Masking::RETRY_WAIT * u64::from(Masking::MAX_RETRIES));
            prop_assert!(matches!(
                f,
                UserFailure::NapNotFound | UserFailure::SwitchRoleCommandFailed
            ));
        }
    }
}
