//! Live Table 3: per-SIRA attempt/success counters and recovery timing.
//!
//! Every [`crate::RecoveryOutcome`] produced anywhere in the workspace —
//! the cascade executor and the two non-cascade policy branches — flows
//! through [`record_outcome`], so the registry carries, at any instant, a
//! streaming equivalent of the paper's Table 3: the
//! `btpan_recovery_recovered_total{failure=…,sira=…}` family counts which
//! action recovered which failure, and
//! `btpan_recovery_unrecoverable_total{failure=…}` counts the data
//! mismatches no SIRA can heal.

use btpan_faults::{Sira, UserFailure};
use btpan_obs::{Counter, Histogram, Registry};
use std::sync::OnceLock;

pub(crate) struct RecoveryMetrics {
    /// `btpan_recovery_outcomes_total` — recoveries executed.
    pub outcomes: Counter,
    /// `btpan_recovery_attempts_total{sira=…}` — one per action tried.
    pub attempts: [Counter; 7],
    /// `btpan_recovery_recovered_total{failure=…,sira=…}` — Table 3 cells.
    pub recovered: [[Counter; 7]; 10],
    /// `btpan_recovery_unrecoverable_total{failure=…}`.
    pub unrecoverable: [Counter; 10],
    /// `btpan_recovery_duration_us` — simulated detection + recovery time.
    pub duration_us: Histogram,
}

pub(crate) fn handles() -> &'static RecoveryMetrics {
    static HANDLES: OnceLock<RecoveryMetrics> = OnceLock::new();
    HANDLES.get_or_init(|| {
        let registry = Registry::global();
        RecoveryMetrics {
            outcomes: registry.counter("btpan_recovery_outcomes_total"),
            attempts: Sira::ALL.map(|sira| {
                registry.counter_with("btpan_recovery_attempts_total", &[("sira", sira.label())])
            }),
            recovered: UserFailure::ALL.map(|failure| {
                Sira::ALL.map(|sira| {
                    registry.counter_with(
                        "btpan_recovery_recovered_total",
                        &[("failure", failure.label()), ("sira", sira.label())],
                    )
                })
            }),
            unrecoverable: UserFailure::ALL.map(|failure| {
                registry.counter_with(
                    "btpan_recovery_unrecoverable_total",
                    &[("failure", failure.label())],
                )
            }),
            duration_us: registry.histogram("btpan_recovery_duration_us"),
        }
    })
}

/// Records one finished recovery into the live Table 3 counters.
pub(crate) fn record_outcome(outcome: &crate::RecoveryOutcome) {
    let obs = handles();
    obs.outcomes.inc();
    for sira in &outcome.attempted {
        obs.attempts[sira.index()].inc();
    }
    match outcome.succeeded_by {
        Some(sira) => obs.recovered[outcome.failure.index()][sira.index()].inc(),
        None => obs.unrecoverable[outcome.failure.index()].inc(),
    }
    obs.duration_us.observe(outcome.duration.as_micros());
}
