//! Error-masking strategies.
//!
//! Three strategies fall out of the error–failure analysis:
//!
//! 1. **Bind wait** — wait for `T_C` (valid L2CAP handle) and `T_H`
//!    (hotplug-notified interface readiness) before binding. This is
//!    implemented *mechanically* by
//!    `btpan_stack::socket::IpSocket::bind_masked`; it eliminates bind
//!    failures entirely, at the cost of the residual setup wait.
//! 2. **Command retry** — "repeating the action up to 2 times (with 1
//!    second wait between a retry and the successive) is enough to let
//!    the underneath transient cause disappear" — for switch-role
//!    command failures and NAP-not-found.
//! 3. **SDP first** — 96.5 % of PAN-connect failures manifest when the
//!    SDP search is skipped; always searching first masks exactly those.

use btpan_faults::UserFailure;
use btpan_sim::prelude::*;
use btpan_sim::time::SimDuration;

/// Outcome of attempting to mask a would-be failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaskOutcome {
    /// The failure was prevented; the cycle continues after `delay`.
    Masked {
        /// Time spent waiting/retrying.
        delay: SimDuration,
        /// Retries consumed (0 for pure waits).
        retries: u8,
    },
    /// The cause was not transient; the failure manifests anyway.
    NotMasked,
}

impl MaskOutcome {
    /// True if the failure was prevented.
    pub fn is_masked(&self) -> bool {
        matches!(self, MaskOutcome::Masked { .. })
    }
}

/// The masking configuration (which strategies are active).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Masking {
    /// Strategy 1: wait for `T_C`/`T_H` before binding.
    pub bind_wait: bool,
    /// Strategy 2: ≤2 retries with 1 s spacing for transient commands.
    pub command_retry: bool,
    /// Strategy 3: always perform the SDP search before PAN connect.
    pub sdp_first: bool,
}

impl Masking {
    /// All strategies on (the paper's enhanced testbed).
    pub fn all() -> Self {
        Masking {
            bind_wait: true,
            command_retry: true,
            sdp_first: true,
        }
    }

    /// All strategies off (the measurement testbed).
    pub fn none() -> Self {
        Masking {
            bind_wait: false,
            command_retry: false,
            sdp_first: false,
        }
    }

    /// Maximum retries of strategy 2.
    pub const MAX_RETRIES: u8 = 2;
    /// Wait between retries.
    pub const RETRY_WAIT: SimDuration = SimDuration::from_secs(1);
    /// Probability the underlying cause of a retryable failure is
    /// transient (disappears within the retry budget).
    pub const TRANSIENT_PROBABILITY: f64 = 0.95;

    /// Attempts to mask a would-be `failure` under this configuration.
    ///
    /// Bind failures are *not* handled here — with `bind_wait` on, the
    /// workload calls `bind_masked` and the failure never reaches the
    /// masking layer; this method asserts that contract.
    pub fn try_mask(&self, failure: UserFailure, rng: &mut SimRng) -> MaskOutcome {
        match failure {
            UserFailure::NapNotFound | UserFailure::SwitchRoleCommandFailed
                if self.command_retry =>
            {
                if rng.chance(Self::TRANSIENT_PROBABILITY) {
                    // The transient clears on the 1st or 2nd retry.
                    let retries = if rng.chance(0.8) { 1 } else { 2 };
                    MaskOutcome::Masked {
                        delay: Self::RETRY_WAIT * u64::from(retries),
                        retries,
                    }
                } else {
                    MaskOutcome::NotMasked
                }
            }
            // SDP-first changes the *workflow* (the PAN connect runs in
            // the low-risk with-SDP regime); a failure that still
            // manifests there is genuinely not maskable.
            _ => MaskOutcome::NotMasked,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from(0x3A5C)
    }

    #[test]
    fn retry_masks_most_nap_not_found() {
        let m = Masking::all();
        let mut r = rng();
        let n = 30_000;
        let masked = (0..n)
            .filter(|_| m.try_mask(UserFailure::NapNotFound, &mut r).is_masked())
            .count();
        let frac = masked as f64 / n as f64;
        assert!((frac - 0.95).abs() < 0.01, "masked frac {frac}");
    }

    #[test]
    fn retry_delay_within_budget() {
        let m = Masking::all();
        let mut r = rng();
        for _ in 0..5_000 {
            if let MaskOutcome::Masked { delay, retries } =
                m.try_mask(UserFailure::SwitchRoleCommandFailed, &mut r)
            {
                assert!((1..=Masking::MAX_RETRIES).contains(&retries));
                assert!(delay <= Masking::RETRY_WAIT * 2);
            }
        }
    }

    #[test]
    fn disabled_masking_masks_nothing() {
        let m = Masking::none();
        let mut r = rng();
        for f in UserFailure::ALL {
            assert_eq!(m.try_mask(f, &mut r), MaskOutcome::NotMasked);
        }
    }

    #[test]
    fn non_retryable_failures_pass_through() {
        let m = Masking::all();
        let mut r = rng();
        for f in [
            UserFailure::ConnectFailed,
            UserFailure::PacketLoss,
            UserFailure::InquiryScanFailed,
            UserFailure::DataMismatch,
        ] {
            assert_eq!(m.try_mask(f, &mut r), MaskOutcome::NotMasked);
        }
    }

    #[test]
    fn configurations() {
        assert!(Masking::all().bind_wait);
        assert!(Masking::all().sdp_first);
        assert!(!Masking::none().command_retry);
    }
}
