//! The SIRA cascade executor.
//!
//! Attempts actions in cost order until one succeeds. Which action
//! succeeds is drawn from the Table 3 ground-truth profile of the
//! failure ("this is the only viable approach, since we do not have any
//! a priori knowledge about the best recovery to perform"): the executor
//! *attempts* every cheaper action first and pays its cost, exactly like
//! the testbed did.

use crate::sira::SiraCosts;
use btpan_faults::{Sira, SiraProfiles, UserFailure};
use btpan_sim::prelude::*;
use btpan_sim::time::SimDuration;
use serde::{Deserialize, Serialize};

/// The outcome of recovering (or failing to recover) one failure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecoveryOutcome {
    /// The failure that was recovered.
    pub failure: UserFailure,
    /// The action that finally succeeded (`None` for unrecoverable
    /// failures, i.e. data mismatch).
    pub succeeded_by: Option<Sira>,
    /// The failure's severity (1–7), when recoverable.
    pub severity: Option<u8>,
    /// Every action attempted, in order.
    pub attempted: Vec<Sira>,
    /// Total recovery time including detection.
    pub duration: SimDuration,
}

impl RecoveryOutcome {
    /// True when the recovery needed neither an application restart nor
    /// a reboot — the paper's failure-mode *coverage* criterion.
    pub fn counts_for_coverage(&self) -> bool {
        matches!(self.severity, Some(s) if s <= 3)
    }

    /// True when the node had to reboot at least once.
    pub fn rebooted(&self) -> bool {
        self.attempted
            .iter()
            .any(|s| matches!(s, Sira::SystemReboot | Sira::MultiSystemReboot))
    }
}

/// Runs the full SIRA cascade for `failure` on a PC/PDA host.
///
/// Draws the recovering severity from [`SiraProfiles`], then pays the
/// detection delay plus the cost of every action up to and including the
/// successful one. Data mismatch produces an outcome with no recovery
/// (detection cost only) — "a real application cannot know the actual
/// instance of data being transferred".
pub fn execute_cascade(
    failure: UserFailure,
    costs: &SiraCosts,
    is_pda: bool,
    rng: &mut SimRng,
) -> RecoveryOutcome {
    let mut duration = costs.detection_delay(failure, rng);
    let outcome = match SiraProfiles::sample_severity(failure, rng) {
        None => RecoveryOutcome {
            failure,
            succeeded_by: None,
            severity: None,
            attempted: Vec::new(),
            duration,
        },
        Some(severity) => {
            let mut attempted = Vec::with_capacity(severity as usize);
            for sira in Sira::ALL.iter().take(severity as usize) {
                duration += costs.sample(*sira, is_pda, rng);
                attempted.push(*sira);
            }
            RecoveryOutcome {
                failure,
                succeeded_by: Some(Sira::ALL[severity as usize - 1]),
                severity: Some(severity),
                attempted,
                duration,
            }
        }
    };
    crate::metrics::record_outcome(&outcome);
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from(0x51A)
    }

    #[test]
    fn cascade_attempts_prefix_of_actions() {
        let costs = SiraCosts::default();
        let mut r = rng();
        for _ in 0..500 {
            let out = execute_cascade(UserFailure::ConnectFailed, &costs, false, &mut r);
            let sev = out.severity.unwrap() as usize;
            assert_eq!(out.attempted.len(), sev);
            assert_eq!(out.attempted, Sira::ALL[..sev].to_vec());
            assert_eq!(out.succeeded_by, Some(Sira::ALL[sev - 1]));
        }
    }

    #[test]
    fn severity_distribution_tracks_table3() {
        let costs = SiraCosts::default();
        let mut r = rng();
        let n = 40_000;
        let mut stack_reset = 0;
        for _ in 0..n {
            let out = execute_cascade(UserFailure::NapNotFound, &costs, false, &mut r);
            if out.severity == Some(3) {
                stack_reset += 1;
            }
        }
        let frac = stack_reset as f64 / n as f64;
        assert!((frac - 0.614).abs() < 0.01, "stack reset frac {frac}");
    }

    #[test]
    fn data_mismatch_unrecoverable() {
        let costs = SiraCosts::default();
        let mut r = rng();
        let out = execute_cascade(UserFailure::DataMismatch, &costs, false, &mut r);
        assert_eq!(out.succeeded_by, None);
        assert_eq!(out.severity, None);
        assert!(out.attempted.is_empty());
        assert!(!out.counts_for_coverage());
        assert!(out.duration < SimDuration::from_secs(2));
    }

    #[test]
    fn severe_failures_cost_more() {
        let costs = SiraCosts::default();
        let mut r = rng();
        let n = 3_000;
        let mean_ttr = |f: UserFailure, r: &mut SimRng| {
            (0..n)
                .map(|_| execute_cascade(f, &costs, false, r).duration.as_secs_f64())
                .sum::<f64>()
                / n as f64
        };
        // Connect-failed (84.6 % severity >= 4) vs bind (67.9 % <= 3).
        let connect = mean_ttr(UserFailure::ConnectFailed, &mut r);
        let bind = mean_ttr(UserFailure::BindFailed, &mut r);
        assert!(connect > bind * 1.5, "connect {connect} bind {bind}");
    }

    #[test]
    fn coverage_flag_matches_severity() {
        let costs = SiraCosts::default();
        let mut r = rng();
        for _ in 0..2_000 {
            let out = execute_cascade(UserFailure::PacketLoss, &costs, false, &mut r);
            assert_eq!(out.counts_for_coverage(), out.severity.unwrap() <= 3);
            assert_eq!(
                out.rebooted(),
                out.attempted.iter().any(|s| s.severity() >= 6)
            );
        }
    }

    #[test]
    fn duration_includes_detection() {
        let costs = SiraCosts::default();
        let mut r = rng();
        // Packet loss pays the 30 s receive timeout up front.
        let out = execute_cascade(UserFailure::PacketLoss, &costs, false, &mut r);
        assert!(out.duration >= SimDuration::from_secs(30));
    }

    #[test]
    fn outcome_serializes() {
        let costs = SiraCosts::default();
        let mut r = rng();
        let out = execute_cascade(UserFailure::BindFailed, &costs, false, &mut r);
        let json = serde_json::to_string(&out).unwrap();
        let back: RecoveryOutcome = serde_json::from_str(&json).unwrap();
        assert_eq!(back, out);
    }
}
