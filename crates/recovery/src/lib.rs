//! # btpan-recovery
//!
//! The Software-Implemented Recovery Actions (SIRAs) and error-masking
//! strategies of the paper, plus the four recovery policies Table 4
//! compares.
//!
//! "As soon as a failure is detected, several SIRAs are attempted in
//! cascade: when the i-th action does not succeed, the (i+1)-th action
//! is performed. The given recovery actions are ordered according to
//! their increasing costs. If action j was successful, the failure has
//! severity j."
//!
//! * [`sira`] — the per-action cost model (log-normal durations);
//! * [`executor`] — the cascade executor producing recovery outcomes
//!   with severity and accumulated recovery time;
//! * [`masking`] — the three masking strategies: the bind `T_C`/`T_H`
//!   wait (mechanically implemented in `btpan-stack`), the ≤2-retry
//!   command repeat for NAP-not-found / switch-role-command, and the
//!   SDP-before-PAN-connect practice;
//! * [`policy`] — `RebootOnly`, `AppRestartThenReboot`, `Siras`,
//!   `SirasAndMasking` — the four Table 4 columns.

pub mod executor;
pub mod masking;
pub(crate) mod metrics;
pub mod policy;
pub mod sira;

pub use executor::{execute_cascade, RecoveryOutcome};
pub use masking::{MaskOutcome, Masking};
pub use policy::RecoveryPolicy;
pub use sira::SiraCosts;
