//! SIRA cost model.
//!
//! Recovery actions are ordered by increasing cost in recovery time.
//! Durations are log-normal (positive, right-skewed — the paper's TTR
//! standard deviations rival the means) with PDAs slower to reboot.
//! Means are calibrated so the four Table 4 policies land near the
//! paper's MTTR figures (285.92 / 85.12 / 70.94 / 120.84 s).

use btpan_faults::Sira;
use btpan_sim::prelude::*;
use btpan_sim::time::SimDuration;

/// Duration model for the seven SIRAs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SiraCosts {
    /// Coefficient of variation of every action duration.
    pub cv: f64,
    /// Extra factor applied to reboot-class actions on PDAs.
    pub pda_reboot_factor: f64,
}

impl Default for SiraCosts {
    fn default() -> Self {
        SiraCosts {
            cv: 0.45,
            pda_reboot_factor: 1.3,
        }
    }
}

impl SiraCosts {
    /// Mean duration in seconds of one action (PC class).
    pub fn mean_seconds(&self, sira: Sira) -> f64 {
        match sira {
            Sira::IpSocketReset => 1.0,
            Sira::BtConnectionReset => 8.0,
            Sira::BtStackReset => 15.0,
            Sira::AppRestart => 28.0,
            // up to 3 consecutive restarts
            Sira::MultiAppRestart => 84.0,
            Sira::SystemReboot => 260.0,
            // up to 5 consecutive reboots
            Sira::MultiSystemReboot => 1_300.0,
        }
    }

    /// Samples the duration of one action on a PC or PDA host.
    pub fn sample(&self, sira: Sira, is_pda: bool, rng: &mut SimRng) -> SimDuration {
        let mut mean = self.mean_seconds(sira);
        if is_pda && matches!(sira, Sira::SystemReboot | Sira::MultiSystemReboot) {
            mean *= self.pda_reboot_factor;
        }
        let d = LogNormal::from_mean_cv(mean, self.cv).expect("valid cost lognormal");
        // Clamp to the paper's observed TTR envelope (min 2 s for any
        // real action, max 7366 s).
        SimDuration::from_secs_f64(d.sample(rng).clamp(0.5, 7_366.0))
    }

    /// Failure-detection latency before any action runs: "failure
    /// detection is performed by simply checking the return state of
    /// each BT or IP API" — near-instant for API errors, up to the 30 s
    /// receive timeout for packet loss.
    pub fn detection_delay(
        &self,
        failure: btpan_faults::UserFailure,
        rng: &mut SimRng,
    ) -> SimDuration {
        use btpan_faults::UserFailure;
        match failure {
            // The workload waits for an expected packet with a 30 s
            // timeout before declaring the loss.
            UserFailure::PacketLoss => SimDuration::from_secs(30),
            // Data mismatch is detected on content verification.
            UserFailure::DataMismatch => SimDuration::from_millis(rng.uniform_u64(100, 1_000)),
            // API-level failures surface within the command timeout.
            _ => SimDuration::from_millis(rng.uniform_u64(200, 4_000)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn costs_strictly_increase_along_cascade() {
        let c = SiraCosts::default();
        let mut prev = 0.0;
        for s in Sira::ALL {
            let m = c.mean_seconds(s);
            assert!(m > prev, "{s} mean {m} <= {prev}");
            prev = m;
        }
    }

    #[test]
    fn sample_means_track_configuration() {
        let c = SiraCosts::default();
        let mut rng = SimRng::seed_from(71);
        let n = 5_000;
        let mean = (0..n)
            .map(|_| c.sample(Sira::SystemReboot, false, &mut rng).as_secs_f64())
            .sum::<f64>()
            / n as f64;
        assert!((mean - 260.0).abs() < 15.0, "reboot mean {mean}");
    }

    #[test]
    fn pda_reboots_slower() {
        let c = SiraCosts::default();
        let mut rng = SimRng::seed_from(72);
        let n = 4_000;
        let mean = |pda: bool, rng: &mut SimRng| {
            (0..n)
                .map(|_| c.sample(Sira::SystemReboot, pda, rng).as_secs_f64())
                .sum::<f64>()
                / n as f64
        };
        let pc = mean(false, &mut rng);
        let pda = mean(true, &mut rng);
        assert!(pda > pc * 1.15, "pda {pda} pc {pc}");
        // PDA factor must not affect the cheap actions.
        let cheap_pc = (0..n)
            .map(|_| c.sample(Sira::IpSocketReset, false, &mut rng).as_secs_f64())
            .sum::<f64>()
            / n as f64;
        let cheap_pda = (0..n)
            .map(|_| c.sample(Sira::IpSocketReset, true, &mut rng).as_secs_f64())
            .sum::<f64>()
            / n as f64;
        assert!((cheap_pc - cheap_pda).abs() < 0.2);
    }

    #[test]
    fn durations_within_paper_envelope() {
        let c = SiraCosts::default();
        let mut rng = SimRng::seed_from(73);
        for s in Sira::ALL {
            for _ in 0..2_000 {
                let d = c.sample(s, true, &mut rng).as_secs_f64();
                assert!((0.5..=7_366.0).contains(&d), "{s}: {d}");
            }
        }
    }

    #[test]
    fn packet_loss_detection_is_the_30s_timeout() {
        let c = SiraCosts::default();
        let mut rng = SimRng::seed_from(74);
        assert_eq!(
            c.detection_delay(btpan_faults::UserFailure::PacketLoss, &mut rng),
            SimDuration::from_secs(30)
        );
        let d = c.detection_delay(btpan_faults::UserFailure::ConnectFailed, &mut rng);
        assert!(d < SimDuration::from_secs(5));
    }
}
