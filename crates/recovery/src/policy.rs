//! The four recovery policies of Table 4.
//!
//! Two "typical user" scenarios bound the unaided experience — reboot on
//! every failure, or try an application restart first and reboot if the
//! application fails again — against the instrumented testbed with
//! automated SIRAs, with and without error masking. User thinking time
//! is excluded ("we assume the user thinking time is zero, to obtain
//! upper-bound measures").

use crate::executor::{execute_cascade, RecoveryOutcome};
use crate::masking::Masking;
use crate::sira::SiraCosts;
use btpan_faults::{Sira, SiraProfiles, UserFailure};
use btpan_sim::prelude::*;
use std::fmt;

/// The four policies compared in Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecoveryPolicy {
    /// Scenario i: the user reboots the terminal on every failure.
    RebootOnly,
    /// Scenario ii: restart the application; if it fails again, reboot.
    AppRestartThenReboot,
    /// The instrumented testbed: the full SIRA cascade.
    Siras,
    /// SIRAs plus the error-masking strategies.
    SirasAndMasking,
}

impl RecoveryPolicy {
    /// Probability that an application restart which *could* have fixed
    /// the failure lands in the same environmental conditions and fails
    /// again immediately (scenario ii.2 of the paper), forcing the
    /// reboot. Calibrated against Table 4's 85.12 s scenario-2 MTTR.
    pub const P_RECUR_AFTER_RESTART: f64 = 0.08;

    /// All four policies in Table 4 column order.
    pub const ALL: [RecoveryPolicy; 4] = [
        RecoveryPolicy::RebootOnly,
        RecoveryPolicy::AppRestartThenReboot,
        RecoveryPolicy::Siras,
        RecoveryPolicy::SirasAndMasking,
    ];

    /// Whether this policy runs with masking strategies active.
    pub fn masking(&self) -> Masking {
        match self {
            RecoveryPolicy::SirasAndMasking => Masking::all(),
            _ => Masking::none(),
        }
    }

    /// Table label.
    pub const fn label(self) -> &'static str {
        match self {
            RecoveryPolicy::RebootOnly => "Only Reboot",
            RecoveryPolicy::AppRestartThenReboot => "App restart and Reboot",
            RecoveryPolicy::Siras => "With only SIRAs",
            RecoveryPolicy::SirasAndMasking => "SIRAs and masking",
        }
    }

    /// Recovers one `failure` under this policy, returning the outcome
    /// (actions attempted, severity, recovery time).
    pub fn recover(
        &self,
        failure: UserFailure,
        costs: &SiraCosts,
        is_pda: bool,
        rng: &mut SimRng,
    ) -> RecoveryOutcome {
        match self {
            RecoveryPolicy::Siras | RecoveryPolicy::SirasAndMasking => {
                execute_cascade(failure, costs, is_pda, rng)
            }
            RecoveryPolicy::RebootOnly => {
                let mut duration = costs.detection_delay(failure, rng);
                duration += costs.sample(Sira::SystemReboot, is_pda, rng);
                let outcome = RecoveryOutcome {
                    failure,
                    succeeded_by: Some(Sira::SystemReboot),
                    severity: Some(Sira::SystemReboot.severity()),
                    attempted: vec![Sira::SystemReboot],
                    duration,
                };
                crate::metrics::record_outcome(&outcome);
                outcome
            }
            RecoveryPolicy::AppRestartThenReboot => {
                let mut duration = costs.detection_delay(failure, rng);
                duration += costs.sample(Sira::AppRestart, is_pda, rng);
                // Does the restart fix it? The failure's intrinsic
                // severity decides: severities <= 4 are cleared by an
                // application restart (any cheaper action's effect is
                // subsumed); deeper ones resurface and force the reboot.
                // Even a nominally-sufficient restart can land in the
                // same environmental conditions and "fail again"
                // (scenario ii.2), sending the user to the reboot.
                let intrinsic = SiraProfiles::sample_severity(failure, rng);
                let recurs = rng.chance(Self::P_RECUR_AFTER_RESTART);
                let outcome = match intrinsic {
                    Some(s) if s <= Sira::AppRestart.severity() && !recurs => RecoveryOutcome {
                        failure,
                        succeeded_by: Some(Sira::AppRestart),
                        severity: Some(Sira::AppRestart.severity()),
                        attempted: vec![Sira::AppRestart],
                        duration,
                    },
                    _ => {
                        duration += costs.sample(Sira::SystemReboot, is_pda, rng);
                        RecoveryOutcome {
                            failure,
                            succeeded_by: Some(Sira::SystemReboot),
                            severity: Some(Sira::SystemReboot.severity()),
                            attempted: vec![Sira::AppRestart, Sira::SystemReboot],
                            duration,
                        }
                    }
                };
                crate::metrics::record_outcome(&outcome);
                outcome
            }
        }
    }
}

impl fmt::Display for RecoveryPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from(0x90C1)
    }

    fn mean_ttr(policy: RecoveryPolicy, failure: UserFailure, n: u32) -> f64 {
        let costs = SiraCosts::default();
        let mut r = rng();
        (0..n)
            .map(|_| {
                policy
                    .recover(failure, &costs, false, &mut r)
                    .duration
                    .as_secs_f64()
            })
            .sum::<f64>()
            / f64::from(n)
    }

    #[test]
    fn reboot_only_always_reboots() {
        let costs = SiraCosts::default();
        let mut r = rng();
        let out =
            RecoveryPolicy::RebootOnly.recover(UserFailure::BindFailed, &costs, false, &mut r);
        assert_eq!(out.attempted, vec![Sira::SystemReboot]);
        assert!(out.rebooted());
        // MTTR of the reboot scenario ≈ 260 s + detection (paper 285.92).
        let m = mean_ttr(
            RecoveryPolicy::RebootOnly,
            UserFailure::ConnectFailed,
            3_000,
        );
        assert!((m - 262.0).abs() < 20.0, "reboot-only mttr {m}");
    }

    #[test]
    fn app_restart_policy_escalates_for_severe_failures() {
        // Connect-failed is severe (84.6 % >= app restart); many runs
        // escalate. Bind is shallow; most do not.
        let costs = SiraCosts::default();
        let mut r = rng();
        let escalations = |f: UserFailure, r: &mut SimRng| {
            (0..4_000)
                .filter(|_| {
                    RecoveryPolicy::AppRestartThenReboot
                        .recover(f, &costs, false, r)
                        .rebooted()
                })
                .count()
        };
        let connect = escalations(UserFailure::ConnectFailed, &mut r);
        let bind = escalations(UserFailure::BindFailed, &mut r);
        // The 8 % recurrence floor lifts both; the severity gap still
        // dominates.
        assert!(connect > bind * 3, "connect {connect} bind {bind}");
    }

    #[test]
    fn policy_mttr_ordering_matches_table4() {
        // Weighted by the ground-truth failure mix the ordering is
        // reboot-only >> app-restart > SIRAs (Table 4: 285.9 / 85.1 /
        // 70.9 s).
        let weighted = |policy: RecoveryPolicy| -> f64 {
            UserFailure::ALL
                .iter()
                .map(|&f| btpan_faults::FAILURE_MIX[f.index()] / 100.0 * mean_ttr(policy, f, 1_500))
                .sum()
        };
        let reboot = weighted(RecoveryPolicy::RebootOnly);
        let app = weighted(RecoveryPolicy::AppRestartThenReboot);
        let siras = weighted(RecoveryPolicy::Siras);
        assert!(reboot > 2.0 * app, "reboot {reboot} app {app}");
        assert!(app > siras, "app {app} siras {siras}");
        // Absolute bands: within ~35 % of the paper's figures.
        assert!((reboot - 285.9).abs() < 100.0, "reboot mttr {reboot}");
        assert!((siras - 70.9).abs() < 35.0, "siras mttr {siras}");
    }

    #[test]
    fn masking_flag_per_policy() {
        assert!(RecoveryPolicy::SirasAndMasking.masking().bind_wait);
        assert!(!RecoveryPolicy::Siras.masking().bind_wait);
        assert!(!RecoveryPolicy::RebootOnly.masking().command_retry);
    }

    #[test]
    fn labels_match_table4_columns() {
        assert_eq!(RecoveryPolicy::RebootOnly.to_string(), "Only Reboot");
        assert_eq!(
            RecoveryPolicy::SirasAndMasking.to_string(),
            "SIRAs and masking"
        );
        assert_eq!(RecoveryPolicy::ALL.len(), 4);
    }

    #[test]
    fn data_mismatch_under_user_policies_still_reboots() {
        // A user who reboots on every failure reboots on data mismatch
        // too (they cannot know it is unrecoverable).
        let costs = SiraCosts::default();
        let mut r = rng();
        let out =
            RecoveryPolicy::RebootOnly.recover(UserFailure::DataMismatch, &costs, false, &mut r);
        assert!(out.rebooted());
    }
}
