//! # btpan-workload
//!
//! The `BlueTest` synthetic workload: "applications running on real-world
//! Bluetooth PANs, emulating the behavior of Bluetooth users using
//! different profiles", run 24/7 so TTF/TTR can be measured.
//!
//! Each cycle executes the common BT utilization phases — inquiry/scan
//! (flag `S`), SDP search for the NAP (flag `SDP`), L2CAP + BNEP (PAN)
//! connect, role switch to slave, data transfer, disconnect — then waits
//! a Pareto-distributed passive off-time `T_W` (shape 1.5, after
//! Crovella & Bestavros).
//!
//! * [`cycle`] — cycle parameters and the connection plan abstraction;
//! * [`random`] — the **Random WL**: totally random `B`, `N`, `LS`,
//!   `LR`; a fresh connection every cycle. Used to study the channel
//!   irrespective of the application;
//! * [`realistic`] — the **Realistic WL**: parameters follow published
//!   Internet traffic models (Pareto resource sizes, per-application
//!   PDUs), 1–20 consecutive cycles per connection;
//! * [`traffic`] — the per-application traffic models (Web, FTP, Mail,
//!   P2P, audio/video streaming).

pub mod cycle;
pub mod random;
pub mod realistic;
pub mod traffic;

pub use cycle::{ConnectionPlan, CycleParams, WorkloadKind, WorkloadModel};
pub use random::RandomWorkload;
pub use realistic::RealisticWorkload;
pub use traffic::NetworkedApp;
