//! The Random WL: totally random channel stimulation.
//!
//! "It generates totally random values for `B`, `N`, `LS`, and `LR`. In
//! particular, `B` is randomly chosen among the six BT packet types
//! (i.e. DMx or DHx), according to a binomial distribution. This helps
//! to 'stimulate' the channel with every packet type. `N`, `LS`, and
//! `LR` are generated following uniform distributions." Each cycle runs
//! on its own connection — the Random WL "creates and destroys
//! connections frequently", which is why it produced 84 % of all
//! observed failures.

use crate::cycle::{ConnectionPlan, CycleParams, WorkloadKind, WorkloadModel};
use btpan_baseband::PacketType;
use btpan_sim::prelude::*;

/// Configuration of the Random WL generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomWorkload {
    /// Inclusive range of `N` (packets per cycle).
    pub n_range: (u64, u64),
    /// Inclusive range of `LS`/`LR` in bytes (up to the BNEP MTU).
    pub len_range: (u32, u32),
    /// Number of Bernoulli trials of the binomial packet-type pick
    /// (5 trials index the six types).
    binomial_trials: u32,
}

impl Default for RandomWorkload {
    fn default() -> Self {
        RandomWorkload::paper()
    }
}

impl RandomWorkload {
    /// The paper's configuration: `N` uniform 1–100, lengths uniform up
    /// to the 1691-byte BNEP MTU.
    pub fn paper() -> Self {
        RandomWorkload {
            n_range: (1, 100),
            len_range: (64, 1691),
            binomial_trials: 5,
        }
    }

    /// The special Fig. 3b variant: `N` fixed to 10 000 packets and both
    /// `LS`/`LR` fixed to 1691 bytes "in order to not introduce
    /// indetermination when estimating the failing connection length".
    pub fn fig3b_fixed() -> Self {
        RandomWorkload {
            n_range: (10_000, 10_000),
            len_range: (1691, 1691),
            binomial_trials: 5,
        }
    }

    /// Samples `B` with the binomial index over the six types.
    pub fn sample_packet_type(&self, rng: &mut SimRng) -> PacketType {
        let successes = (0..self.binomial_trials)
            .filter(|_| rng.chance(0.5))
            .count();
        PacketType::ALL[successes.min(PacketType::ALL.len() - 1)]
    }
}

impl WorkloadModel for RandomWorkload {
    fn kind(&self) -> WorkloadKind {
        WorkloadKind::Random
    }

    fn next_connection(&self, rng: &mut SimRng) -> ConnectionPlan {
        let params = CycleParams {
            scan: rng.chance(0.5),
            sdp: rng.chance(0.5),
            packet_type: Some(self.sample_packet_type(rng)),
            n_packets: rng.uniform_u64(self.n_range.0, self.n_range.1),
            ls: rng.uniform_u64(u64::from(self.len_range.0), u64::from(self.len_range.1)) as u32,
            lr: rng.uniform_u64(u64::from(self.len_range.0), u64::from(self.len_range.1)) as u32,
            off_time: CycleParams::sample_off_time(rng),
            app: None,
        };
        ConnectionPlan::new(vec![params])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_cycle_per_connection() {
        let wl = RandomWorkload::paper();
        let mut rng = SimRng::seed_from(50);
        for _ in 0..100 {
            let plan = wl.next_connection(&mut rng);
            assert_eq!(plan.len(), 1);
            assert!(plan.cycles[0].app.is_none());
        }
        assert_eq!(wl.kind(), WorkloadKind::Random);
    }

    #[test]
    fn parameters_within_ranges() {
        let wl = RandomWorkload::paper();
        let mut rng = SimRng::seed_from(51);
        for _ in 0..2_000 {
            let c = wl.next_connection(&mut rng).cycles[0];
            assert!((1..=100).contains(&c.n_packets));
            assert!((64..=1691).contains(&c.ls));
            assert!((64..=1691).contains(&c.lr));
            assert!(c.packet_type.is_some());
        }
    }

    #[test]
    fn binomial_covers_all_types_with_central_peak() {
        let wl = RandomWorkload::paper();
        let mut rng = SimRng::seed_from(52);
        let mut counts = [0u32; 6];
        let n = 60_000;
        for _ in 0..n {
            let pt = wl.sample_packet_type(&mut rng);
            counts[PacketType::ALL.iter().position(|&p| p == pt).unwrap()] += 1;
        }
        assert!(counts.iter().all(|&c| c > 0), "{counts:?}");
        // Binomial(5, 0.5): central types (idx 2,3) hold 10/16+.., tails 1/32.
        assert!(counts[2] > counts[0] * 5);
        assert!(counts[3] > counts[5] * 5);
        let tail_freq = counts[0] as f64 / n as f64;
        assert!((tail_freq - 1.0 / 32.0).abs() < 0.005, "{tail_freq}");
    }

    #[test]
    fn scan_and_sdp_flags_uniform() {
        let wl = RandomWorkload::paper();
        let mut rng = SimRng::seed_from(53);
        let n = 20_000;
        let scans = (0..n)
            .filter(|_| wl.next_connection(&mut rng).cycles[0].scan)
            .count();
        let freq = scans as f64 / n as f64;
        assert!((freq - 0.5).abs() < 0.02, "scan freq {freq}");
    }

    #[test]
    fn fig3b_variant_is_deterministic_in_size() {
        let wl = RandomWorkload::fig3b_fixed();
        let mut rng = SimRng::seed_from(54);
        for _ in 0..100 {
            let c = wl.next_connection(&mut rng).cycles[0];
            assert_eq!(c.n_packets, 10_000);
            assert_eq!(c.ls, 1691);
            assert_eq!(c.lr, 1691);
        }
    }
}
