//! The Realistic WL: traditional IP applications over the PAN.
//!
//! "It generates values for the parameters according to the random
//! processes which are used to model actual Internet traffic. The choice
//! for `B` is left to the BT Stack, whereas `N` follows power law
//! distributions related to the dimension of the resource that has to be
//! transferred. Values for `LS` and `LR` are set according to the actual
//! Protocol Data Unit commonly adopted for the various transport
//! protocols. Since a user can run more applications in sequence over
//! the same connection, the WL runs from 1 up to 20 consecutive cycles
//! over the same connection." Connection reuse makes this workload far
//! gentler than the Random WL: only 16 % of all failures came from it.

use crate::cycle::{ConnectionPlan, CycleParams, WorkloadKind, WorkloadModel};
use crate::traffic::NetworkedApp;
use btpan_sim::prelude::*;

/// Configuration of the Realistic WL generator.
#[derive(Debug, Clone, PartialEq)]
pub struct RealisticWorkload {
    /// Relative usage weights of the five applications (defaults to the
    /// uniform mix the testbed ran).
    pub app_weights: [f64; 5],
    /// Inclusive range of consecutive cycles per connection.
    pub cycles_range: (u64, u64),
}

impl Default for RealisticWorkload {
    fn default() -> Self {
        RealisticWorkload::paper()
    }
}

impl RealisticWorkload {
    /// The paper configuration: uniform application mix, 1–20 cycles per
    /// connection.
    pub fn paper() -> Self {
        RealisticWorkload {
            app_weights: [1.0; 5],
            cycles_range: (1, 20),
        }
    }

    /// A workload pinned to a single application (used by the Fig. 3c
    /// per-application sweeps).
    pub fn single_app(app: NetworkedApp) -> Self {
        let mut weights = [0.0; 5];
        weights[app.index()] = 1.0;
        RealisticWorkload {
            app_weights: weights,
            cycles_range: (1, 20),
        }
    }

    fn sample_app(&self, rng: &mut SimRng) -> NetworkedApp {
        let cat = Categorical::new(&self.app_weights).expect("valid app weights");
        NetworkedApp::ALL[cat.sample(rng)]
    }

    fn cycle_for(&self, app: NetworkedApp, first: bool, rng: &mut SimRng) -> CycleParams {
        let bytes = app.sample_resource_bytes(rng);
        let pdu = app.pdu_bytes();
        // N counts round-trip exchanges; sent and received shares follow
        // the application's upload fraction.
        let up = app.upload_fraction();
        let ls = ((f64::from(pdu)) * up).round().max(64.0) as u32;
        let lr = ((f64::from(pdu)) * (1.0 - up)).round().max(64.0) as u32;
        let n_packets = (bytes / u64::from(ls + lr)).max(1);
        CycleParams {
            // Inquiry/SDP only make sense when (re)establishing the
            // connection; cycles reusing a live connection skip them —
            // the connection-churn asymmetry behind the 84 %/16 % split.
            scan: first && rng.chance(0.5),
            sdp: first && rng.chance(0.5),
            packet_type: None, // left to the BT stack
            n_packets,
            ls,
            lr,
            off_time: CycleParams::sample_off_time(rng),
            app: Some(app),
        }
    }
}

impl WorkloadModel for RealisticWorkload {
    fn kind(&self) -> WorkloadKind {
        WorkloadKind::Realistic
    }

    fn next_connection(&self, rng: &mut SimRng) -> ConnectionPlan {
        let n_cycles = rng.uniform_u64(self.cycles_range.0, self.cycles_range.1.min(20)) as usize;
        let cycles = (0..n_cycles.max(1))
            .map(|i| {
                let app = self.sample_app(rng);
                self.cycle_for(app, i == 0, rng)
            })
            .collect();
        ConnectionPlan::new(cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_reuse_connections() {
        let wl = RealisticWorkload::paper();
        let mut rng = SimRng::seed_from(60);
        let mut multi = 0;
        for _ in 0..500 {
            let plan = wl.next_connection(&mut rng);
            assert!((1..=20).contains(&plan.len()));
            if plan.len() > 1 {
                multi += 1;
            }
        }
        assert!(multi > 400, "connection reuse missing: {multi}");
        assert_eq!(wl.kind(), WorkloadKind::Realistic);
    }

    #[test]
    fn packet_type_left_to_stack() {
        let wl = RealisticWorkload::paper();
        let mut rng = SimRng::seed_from(61);
        let plan = wl.next_connection(&mut rng);
        for c in &plan.cycles {
            assert!(c.packet_type.is_none());
            assert!(c.app.is_some());
        }
    }

    #[test]
    fn mean_cycles_per_connection_matches_uniform() {
        let wl = RealisticWorkload::paper();
        let mut rng = SimRng::seed_from(62);
        let n = 5_000;
        let mean = (0..n)
            .map(|_| wl.next_connection(&mut rng).len() as f64)
            .sum::<f64>()
            / n as f64;
        assert!((mean - 10.5).abs() < 0.3, "mean cycles {mean}");
    }

    #[test]
    fn single_app_pins_application() {
        let wl = RealisticWorkload::single_app(NetworkedApp::P2p);
        let mut rng = SimRng::seed_from(63);
        for _ in 0..50 {
            let plan = wl.next_connection(&mut rng);
            for c in &plan.cycles {
                assert_eq!(c.app, Some(NetworkedApp::P2p));
            }
        }
    }

    #[test]
    fn p2p_cycles_move_more_payloads_than_mail() {
        let mut rng = SimRng::seed_from(64);
        let mean_payloads = |app: NetworkedApp, rng: &mut SimRng| {
            let wl = RealisticWorkload::single_app(app);
            (0..600)
                .flat_map(|_| wl.next_connection(rng).cycles)
                .map(|c| c.baseband_payloads() as f64)
                .sum::<f64>()
                / 600.0
        };
        let p2p = mean_payloads(NetworkedApp::P2p, &mut rng);
        let mail = mean_payloads(NetworkedApp::Mail, &mut rng);
        assert!(p2p > 5.0 * mail, "p2p {p2p} mail {mail}");
    }

    #[test]
    fn pdu_sizes_respect_upload_split() {
        let wl = RealisticWorkload::single_app(NetworkedApp::Ftp);
        let mut rng = SimRng::seed_from(65);
        let c = wl.next_connection(&mut rng).cycles[0];
        // FTP: 20 % upload of a 1460 PDU.
        assert_eq!(c.ls, 292);
        assert_eq!(c.lr, 1168);
    }
}
