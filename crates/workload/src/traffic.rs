//! Per-application Internet traffic models (Realistic WL).
//!
//! The Realistic WL draws its parameters "according to the random
//! processes which are used to model actual Internet traffic": `N`
//! follows power-law (Pareto) distributions sized by the resource being
//! transferred, `LS`/`LR` are the PDUs commonly adopted by the transport
//! protocols (Fraleigh et al., Sprint backbone measurements), and a user
//! runs 1–20 consecutive cycles over the same connection.
//!
//! The duty factor feeds [`btpan_faults::StressModel`]: P2P and
//! streaming hold the ACL channel continuously (long sessions), while
//! Web/Mail/FTP transfer intermittently — the paper's Fig. 3c mechanism.

use btpan_sim::prelude::*;
use std::fmt;

/// The networked applications the Realistic WL emulates (Fig. 3c).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NetworkedApp {
    /// Web browsing: many small, heavy-tailed page fetches.
    Web,
    /// File transfer: mid-size bulk transfers.
    Ftp,
    /// E-mail: small messages, strongly intermittent.
    Mail,
    /// Peer-to-peer: long sessions of continuous bulk transfer.
    P2p,
    /// Audio/video streaming: long, isochronous sessions.
    Streaming,
}

impl NetworkedApp {
    /// All five applications in Fig. 3c order.
    pub const ALL: [NetworkedApp; 5] = [
        NetworkedApp::Web,
        NetworkedApp::Ftp,
        NetworkedApp::Mail,
        NetworkedApp::P2p,
        NetworkedApp::Streaming,
    ];

    /// Stable index for tables.
    pub const fn index(self) -> usize {
        match self {
            NetworkedApp::Web => 0,
            NetworkedApp::Ftp => 1,
            NetworkedApp::Mail => 2,
            NetworkedApp::P2p => 3,
            NetworkedApp::Streaming => 4,
        }
    }

    /// Display label.
    pub const fn label(self) -> &'static str {
        match self {
            NetworkedApp::Web => "Web",
            NetworkedApp::Ftp => "FTP",
            NetworkedApp::Mail => "Mail",
            NetworkedApp::P2p => "P2P",
            NetworkedApp::Streaming => "Streaming",
        }
    }

    /// Channel duty factor in `[0,1]`: the fraction of a session the ACL
    /// channel is continuously occupied. P2P and streaming are the
    /// "long sessions with continuous data transfer" of the paper.
    pub const fn duty_factor(self) -> f64 {
        match self {
            NetworkedApp::Web => 0.30,
            NetworkedApp::Ftp => 0.40,
            NetworkedApp::Mail => 0.15,
            NetworkedApp::P2p => 0.95,
            NetworkedApp::Streaming => 0.75,
        }
    }

    /// Transport PDU size in bytes (`LS`/`LR`), per the Sprint backbone
    /// measurements: bulk TCP flows ride full 1460-byte segments,
    /// streaming uses ~1200-byte RTP/UDP datagrams, mail splits around
    /// 1 kB.
    pub const fn pdu_bytes(self) -> u32 {
        match self {
            NetworkedApp::Web => 1460,
            NetworkedApp::Ftp => 1460,
            NetworkedApp::Mail => 1024,
            NetworkedApp::P2p => 1460,
            NetworkedApp::Streaming => 1200,
        }
    }

    /// Pareto parameters `(shape, min_bytes, cap_bytes)` of the resource
    /// transferred per cycle. Shapes follow the self-similarity
    /// literature (web objects ≈ 1.2). Scales are sized for a 2005-era
    /// "last-meter" PAN session — single objects/chunks per cycle, not
    /// whole downloads — and jointly calibrated so the Realistic WL
    /// produces ≈ 16 % of all failures (the paper's split) while P2P and
    /// streaming still move the most bytes per cycle (Fig. 3c).
    pub const fn resource_pareto(self) -> (f64, f64, f64) {
        match self {
            NetworkedApp::Web => (1.2, 3_000.0, 150_000.0),
            NetworkedApp::Ftp => (1.1, 8_000.0, 300_000.0),
            NetworkedApp::Mail => (1.3, 1_500.0, 50_000.0),
            NetworkedApp::P2p => (1.05, 12_000.0, 1_000_000.0),
            NetworkedApp::Streaming => (1.1, 10_000.0, 600_000.0),
        }
    }

    /// Samples the bytes transferred in one cycle of this application.
    pub fn sample_resource_bytes(self, rng: &mut SimRng) -> u64 {
        let (shape, min, cap) = self.resource_pareto();
        let d = TruncatedPareto::new(shape, min, cap).expect("valid app pareto");
        d.sample(rng) as u64
    }

    /// Fraction of the resource flowing PANU → NAP (uploads): P2P is
    /// symmetric, the rest are download-dominated.
    pub const fn upload_fraction(self) -> f64 {
        match self {
            NetworkedApp::P2p => 0.5,
            NetworkedApp::Ftp => 0.2,
            _ => 0.1,
        }
    }
}

impl fmt::Display for NetworkedApp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_stable() {
        for (i, app) in NetworkedApp::ALL.iter().enumerate() {
            assert_eq!(app.index(), i);
        }
    }

    #[test]
    fn duty_ordering_matches_fig3c() {
        // P2P > Streaming > FTP/Web > Mail.
        assert!(NetworkedApp::P2p.duty_factor() > NetworkedApp::Streaming.duty_factor());
        assert!(NetworkedApp::Streaming.duty_factor() > NetworkedApp::Ftp.duty_factor());
        assert!(NetworkedApp::Ftp.duty_factor() > NetworkedApp::Mail.duty_factor());
    }

    #[test]
    fn resource_sizes_respect_bounds() {
        let mut rng = SimRng::seed_from(31);
        for app in NetworkedApp::ALL {
            let (_, min, cap) = app.resource_pareto();
            for _ in 0..2_000 {
                let b = app.sample_resource_bytes(&mut rng) as f64;
                assert!(b >= min - 1.0 && b <= cap, "{app}: {b}");
            }
        }
    }

    #[test]
    fn p2p_moves_most_bytes() {
        let mut rng = SimRng::seed_from(32);
        let mean = |app: NetworkedApp, rng: &mut SimRng| {
            (0..5_000)
                .map(|_| app.sample_resource_bytes(rng) as f64)
                .sum::<f64>()
                / 5_000.0
        };
        let p2p = mean(NetworkedApp::P2p, &mut rng);
        let mail = mean(NetworkedApp::Mail, &mut rng);
        let web = mean(NetworkedApp::Web, &mut rng);
        assert!(p2p > 3.0 * web, "p2p {p2p} web {web}");
        assert!(web > mail, "web {web} mail {mail}");
    }

    #[test]
    fn pdus_fit_bnep_mtu() {
        for app in NetworkedApp::ALL {
            assert!(app.pdu_bytes() <= 1691);
            assert!(app.pdu_bytes() >= 512);
        }
    }

    #[test]
    fn upload_fractions_sane() {
        for app in NetworkedApp::ALL {
            let f = app.upload_fraction();
            assert!((0.0..=1.0).contains(&f));
        }
        assert_eq!(NetworkedApp::P2p.upload_fraction(), 0.5);
    }

    #[test]
    fn labels() {
        assert_eq!(NetworkedApp::P2p.to_string(), "P2P");
        assert_eq!(NetworkedApp::Streaming.to_string(), "Streaming");
    }
}
