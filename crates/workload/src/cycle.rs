//! Cycle parameters and the connection-plan abstraction.
//!
//! A **cycle** is one pass through the BlueTest utilization phases with
//! concrete values for the paper's random variables: `S` (scan flag),
//! `SDP` (service-discovery flag), `B` (baseband packet type), `N`
//! (packets to send/receive), `LS`/`LR` (sent/received packet sizes) and
//! `TW` (the Pareto passive off-time).
//!
//! A **connection plan** groups 1..=20 consecutive cycles over the same
//! PAN connection — 1 for the Random WL (it "creates and destroys
//! connections frequently"), up to 20 for the Realistic WL (a user runs
//! several applications in sequence over one connection). That
//! difference alone explains the paper's 84 %/16 % failure split between
//! the workloads.

use crate::traffic::NetworkedApp;
use btpan_baseband::PacketType;
use btpan_sim::prelude::*;
use btpan_sim::time::SimDuration;
use std::fmt;

/// Pareto shape of the passive off-time `TW` (Crovella & Bestavros).
pub const TW_SHAPE: f64 = 1.5;
/// Pareto scale of `TW` in seconds: mean = 1.5·9/(0.5) /... = 3·xm = 27 s,
/// matching the paper's measured idle means (27.3 s / 26.9 s).
pub const TW_SCALE_S: f64 = 9.0;

/// Concrete parameters of one workload cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CycleParams {
    /// `S`: perform the inquiry/scan procedure this cycle.
    pub scan: bool,
    /// `SDP`: perform the SDP search this cycle.
    pub sdp: bool,
    /// `B`: baseband packet type. `None` leaves the choice to the BT
    /// stack (Realistic WL), which picks the highest-throughput type.
    pub packet_type: Option<PacketType>,
    /// `N`: number of upper-layer packets to send.
    pub n_packets: u64,
    /// `LS`: size of sent packets in bytes.
    pub ls: u32,
    /// `LR`: size of received packets in bytes.
    pub lr: u32,
    /// `TW`: passive off-time after the cycle.
    pub off_time: SimDuration,
    /// The emulated application (Realistic WL only).
    pub app: Option<NetworkedApp>,
}

impl CycleParams {
    /// The packet type actually used on air: the stack picks DH5 when
    /// the workload leaves the choice open.
    pub fn effective_packet_type(&self) -> PacketType {
        self.packet_type.unwrap_or(PacketType::Dh5)
    }

    /// Total user bytes moved in the cycle (both directions).
    pub fn total_bytes(&self) -> u64 {
        self.n_packets * (u64::from(self.ls) + u64::from(self.lr))
    }

    /// Baseband payloads this cycle generates given its packet type.
    pub fn baseband_payloads(&self) -> u64 {
        self.effective_packet_type().packets_for(self.total_bytes())
    }

    /// Channel duty factor of the cycle (for the stress model): the
    /// application's duty, or a neutral mid value for the Random WL.
    pub fn duty_factor(&self) -> f64 {
        self.app.map_or(0.5, NetworkedApp::duty_factor)
    }

    /// Samples a `TW` off-time from the paper's Pareto model.
    pub fn sample_off_time(rng: &mut SimRng) -> SimDuration {
        let d = Pareto::new(TW_SHAPE, TW_SCALE_S).expect("valid TW pareto");
        // Cap pathological tail draws at 10 minutes to keep cycles
        // flowing (real users come back).
        SimDuration::from_secs_f64(d.sample(rng).min(600.0))
    }
}

/// A sequence of cycles sharing one PAN connection.
#[derive(Debug, Clone, PartialEq)]
pub struct ConnectionPlan {
    /// The cycles to run, in order (1..=20).
    pub cycles: Vec<CycleParams>,
}

impl ConnectionPlan {
    /// Builds a plan.
    ///
    /// # Panics
    ///
    /// Panics if `cycles` is empty or longer than 20 (the paper's cap).
    pub fn new(cycles: Vec<CycleParams>) -> Self {
        assert!(
            (1..=20).contains(&cycles.len()),
            "connection plans run 1..=20 cycles"
        );
        ConnectionPlan { cycles }
    }

    /// Number of cycles in the plan.
    pub fn len(&self) -> usize {
        self.cycles.len()
    }

    /// Always false: plans hold at least one cycle.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Total bytes the plan intends to move.
    pub fn total_bytes(&self) -> u64 {
        self.cycles.iter().map(CycleParams::total_bytes).sum()
    }
}

/// Which workload generated a plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum WorkloadKind {
    /// The Random WL of the first testbed.
    Random,
    /// The Realistic WL of the second testbed.
    Realistic,
}

impl fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadKind::Random => f.write_str("random"),
            WorkloadKind::Realistic => f.write_str("realistic"),
        }
    }
}

/// A workload: a generator of connection plans.
pub trait WorkloadModel {
    /// Which workload this is.
    fn kind(&self) -> WorkloadKind;

    /// Generates the next connection plan.
    fn next_connection(&self, rng: &mut SimRng) -> ConnectionPlan;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> CycleParams {
        CycleParams {
            scan: true,
            sdp: false,
            packet_type: Some(PacketType::Dm1),
            n_packets: 10,
            ls: 100,
            lr: 200,
            off_time: SimDuration::from_secs(5),
            app: None,
        }
    }

    #[test]
    fn byte_and_payload_accounting() {
        let p = params();
        assert_eq!(p.total_bytes(), 3_000);
        // DM1 capacity 17: ceil(3000/17) = 177
        assert_eq!(p.baseband_payloads(), 177);
        assert_eq!(p.effective_packet_type(), PacketType::Dm1);
    }

    #[test]
    fn stack_choice_defaults_to_dh5() {
        let mut p = params();
        p.packet_type = None;
        assert_eq!(p.effective_packet_type(), PacketType::Dh5);
    }

    #[test]
    fn off_time_has_paper_mean() {
        let mut rng = SimRng::seed_from(41);
        let n = 100_000;
        let mean = (0..n)
            .map(|_| CycleParams::sample_off_time(&mut rng).as_secs_f64())
            .sum::<f64>()
            / n as f64;
        // Pareto(1.5, 9): mean 27 s (capped tail pulls it down slightly).
        assert!((mean - 26.0).abs() < 2.5, "TW mean {mean}");
    }

    #[test]
    fn off_time_never_below_scale() {
        let mut rng = SimRng::seed_from(42);
        for _ in 0..10_000 {
            assert!(CycleParams::sample_off_time(&mut rng) >= SimDuration::from_secs(9));
        }
    }

    #[test]
    fn plan_bounds() {
        let plan = ConnectionPlan::new(vec![params(); 20]);
        assert_eq!(plan.len(), 20);
        assert!(!plan.is_empty());
        assert_eq!(plan.total_bytes(), 60_000);
    }

    #[test]
    #[should_panic(expected = "1..=20")]
    fn oversize_plan_rejected() {
        let _ = ConnectionPlan::new(vec![params(); 21]);
    }

    #[test]
    #[should_panic(expected = "1..=20")]
    fn empty_plan_rejected() {
        let _ = ConnectionPlan::new(vec![]);
    }

    #[test]
    fn duty_factor_defaults() {
        assert_eq!(params().duty_factor(), 0.5);
        let mut p = params();
        p.app = Some(NetworkedApp::P2p);
        assert_eq!(p.duty_factor(), 0.95);
    }

    #[test]
    fn kind_display() {
        assert_eq!(WorkloadKind::Random.to_string(), "random");
        assert_eq!(WorkloadKind::Realistic.to_string(), "realistic");
    }
}
