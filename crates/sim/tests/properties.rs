//! Property-based tests over the simulation substrate.

use btpan_sim::prelude::*;
use btpan_sim::stats::percentile;
use btpan_sim::time::{SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    #[test]
    fn pareto_never_below_scale(seed in 0u64..1_000, alpha in 0.5f64..4.0, xm in 0.01f64..1_000.0) {
        let mut rng = SimRng::seed_from(seed);
        let d = Pareto::new(alpha, xm).expect("valid");
        for _ in 0..100 {
            prop_assert!(d.sample(&mut rng) >= xm);
        }
    }

    #[test]
    fn truncated_pareto_within_bounds(seed in 0u64..1_000, alpha in 0.5f64..3.0, xm in 1.0f64..100.0, factor in 1.5f64..100.0) {
        let cap = xm * factor;
        let mut rng = SimRng::seed_from(seed);
        let d = TruncatedPareto::new(alpha, xm, cap).expect("valid");
        for _ in 0..100 {
            let x = d.sample(&mut rng);
            prop_assert!(x >= xm - 1e-9 && x <= cap + 1e-9, "x={x}");
        }
    }

    #[test]
    fn weibull_survival_monotone(k in 0.2f64..3.0, lambda in 0.1f64..1_000.0, a in 0.0f64..500.0, b in 0.0f64..500.0) {
        let (lo, hi) = (a.min(b), a.max(b));
        let d = Weibull::new(k, lambda).expect("valid");
        prop_assert!(d.survival(lo) >= d.survival(hi) - 1e-12);
    }

    #[test]
    fn categorical_never_samples_zero_weight(seed in 0u64..500, idx in 0usize..5) {
        let mut weights = [1.0f64; 5];
        weights[idx] = 0.0;
        let d = Categorical::new(&weights).expect("valid");
        let mut rng = SimRng::seed_from(seed);
        for _ in 0..200 {
            prop_assert_ne!(d.sample(&mut rng), idx);
        }
    }

    #[test]
    fn categorical_probabilities_sum_to_one(w0 in 0.0f64..10.0, w1 in 0.0f64..10.0, w2 in 0.001f64..10.0) {
        let d = Categorical::new(&[w0, w1, w2]).expect("valid");
        let total: f64 = (0..3).map(|i| d.probability(i)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn running_stats_merge_equals_sequential(xs in prop::collection::vec(-1e6f64..1e6, 1..200), split in 0usize..200) {
        let split = split.min(xs.len());
        let (a, b) = xs.split_at(split);
        let mut merged: RunningStats = a.iter().copied().collect();
        let right: RunningStats = b.iter().copied().collect();
        merged.merge(&right);
        let whole: RunningStats = xs.iter().copied().collect();
        prop_assert_eq!(merged.count(), whole.count());
        if let (Some(m), Some(w)) = (merged.mean(), whole.mean()) {
            prop_assert!((m - w).abs() < 1e-6 * (1.0 + w.abs()));
        }
        prop_assert_eq!(merged.min(), whole.min());
        prop_assert_eq!(merged.max(), whole.max());
    }

    #[test]
    fn percentile_within_range(xs in prop::collection::vec(-1e3f64..1e3, 1..100), q in 0.0f64..100.0) {
        let p = percentile(&xs, q).expect("non-empty");
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
    }

    #[test]
    fn fork_streams_never_collide(seed in 0u64..10_000, a in 0u64..64, b in 0u64..64) {
        prop_assume!(a != b);
        use rand::RngCore;
        let root = SimRng::seed_from(seed);
        let mut fa = root.fork_indexed("x", a);
        let mut fb = root.fork_indexed("x", b);
        // Not a proof, but 4 identical leading draws would be alarming.
        let same = (0..4).filter(|_| fa.next_u64() == fb.next_u64()).count();
        prop_assert!(same < 4);
    }

    #[test]
    fn duration_arithmetic_consistent(a in 0u64..1_000_000, b in 0u64..1_000_000) {
        let t = SimTime::from_micros(a) + SimDuration::from_micros(b);
        prop_assert_eq!(t.since(SimTime::from_micros(a)), SimDuration::from_micros(b));
        prop_assert_eq!(t.saturating_since(t), SimDuration::ZERO);
    }
}
