//! Configuration validation support shared by the workspace's builders.
//!
//! Lives in `btpan-sim` (the bottom of the dependency graph) so that the
//! campaign, supervisor and stream config builders — which sit in crates
//! that cannot depend on each other — all fail construction with the same
//! error type, which the workspace-level `btpan::Error` then wraps.

use std::error::Error as StdError;
use std::fmt;

/// A configuration field rejected at construction time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// Name of the offending field, e.g. `"shards"`.
    pub field: &'static str,
    /// Human-readable constraint violation, e.g. `"must be at least 1"`.
    pub reason: String,
}

impl ConfigError {
    /// Convenience constructor.
    pub fn new(field: &'static str, reason: impl Into<String>) -> Self {
        ConfigError {
            field,
            reason: reason.into(),
        }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid config field `{}`: {}", self.field, self.reason)
    }
}

impl StdError for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_field() {
        let err = ConfigError::new("shards", "must be at least 1");
        assert_eq!(
            err.to_string(),
            "invalid config field `shards`: must be at least 1"
        );
    }
}
