//! Probability distributions used by the paper's workloads and models.
//!
//! The paper's `BlueTest` workload draws its cycle parameters from:
//!
//! * **uniform** distributions (scan/SDP flags, Random-WL `N`, `LS`, `LR`);
//! * a **binomial-style choice** over the six baseband packet types;
//! * **Pareto** distributions for the user passive off-time `TW`
//!   (shape 1.5, after Crovella & Bestavros) and for resource sizes in
//!   the Realistic WL;
//! * assorted auxiliary laws used by our substitution models
//!   (exponential inter-fault times, Weibull with k<1 for the latent
//!   connection-setup hazard of Fig. 3b, log-normal recovery times).
//!
//! All samplers are implemented by inverse-CDF (or Box–Muller for the
//! normal base of [`LogNormal`]) over [`SimRng`], keeping the workspace
//! free of extra dependencies and fully deterministic.

use crate::rng::SimRng;
use std::fmt;

/// Error returned when constructing a distribution with invalid
/// parameters (non-positive scale/shape, empty support, NaN weight...).
#[derive(Debug, Clone, PartialEq)]
pub struct ParamError {
    what: &'static str,
}

impl ParamError {
    fn new(what: &'static str) -> Self {
        ParamError { what }
    }
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.what)
    }
}

impl std::error::Error for ParamError {}

/// A sampleable distribution over `T`.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample(&self, rng: &mut SimRng) -> T;
}

/// Continuous uniform on `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformF64 {
    lo: f64,
    hi: f64,
}

impl UniformF64 {
    /// Creates a uniform distribution on `[lo, hi)`.
    ///
    /// # Errors
    ///
    /// Fails if the bounds are not finite or `lo > hi`.
    pub fn new(lo: f64, hi: f64) -> Result<Self, ParamError> {
        if !lo.is_finite() || !hi.is_finite() || lo > hi {
            return Err(ParamError::new("uniform bounds"));
        }
        Ok(UniformF64 { lo, hi })
    }
}

impl Distribution<f64> for UniformF64 {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        rng.uniform_f64(self.lo, self.hi)
    }
}

/// Discrete uniform on the inclusive integer range `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UniformU64 {
    lo: u64,
    hi: u64,
}

impl UniformU64 {
    /// Creates a discrete uniform distribution on `[lo, hi]`.
    ///
    /// # Errors
    ///
    /// Fails if `lo > hi`.
    pub fn new(lo: u64, hi: u64) -> Result<Self, ParamError> {
        if lo > hi {
            return Err(ParamError::new("uniform integer bounds"));
        }
        Ok(UniformU64 { lo, hi })
    }
}

impl Distribution<u64> for UniformU64 {
    fn sample(&self, rng: &mut SimRng) -> u64 {
        rng.uniform_u64(self.lo, self.hi)
    }
}

/// Bernoulli trial with success probability `p`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bernoulli {
    p: f64,
}

impl Bernoulli {
    /// Creates a Bernoulli distribution.
    ///
    /// # Errors
    ///
    /// Fails unless `p` is in `[0, 1]`.
    pub fn new(p: f64) -> Result<Self, ParamError> {
        if !(0.0..=1.0).contains(&p) {
            return Err(ParamError::new("bernoulli p outside [0,1]"));
        }
        Ok(Bernoulli { p })
    }

    /// The success probability.
    pub fn p(&self) -> f64 {
        self.p
    }
}

impl Distribution<bool> for Bernoulli {
    fn sample(&self, rng: &mut SimRng) -> bool {
        rng.chance(self.p)
    }
}

/// Exponential distribution with rate `lambda` (mean `1/lambda`).
///
/// Used for inter-arrival times of background system-log noise and
/// transient interference episodes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    lambda: f64,
}

impl Exponential {
    /// Creates an exponential distribution with rate `lambda`.
    ///
    /// # Errors
    ///
    /// Fails unless `lambda` is finite and positive.
    pub fn new(lambda: f64) -> Result<Self, ParamError> {
        if !lambda.is_finite() || lambda <= 0.0 {
            return Err(ParamError::new("exponential rate"));
        }
        Ok(Exponential { lambda })
    }

    /// Creates an exponential distribution from its mean.
    ///
    /// # Errors
    ///
    /// Fails unless `mean` is finite and positive.
    pub fn from_mean(mean: f64) -> Result<Self, ParamError> {
        if !mean.is_finite() || mean <= 0.0 {
            return Err(ParamError::new("exponential mean"));
        }
        Self::new(1.0 / mean)
    }

    /// The distribution mean `1/lambda`.
    pub fn mean(&self) -> f64 {
        1.0 / self.lambda
    }
}

impl Distribution<f64> for Exponential {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        // Inverse CDF; 1-u in (0,1] avoids ln(0).
        -(1.0 - rng.uniform01()).ln() / self.lambda
    }
}

/// Pareto (type I) distribution with shape `alpha` and scale `xm`
/// (minimum value). Heavy-tailed; the paper models the passive off-time
/// `TW` as Pareto with shape 1.5 (Crovella & Bestavros).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    alpha: f64,
    xm: f64,
}

impl Pareto {
    /// Creates a Pareto distribution.
    ///
    /// # Errors
    ///
    /// Fails unless `alpha` and `xm` are finite and positive.
    pub fn new(alpha: f64, xm: f64) -> Result<Self, ParamError> {
        if !alpha.is_finite() || alpha <= 0.0 {
            return Err(ParamError::new("pareto shape"));
        }
        if !xm.is_finite() || xm <= 0.0 {
            return Err(ParamError::new("pareto scale"));
        }
        Ok(Pareto { alpha, xm })
    }

    /// The shape parameter.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The scale (minimum) parameter.
    pub fn xm(&self) -> f64 {
        self.xm
    }

    /// The theoretical mean, or `None` when `alpha <= 1` (infinite mean).
    pub fn mean(&self) -> Option<f64> {
        (self.alpha > 1.0).then(|| self.alpha * self.xm / (self.alpha - 1.0))
    }
}

impl Distribution<f64> for Pareto {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        let u = 1.0 - rng.uniform01(); // in (0, 1]
        self.xm / u.powf(1.0 / self.alpha)
    }
}

/// Pareto truncated to `[xm, cap]` by resampling via inverse-CDF of the
/// conditional law (exact, no rejection loop). Realistic-WL resource
/// sizes use this so a single cycle cannot exceed the campaign length.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TruncatedPareto {
    inner: Pareto,
    cap: f64,
    /// CDF mass below the cap.
    mass: f64,
}

impl TruncatedPareto {
    /// Creates a Pareto distribution truncated at `cap`.
    ///
    /// # Errors
    ///
    /// Fails for invalid Pareto parameters or if `cap <= xm`.
    pub fn new(alpha: f64, xm: f64, cap: f64) -> Result<Self, ParamError> {
        let inner = Pareto::new(alpha, xm)?;
        if !cap.is_finite() || cap <= xm {
            return Err(ParamError::new("pareto truncation cap"));
        }
        let mass = 1.0 - (xm / cap).powf(alpha);
        Ok(TruncatedPareto { inner, cap, mass })
    }

    /// The truncation cap.
    pub fn cap(&self) -> f64 {
        self.cap
    }
}

impl Distribution<f64> for TruncatedPareto {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        let u = rng.uniform01() * self.mass;
        let x = self.inner.xm / (1.0 - u).powf(1.0 / self.inner.alpha);
        x.min(self.cap)
    }
}

/// Weibull distribution with shape `k` and scale `lambda`.
///
/// With `k < 1` the hazard rate is decreasing — our model for the
/// latent connection-setup faults behind Fig. 3b ("young connections
/// fail more").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weibull {
    k: f64,
    lambda: f64,
}

impl Weibull {
    /// Creates a Weibull distribution.
    ///
    /// # Errors
    ///
    /// Fails unless both parameters are finite and positive.
    pub fn new(k: f64, lambda: f64) -> Result<Self, ParamError> {
        if !k.is_finite() || k <= 0.0 {
            return Err(ParamError::new("weibull shape"));
        }
        if !lambda.is_finite() || lambda <= 0.0 {
            return Err(ParamError::new("weibull scale"));
        }
        Ok(Weibull { k, lambda })
    }

    /// Survival function `P(X > x)`.
    pub fn survival(&self, x: f64) -> f64 {
        if x <= 0.0 {
            1.0
        } else {
            (-(x / self.lambda).powf(self.k)).exp()
        }
    }
}

impl Distribution<f64> for Weibull {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        let u = 1.0 - rng.uniform01();
        self.lambda * (-u.ln()).powf(1.0 / self.k)
    }
}

/// Log-normal distribution: `exp(N(mu, sigma))`.
///
/// Used for SIRA recovery durations, which are positive and right-skewed
/// (the paper reports TTR standard deviations comparable to the mean).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal with the given parameters of the underlying
    /// normal.
    ///
    /// # Errors
    ///
    /// Fails unless `mu` is finite and `sigma` is finite and non-negative.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, ParamError> {
        if !mu.is_finite() || !sigma.is_finite() || sigma < 0.0 {
            return Err(ParamError::new("lognormal parameters"));
        }
        Ok(LogNormal { mu, sigma })
    }

    /// Creates a log-normal with a target mean and coefficient of
    /// variation (`cv = std/mean`) of the log-normal itself.
    ///
    /// # Errors
    ///
    /// Fails unless `mean > 0` and `cv >= 0` and both are finite.
    pub fn from_mean_cv(mean: f64, cv: f64) -> Result<Self, ParamError> {
        if !mean.is_finite() || mean <= 0.0 || !cv.is_finite() || cv < 0.0 {
            return Err(ParamError::new("lognormal mean/cv"));
        }
        let sigma2 = (1.0 + cv * cv).ln();
        let mu = mean.ln() - sigma2 / 2.0;
        Ok(LogNormal {
            mu,
            sigma: sigma2.sqrt(),
        })
    }

    /// The theoretical mean of the log-normal.
    pub fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }
}

impl Distribution<f64> for LogNormal {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        // Box–Muller.
        let u1 = (1.0 - rng.uniform01()).max(f64::MIN_POSITIVE);
        let u2 = rng.uniform01();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        (self.mu + self.sigma * z).exp()
    }
}

/// Geometric distribution counting Bernoulli failures before the first
/// success (support `0, 1, 2, ...`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Geometric {
    p: f64,
}

impl Geometric {
    /// Creates a geometric distribution with success probability `p`.
    ///
    /// # Errors
    ///
    /// Fails unless `p` is in `(0, 1]`.
    pub fn new(p: f64) -> Result<Self, ParamError> {
        if !(p > 0.0 && p <= 1.0) {
            return Err(ParamError::new("geometric p"));
        }
        Ok(Geometric { p })
    }
}

impl Distribution<u64> for Geometric {
    fn sample(&self, rng: &mut SimRng) -> u64 {
        if self.p >= 1.0 {
            return 0;
        }
        let u = 1.0 - rng.uniform01();
        (u.ln() / (1.0 - self.p).ln()).floor() as u64
    }
}

/// Categorical distribution over `0..weights.len()`.
///
/// This is the workhorse behind the calibrated injection profiles: each
/// paper-table row becomes a categorical over causes or SIRA outcomes.
#[derive(Debug, Clone, PartialEq)]
pub struct Categorical {
    /// Cumulative weights, last == total.
    cumulative: Vec<f64>,
}

impl Categorical {
    /// Creates a categorical distribution from non-negative weights
    /// (not necessarily normalized).
    ///
    /// # Errors
    ///
    /// Fails if `weights` is empty, contains a negative or non-finite
    /// weight, or sums to zero.
    pub fn new(weights: &[f64]) -> Result<Self, ParamError> {
        if weights.is_empty() {
            return Err(ParamError::new("categorical with no categories"));
        }
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut total = 0.0;
        for &w in weights {
            if !w.is_finite() || w < 0.0 {
                return Err(ParamError::new("categorical weight"));
            }
            total += w;
            cumulative.push(total);
        }
        if total <= 0.0 {
            return Err(ParamError::new("categorical weights sum to zero"));
        }
        Ok(Categorical { cumulative })
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// True if there is exactly one category (then sampling is constant).
    pub fn is_empty(&self) -> bool {
        false // construction guarantees at least one category
    }

    /// The normalized probability of category `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn probability(&self, i: usize) -> f64 {
        let total = *self.cumulative.last().expect("non-empty");
        let prev = if i == 0 { 0.0 } else { self.cumulative[i - 1] };
        (self.cumulative[i] - prev) / total
    }
}

impl Distribution<usize> for Categorical {
    fn sample(&self, rng: &mut SimRng) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let x = rng.uniform01() * total;
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&x).expect("finite"))
        {
            Ok(i) => (i + 1).min(self.cumulative.len() - 1),
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from(0xBEEF)
    }

    #[test]
    fn uniform_f64_bounds() {
        let d = UniformF64::new(2.0, 5.0).unwrap();
        let mut r = rng();
        for _ in 0..1000 {
            let x = d.sample(&mut r);
            assert!((2.0..5.0).contains(&x));
        }
        assert!(UniformF64::new(5.0, 2.0).is_err());
        assert!(UniformF64::new(f64::NAN, 2.0).is_err());
    }

    #[test]
    fn exponential_mean_matches() {
        let d = Exponential::from_mean(4.0).unwrap();
        let mut r = rng();
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut r)).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.1, "mean {mean}");
        assert!(Exponential::new(0.0).is_err());
        assert!(Exponential::from_mean(-1.0).is_err());
    }

    #[test]
    fn pareto_min_and_mean() {
        let d = Pareto::new(1.5, 10.0).unwrap();
        let mut r = rng();
        let n = 200_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = d.sample(&mut r);
            assert!(x >= 10.0);
            sum += x;
        }
        let mean = sum / n as f64;
        let expect = d.mean().unwrap(); // 1.5*10/0.5 = 30
        assert_eq!(expect, 30.0);
        // Heavy tail: generous tolerance.
        assert!((mean - expect).abs() < 4.0, "mean {mean}");
    }

    #[test]
    fn pareto_infinite_mean_flagged() {
        assert!(Pareto::new(0.9, 1.0).unwrap().mean().is_none());
        assert!(Pareto::new(1.0, 1.0).unwrap().mean().is_none());
        assert!(Pareto::new(2.0, 1.0).unwrap().mean().is_some());
    }

    #[test]
    fn truncated_pareto_respects_cap() {
        let d = TruncatedPareto::new(1.2, 1.0, 100.0).unwrap();
        let mut r = rng();
        for _ in 0..20_000 {
            let x = d.sample(&mut r);
            assert!((1.0..=100.0).contains(&x), "x={x}");
        }
        assert!(TruncatedPareto::new(1.2, 10.0, 5.0).is_err());
    }

    #[test]
    fn weibull_decreasing_hazard_shape() {
        // With k<1 most mass is near zero: median < scale.
        let d = Weibull::new(0.5, 100.0).unwrap();
        let mut r = rng();
        let n = 20_000;
        let below = (0..n).filter(|_| d.sample(&mut r) < 100.0).count();
        // P(X < lambda) = 1 - e^-1 ≈ 0.632 for any k.
        let frac = below as f64 / n as f64;
        assert!((frac - 0.632).abs() < 0.02, "frac {frac}");
        // survival checks
        assert_eq!(d.survival(0.0), 1.0);
        assert!(d.survival(1.0) > d.survival(10.0));
    }

    #[test]
    fn lognormal_mean_cv_round_trip() {
        let d = LogNormal::from_mean_cv(50.0, 0.8).unwrap();
        assert!((d.mean() - 50.0).abs() < 1e-9);
        let mut r = rng();
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut r)).sum::<f64>() / n as f64;
        assert!((mean - 50.0).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn geometric_mean_matches() {
        let d = Geometric::new(0.25).unwrap();
        let mut r = rng();
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut r) as f64).sum::<f64>() / n as f64;
        // mean = (1-p)/p = 3
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
        assert_eq!(Geometric::new(1.0).unwrap().sample(&mut r), 0);
        assert!(Geometric::new(0.0).is_err());
    }

    #[test]
    fn categorical_frequencies_match_weights() {
        let d = Categorical::new(&[1.0, 3.0, 6.0]).unwrap();
        assert_eq!(d.len(), 3);
        assert!((d.probability(0) - 0.1).abs() < 1e-12);
        assert!((d.probability(2) - 0.6).abs() < 1e-12);
        let mut r = rng();
        let mut counts = [0usize; 3];
        let n = 100_000;
        for _ in 0..n {
            counts[d.sample(&mut r)] += 1;
        }
        assert!((counts[0] as f64 / n as f64 - 0.1).abs() < 0.01);
        assert!((counts[1] as f64 / n as f64 - 0.3).abs() < 0.01);
        assert!((counts[2] as f64 / n as f64 - 0.6).abs() < 0.01);
    }

    #[test]
    fn categorical_zero_weight_categories_never_sampled() {
        let d = Categorical::new(&[0.0, 1.0, 0.0]).unwrap();
        let mut r = rng();
        for _ in 0..10_000 {
            assert_eq!(d.sample(&mut r), 1);
        }
    }

    #[test]
    fn categorical_invalid_params() {
        assert!(Categorical::new(&[]).is_err());
        assert!(Categorical::new(&[0.0, 0.0]).is_err());
        assert!(Categorical::new(&[-1.0, 2.0]).is_err());
        assert!(Categorical::new(&[f64::INFINITY]).is_err());
    }

    #[test]
    fn param_error_displays() {
        let e = Pareto::new(-1.0, 1.0).unwrap_err();
        assert!(e.to_string().contains("pareto shape"));
    }
}
