//! # btpan-sim
//!
//! Deterministic discrete-event simulation substrate for the `btpan`
//! workspace (reproduction of Cinque/Cotroneo/Russo, *Collecting and
//! Analyzing Failure Data of Bluetooth Personal Area Networks*, DSN 2006).
//!
//! The crate provides:
//!
//! * [`time`] — microsecond-resolution simulated time ([`SimTime`](time::SimTime),
//!   [`SimDuration`](time::SimDuration)) with Bluetooth slot constants;
//! * [`engine`] — a generic discrete-event engine ([`Engine`](engine::Engine)) with a
//!   deterministic FIFO tie-break for simultaneous events;
//! * [`rng`] — a seeded, forkable random-number source ([`SimRng`](rng::SimRng)) so
//!   each subsystem consumes an independent substream;
//! * [`dist`] — hand-rolled samplers for every distribution the paper's
//!   workloads use (uniform, Pareto, exponential, Weibull, log-normal,
//!   geometric, categorical, binomial-choice);
//! * [`stats`] — numerically stable running statistics, histograms and
//!   percentile estimation used by the analysis pipeline.
//!
//! Everything is deterministic: the same seed produces byte-identical
//! campaigns, logs and tables.
//!
//! ```
//! use btpan_sim::prelude::*;
//!
//! let mut rng = SimRng::seed_from(42);
//! let pareto = Pareto::new(1.5, 10.0).unwrap();
//! let sample = pareto.sample(&mut rng);
//! assert!(sample >= 10.0);
//! ```

pub mod config;
pub mod dist;
pub mod engine;
pub mod rng;
pub mod stats;
pub mod time;

pub mod prelude {
    //! Convenient re-exports of the most used simulation types.
    pub use crate::config::ConfigError;
    pub use crate::dist::{
        Bernoulli, Categorical, Distribution, Exponential, Geometric, LogNormal, Pareto,
        TruncatedPareto, UniformF64, UniformU64, Weibull,
    };
    pub use crate::engine::{Engine, EventHandler, Scheduler};
    pub use crate::rng::SimRng;
    pub use crate::stats::{Histogram, RunningStats, Summary};
    pub use crate::time::{SimDuration, SimTime, SLOT};
}
