//! Generic discrete-event engine.
//!
//! The campaign layer (in `btpan-core`) defines an event enum and a
//! [`EventHandler`] world; the engine owns the clock and the pending
//! event queue. Two events scheduled for the same instant fire in the
//! order they were scheduled (FIFO tie-break via a monotone sequence
//! number), which keeps multi-node campaigns deterministic.

use crate::time::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

mod metrics {
    use btpan_obs::{Counter, Gauge, Registry};
    use std::sync::OnceLock;

    pub(super) struct EngineMetrics {
        /// `btpan_sim_events_total` — events processed by `run_until`/`step`.
        pub events: Counter,
        /// `btpan_sim_slots_total` — 625 µs Bluetooth slots of simulated
        /// time advanced (slots/s once divided by wall time).
        pub slots: Counter,
        /// `btpan_sim_queue_depth` — pending events after the last run.
        pub queue_depth: Gauge,
    }

    pub(super) fn handles() -> &'static EngineMetrics {
        static HANDLES: OnceLock<EngineMetrics> = OnceLock::new();
        HANDLES.get_or_init(|| {
            let registry = Registry::global();
            EngineMetrics {
                events: registry.counter("btpan_sim_events_total"),
                slots: registry.counter("btpan_sim_slots_total"),
                queue_depth: registry.gauge("btpan_sim_queue_depth"),
            }
        })
    }
}

/// A world that reacts to events of type `E`.
pub trait EventHandler<E> {
    /// Handles `event` occurring at `now`; may schedule follow-ups.
    fn handle(&mut self, now: SimTime, event: E, scheduler: &mut Scheduler<E>);
}

#[derive(Debug)]
struct Pending<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Pending<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Pending<E> {}
impl<E> PartialOrd for Pending<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Pending<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so earliest (then lowest seq)
        // pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The scheduling facade handed to event handlers.
///
/// Handlers can enqueue future events but cannot advance the clock or
/// drain the queue — that stays with [`Engine::run_until`].
#[derive(Debug)]
pub struct Scheduler<E> {
    queue: BinaryHeap<Pending<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Scheduler<E> {
    fn new() -> Self {
        Scheduler {
            queue: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` to fire at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past (causality violation).
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(at >= self.now, "cannot schedule into the past");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Pending { at, seq, event });
    }

    /// Schedules `event` to fire after `delay`.
    pub fn schedule_after(&mut self, delay: SimDuration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }
}

/// The discrete-event engine: a clock plus a pending-event queue.
///
/// ```
/// use btpan_sim::engine::{Engine, EventHandler, Scheduler};
/// use btpan_sim::time::{SimDuration, SimTime};
///
/// struct Counter(u32);
/// impl EventHandler<&'static str> for Counter {
///     fn handle(&mut self, now: SimTime, ev: &'static str, s: &mut Scheduler<&'static str>) {
///         self.0 += 1;
///         if ev == "tick" && self.0 < 3 {
///             s.schedule_after(SimDuration::from_secs(1), "tick");
///         }
///     }
/// }
///
/// let mut engine = Engine::new();
/// engine.scheduler().schedule_at(SimTime::ZERO, "tick");
/// let mut world = Counter(0);
/// engine.run_until(SimTime::from_secs(100), &mut world);
/// assert_eq!(world.0, 3);
/// ```
#[derive(Debug)]
pub struct Engine<E> {
    scheduler: Scheduler<E>,
    processed: u64,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// Creates an engine with an empty queue at time zero.
    pub fn new() -> Self {
        Engine {
            scheduler: Scheduler::new(),
            processed: 0,
        }
    }

    /// Access to the scheduler, e.g. for seeding initial events.
    pub fn scheduler(&mut self) -> &mut Scheduler<E> {
        &mut self.scheduler
    }

    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        self.scheduler.now
    }

    /// Total number of events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Runs the simulation until the queue empties or the next event
    /// would fire after `deadline`. Events exactly at the deadline are
    /// processed. Returns the number of events processed by this call.
    pub fn run_until<W: EventHandler<E>>(&mut self, deadline: SimTime, world: &mut W) -> u64 {
        let started_at = self.scheduler.now;
        let mut n = 0;
        while let Some(head) = self.scheduler.queue.peek() {
            if head.at > deadline {
                break;
            }
            let pending = self.scheduler.queue.pop().expect("peeked");
            debug_assert!(pending.at >= self.scheduler.now, "time went backwards");
            self.scheduler.now = pending.at;
            world.handle(pending.at, pending.event, &mut self.scheduler);
            n += 1;
        }
        // Advance the clock to the deadline even if the queue went quiet.
        if self.scheduler.now < deadline {
            self.scheduler.now = deadline;
        }
        self.processed += n;
        let obs = metrics::handles();
        obs.events.add(n);
        obs.slots.add(
            (self.scheduler.now.as_micros() - started_at.as_micros())
                / crate::time::SLOT.as_micros(),
        );
        obs.queue_depth.set(self.scheduler.queue.len() as i64);
        n
    }

    /// Processes a single event if one is pending; returns its time.
    pub fn step<W: EventHandler<E>>(&mut self, world: &mut W) -> Option<SimTime> {
        let pending = self.scheduler.queue.pop()?;
        self.scheduler.now = pending.at;
        world.handle(pending.at, pending.event, &mut self.scheduler);
        self.processed += 1;
        Some(pending.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Recorder {
        seen: Vec<(u64, u32)>,
    }

    impl EventHandler<u32> for Recorder {
        fn handle(&mut self, now: SimTime, ev: u32, _s: &mut Scheduler<u32>) {
            self.seen.push((now.as_micros(), ev));
        }
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut engine = Engine::new();
        engine.scheduler().schedule_at(SimTime::from_micros(30), 3);
        engine.scheduler().schedule_at(SimTime::from_micros(10), 1);
        engine.scheduler().schedule_at(SimTime::from_micros(20), 2);
        let mut world = Recorder::default();
        engine.run_until(SimTime::from_secs(1), &mut world);
        assert_eq!(world.seen, vec![(10, 1), (20, 2), (30, 3)]);
    }

    #[test]
    fn simultaneous_events_fifo() {
        let mut engine = Engine::new();
        for ev in 0..10 {
            engine.scheduler().schedule_at(SimTime::from_micros(5), ev);
        }
        let mut world = Recorder::default();
        engine.run_until(SimTime::from_secs(1), &mut world);
        let order: Vec<u32> = world.seen.iter().map(|&(_, e)| e).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn deadline_is_inclusive_and_clock_advances() {
        let mut engine = Engine::new();
        engine.scheduler().schedule_at(SimTime::from_secs(5), 1);
        engine.scheduler().schedule_at(SimTime::from_secs(6), 2);
        let mut world = Recorder::default();
        let n = engine.run_until(SimTime::from_secs(5), &mut world);
        assert_eq!(n, 1);
        assert_eq!(engine.now(), SimTime::from_secs(5));
        // queue still holds the later event
        let n = engine.run_until(SimTime::from_secs(10), &mut world);
        assert_eq!(n, 1);
        assert_eq!(engine.now(), SimTime::from_secs(10));
        assert_eq!(engine.processed(), 2);
    }

    #[test]
    fn handlers_can_schedule_followups() {
        struct Chain;
        impl EventHandler<u32> for Chain {
            fn handle(&mut self, _now: SimTime, ev: u32, s: &mut Scheduler<u32>) {
                if ev < 5 {
                    s.schedule_after(SimDuration::from_secs(1), ev + 1);
                }
            }
        }
        let mut engine = Engine::new();
        engine.scheduler().schedule_at(SimTime::ZERO, 0);
        let mut world = Chain;
        let n = engine.run_until(SimTime::from_secs(100), &mut world);
        assert_eq!(n, 6);
        assert_eq!(engine.now(), SimTime::from_secs(100));
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_past_panics() {
        let mut engine: Engine<u32> = Engine::new();
        engine.scheduler().schedule_at(SimTime::from_secs(1), 1);
        let mut world = Recorder::default();
        engine.run_until(SimTime::from_secs(2), &mut world);
        engine.scheduler().schedule_at(SimTime::from_secs(1), 2);
    }

    #[test]
    fn step_processes_one() {
        let mut engine = Engine::new();
        engine.scheduler().schedule_at(SimTime::from_micros(7), 1);
        engine.scheduler().schedule_at(SimTime::from_micros(9), 2);
        let mut world = Recorder::default();
        assert_eq!(engine.step(&mut world), Some(SimTime::from_micros(7)));
        assert_eq!(engine.step(&mut world), Some(SimTime::from_micros(9)));
        assert_eq!(engine.step(&mut world), None);
    }

    #[test]
    fn pending_count() {
        let mut engine: Engine<u32> = Engine::new();
        assert_eq!(engine.scheduler().pending(), 0);
        engine
            .scheduler()
            .schedule_after(SimDuration::from_secs(1), 1);
        engine
            .scheduler()
            .schedule_after(SimDuration::from_secs(2), 2);
        assert_eq!(engine.scheduler().pending(), 2);
    }
}
